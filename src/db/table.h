// A column-oriented table with equality hash indexes.
//
// Numeric columns can be *view-backed*: instead of owning a vector they
// point into an externally owned buffer (an mmap-ed .lockdb v2 snapshot).
// Views are copy-on-write — any mutation (Insert, SetUint64, ImportCsv)
// materializes the affected columns into owned vectors first — so readers
// never observe a half-owned column. The buffer behind a view must outlive
// the table; src/core keeps the snapshot backing alive on AnalysisSnapshot.
//
// Hash indexes are declared eagerly but built lazily on the first
// LookupEqual that needs them (loading a snapshot declares every persisted
// index without paying for rebuilds the analysis may never use). Builds are
// guarded by a mutex and published with an atomic flag, so concurrent
// read-only lookups from the parallel extraction phase are safe; mutation
// remains single-threaded, as before.
#ifndef SRC_DB_TABLE_H_
#define SRC_DB_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/value.h"
#include "src/util/status.h"

namespace lockdoc {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kUint64;
};

// Column-major storage for one column; only the vector (or view) matching
// the column's declared type is populated. A numeric column is view-backed
// when its view pointer is set; `view_rows` then gives its length and the
// owned vector is empty.
struct ColumnData {
  std::vector<uint64_t> u64;
  std::vector<double> f64;
  std::vector<std::string> str;
  const uint64_t* u64_view = nullptr;
  const double* f64_view = nullptr;
  size_t view_rows = 0;

  bool is_view() const { return u64_view != nullptr || f64_view != nullptr; }
};

class Table {
 public:
  Table(std::string name, std::vector<ColumnDef> columns);

  // Movable (the build mutex is freshly constructed; index pointers move).
  // Moving a table that another thread is concurrently reading is a data
  // race, same as any other mutation.
  Table(Table&& other) noexcept;
  Table& operator=(Table&& other) noexcept;

  const std::string& name() const { return name_; }
  size_t column_count() const { return columns_.size(); }
  size_t row_count() const { return row_count_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  // Returns the index of a column by name; CHECK-fails on unknown names
  // (schema errors are programming errors, not data errors).
  size_t ColumnIndex(std::string_view column_name) const;

  // Appends a row; values must match the schema's arity and types.
  // Materializes any view-backed columns.
  RowId Insert(const std::vector<DbValue>& values);

  // Typed accessors; column type must match.
  uint64_t GetUint64(RowId row, size_t column) const;
  double GetDouble(RowId row, size_t column) const;
  const std::string& GetString(RowId row, size_t column) const;

  void SetUint64(RowId row, size_t column, uint64_t value);

  // Contiguous storage of a numeric column (owned or view), valid for
  // row_count() elements — the zero-copy serialization path.
  const uint64_t* ColumnU64Data(size_t column) const;
  const double* ColumnF64Data(size_t column) const;

  // Declares a hash index over a kUint64 column. The index is built lazily
  // by the first LookupEqual against the column; until then Insert/SetUint64
  // skip maintenance (the eventual build sees the final rows).
  void CreateIndex(size_t column);
  bool HasIndex(size_t column) const;

  // All rows whose `column` equals `value`; uses the index when declared
  // (building it on first use), otherwise scans. Safe to call concurrently
  // with other const methods.
  std::vector<RowId> LookupEqual(size_t column, uint64_t value) const;

  // Forces a declared index to build now. Parallel lookup phases call this
  // up front (possibly from a different thread than the lookups) so the
  // one-time build does not serialize their first wave of LookupEqual
  // calls. No-op for columns without a declared index.
  void WarmIndex(size_t column) const;

  // Calls `fn` for each row id; returning false stops the scan.
  void Scan(const std::function<bool(RowId)>& fn) const;

  // CSV round-trip (header = column names). Import replaces table contents.
  void ExportCsv(std::ostream& out) const;
  Status ImportCsv(std::string_view document);

  // Raw column-major storage, for binary serialization (.lockdb snapshots).
  const ColumnData& column_data(size_t column) const;

  // Replaces all rows with column-major storage; `storage` must have one
  // entry per column whose populated vector *or view* matches the column
  // type and has `row_count` elements. Declared indexes are reset to
  // unbuilt (they rebuild lazily from the new rows).
  void ResetRows(size_t row_count, std::vector<ColumnData> storage);

  // Columns with a declared hash index, ascending — part of a snapshot so a
  // loaded table answers LookupEqual exactly like the one that was saved.
  std::vector<size_t> IndexedColumns() const;

 private:
  // One lazily built equality index. `built` is the publication flag:
  // set with release order after `map` is complete, read with acquire.
  struct LazyIndex {
    std::atomic<bool> built{false};
    std::unordered_map<uint64_t, std::vector<RowId>> map;
  };

  // Copies a view-backed column into owned storage (no-op when owned).
  void MaterializeColumn(size_t column);
  // Builds `index` from the column's current rows if not built yet.
  void EnsureIndexBuilt(size_t column, LazyIndex& index) const;

  std::string name_;
  std::vector<ColumnDef> columns_;
  std::vector<ColumnData> storage_;
  size_t row_count_ = 0;
  // column index -> lazy index. unique_ptr keeps LazyIndex addresses stable
  // (atomics are not movable).
  std::unordered_map<size_t, std::unique_ptr<LazyIndex>> indexes_;
  mutable std::mutex index_build_mu_;
};

}  // namespace lockdoc

#endif  // SRC_DB_TABLE_H_
