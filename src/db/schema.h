// The LockDoc database schema (paper Fig. 6): memory accesses revolve around
// allocations (instances of the observed data_types, laid out by members),
// transactions (txns) with their ordered held locks, and stack traces.
//
// All cross-table references are uint64 row ids; kDbNull encodes SQL NULL.
// Strings that originate in a trace (file names, function names, lock names)
// are stored as interned StringIds to keep the fact tables compact; the
// Database's own string pool (copied from the trace at import, ids
// preserved) resolves them, so analyses never need the trace after import.
#ifndef SRC_DB_SCHEMA_H_
#define SRC_DB_SCHEMA_H_

#include "src/db/database.h"

namespace lockdoc {

// Table and column names, centralized so importer/queries cannot drift.
struct LockDocSchema {
  static constexpr const char* kDataTypes = "data_types";      // id, name
  static constexpr const char* kSubclasses = "subclasses";     // id, type_id, subclass, name
  static constexpr const char* kMembers = "members";           // id, type_id, member_idx, name,
                                                               // offset, size, is_lock,
                                                               // is_atomic, blacklisted
  static constexpr const char* kAllocations = "allocations";   // id, type_id, subclass, addr,
                                                               // size, alloc_seq, free_seq
  static constexpr const char* kLocks = "locks";               // id, addr, lock_type, is_static,
                                                               // name_sid, owner_alloc_id,
                                                               // owner_member_id
  static constexpr const char* kTxns = "txns";                 // id, start_seq, end_seq, n_locks
  static constexpr const char* kTxnLocks = "txn_locks";        // txn_id, position, lock_id,
                                                               // acquire_seq, mode,
                                                               // file_sid, line
  static constexpr const char* kStackFrames = "stack_frames";  // stack_id, position, function_sid
  static constexpr const char* kAccesses = "accesses";         // seq, alloc_id, member_id,
                                                               // access_type, size, txn_id,
                                                               // context, task, file_sid, line,
                                                               // stack_id, filter_reason

  // Optional range-lock tables, present only when the imported trace
  // contains ranged events (kEventRangeFlag). Analyses probe for them with
  // Database::HasTable; snapshot loads do not require them, so legacy
  // snapshots (and snapshots of range-free traces) are byte-identical to
  // before these tables existed.
  static constexpr const char* kAllocRanges = "alloc_ranges";  // alloc_id, range_start, range_end
  static constexpr const char* kTxnLockRanges = "txn_lock_ranges";  // txn_id, position,
                                                                    // range_start, range_end

  // Every table the analyses assume exists. Snapshot loads check the decoded
  // database against this list so a partial file (e.g. doctor --repair
  // dropped a damaged table section) fails with a typed error instead of
  // tripping a CHECK at first lookup.
  static constexpr const char* kAllTables[] = {
      kDataTypes, kSubclasses, kMembers,     kAllocations, kLocks,
      kTxns,      kTxnLocks,   kStackFrames, kAccesses,
  };
};

// Reasons an access row is excluded from rule derivation (Sec. 5.3).
enum class FilterReason : uint64_t {
  kNone = 0,
  kInitTeardown = 1,     // Emitted inside an object (de)initialization function.
  kBlacklistedFn = 2,    // Emitted inside a globally ignored function (atomic_*).
  kBlacklistedMember = 3,
  kAtomicMember = 4,
  kLockMember = 5,       // The access targets a lock member itself.
  kUntrackedMemory = 6,  // Address not within a live observed allocation.
};

// Creates all LockDoc tables (with indexes on join columns) in `db`.
void CreateLockDocSchema(Database* db);

// Creates the optional alloc_ranges/txn_lock_ranges tables. The importer
// calls this only for traces that carry ranged events.
void CreateRangeTables(Database* db);

// Renders "file:line", resolving `file_sid` through the database pool —
// byte-identical to Trace::FormatLoc on the imported trace.
std::string DbFormatLoc(const Database& db, uint64_t file_sid, uint64_t line);

// Renders "f1 <- f2 <- f3" (innermost first) from the stack_frames table,
// or "<no stack>" for a kDbNull stack id — byte-identical to
// Trace::FormatStack on the imported trace.
std::string DbFormatStack(const Database& db, uint64_t stack_id);

}  // namespace lockdoc

#endif  // SRC_DB_SCHEMA_H_
