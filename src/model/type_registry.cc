#include "src/model/type_registry.h"

#include "src/util/logging.h"

namespace lockdoc {

TypeId TypeRegistry::Register(std::unique_ptr<TypeLayout> layout) {
  LOCKDOC_CHECK(layout != nullptr);
  LOCKDOC_CHECK(by_name_.find(layout->name()) == by_name_.end());
  TypeId id = static_cast<TypeId>(layouts_.size());
  by_name_.emplace(layout->name(), id);
  layouts_.push_back(std::move(layout));
  subclass_names_.push_back({""});  // Index kNoSubclass.
  return id;
}

SubclassId TypeRegistry::RegisterSubclass(TypeId type, const std::string& subclass_name) {
  LOCKDOC_CHECK(type < layouts_.size());
  LOCKDOC_CHECK(!subclass_name.empty());
  std::vector<std::string>& names = subclass_names_[type];
  for (size_t i = 1; i < names.size(); ++i) {
    if (names[i] == subclass_name) {
      return static_cast<SubclassId>(i);
    }
  }
  names.push_back(subclass_name);
  return static_cast<SubclassId>(names.size() - 1);
}

const TypeLayout& TypeRegistry::layout(TypeId id) const {
  LOCKDOC_CHECK(id < layouts_.size());
  return *layouts_[id];
}

std::optional<TypeId> TypeRegistry::FindType(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& TypeRegistry::SubclassName(TypeId type, SubclassId subclass) const {
  LOCKDOC_CHECK(type < subclass_names_.size());
  LOCKDOC_CHECK(subclass < subclass_names_[type].size());
  return subclass_names_[type][subclass];
}

std::optional<SubclassId> TypeRegistry::FindSubclass(TypeId type, std::string_view name) const {
  LOCKDOC_CHECK(type < subclass_names_.size());
  const std::vector<std::string>& names = subclass_names_[type];
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == name) {
      return static_cast<SubclassId>(i);
    }
  }
  return std::nullopt;
}

std::vector<SubclassId> TypeRegistry::SubclassesOf(TypeId type) const {
  LOCKDOC_CHECK(type < subclass_names_.size());
  std::vector<SubclassId> result;
  for (size_t i = 1; i < subclass_names_[type].size(); ++i) {
    result.push_back(static_cast<SubclassId>(i));
  }
  return result;
}

std::string TypeRegistry::QualifiedName(TypeId type, SubclassId subclass) const {
  const std::string& base = layout(type).name();
  if (subclass == kNoSubclass) {
    return base;
  }
  return base + ":" + SubclassName(type, subclass);
}

}  // namespace lockdoc
