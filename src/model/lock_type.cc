#include "src/model/lock_type.h"

namespace lockdoc {

std::string_view LockTypeName(LockType type) {
  switch (type) {
    case LockType::kSpinlock:
      return "spinlock_t";
    case LockType::kRwlock:
      return "rwlock_t";
    case LockType::kSemaphore:
      return "semaphore";
    case LockType::kRwSemaphore:
      return "rw_semaphore";
    case LockType::kMutex:
      return "mutex";
    case LockType::kRcu:
      return "rcu";
    case LockType::kSeqlock:
      return "seqlock_t";
    case LockType::kSoftirq:
      return "softirq";
    case LockType::kHardirq:
      return "hardirq";
    case LockType::kRangeLock:
      return "range_lock";
  }
  return "?";
}

std::optional<LockType> LockTypeFromName(std::string_view name) {
  for (int i = 0; i < kNumLockTypes; ++i) {
    LockType type = static_cast<LockType>(i);
    if (LockTypeName(type) == name) {
      return type;
    }
  }
  return std::nullopt;
}

bool IsPseudoLockType(LockType type) {
  return type == LockType::kRcu || type == LockType::kSoftirq || type == LockType::kHardirq;
}

bool IsReaderWriterLockType(LockType type) {
  return type == LockType::kRwlock || type == LockType::kRwSemaphore ||
         type == LockType::kRangeLock;
}

bool IsBlockingLockType(LockType type) {
  return type == LockType::kSemaphore || type == LockType::kRwSemaphore ||
         type == LockType::kMutex || type == LockType::kRangeLock;
}

}  // namespace lockdoc
