// Lock classes — the vocabulary locking rules are expressed in.
//
// A concrete held lock *instance* generalizes to one of three classes
// relative to the accessed object (this mirrors the paper's Fig. 8
// notation):
//   * global        — a statically allocated lock, identified by name
//                     (e.g. "inode_hash_lock"), or a pseudo lock (rcu,
//                     softirq, hardirq);
//   * ES (embedded same)  — a lock member of the very object the access
//                     goes to, e.g. ES(i_lock in inode);
//   * EO (embedded other) — a lock member of some *other* tracked object,
//                     e.g. EO(list_lock in backing_dev_info).
//
// Rules (ordered sequences of lock classes) therefore generalize over lock
// instances, which is what lets one rule cover every inode in the system.
#ifndef SRC_MODEL_LOCK_CLASS_H_
#define SRC_MODEL_LOCK_CLASS_H_

#include <compare>
#include <cstdint>
#include <string>
#include <vector>

#include "src/util/status.h"

namespace lockdoc {

enum class LockScope : uint8_t {
  kGlobal = 0,
  kEmbeddedSame = 1,   // ES
  kEmbeddedOther = 2,  // EO
};

struct LockClass {
  LockScope scope = LockScope::kGlobal;
  // Global: the static lock's name. Embedded: the lock member's name.
  std::string lock_name;
  // Embedded only: the name of the data type containing the lock.
  std::string owner_type;

  // Canonical textual form: "inode_hash_lock", "ES(i_lock in inode)",
  // "EO(list_lock in backing_dev_info)".
  std::string ToString() const;

  // Parses the canonical textual form (inverse of ToString).
  static Result<LockClass> Parse(std::string_view text);

  static LockClass Global(std::string name);
  static LockClass Same(std::string lock_name, std::string owner_type);
  static LockClass Other(std::string lock_name, std::string owner_type);

  friend auto operator<=>(const LockClass&, const LockClass&) = default;
};

// An ordered sequence of lock classes — either the generalized held-lock
// list of an observation, or a locking-rule hypothesis.
using LockSeq = std::vector<LockClass>;

// "a -> b -> c" or "no lock" for the empty sequence.
std::string LockSeqToString(const LockSeq& seq);

// Parses "a -> b" / "no lock". Whitespace-tolerant.
Result<LockSeq> ParseLockSeq(std::string_view text);

// True iff `rule` is a subsequence of `held` (all rule locks held, in the
// rule's relative order; unrelated interleaved locks are permitted — see
// Sec. 5.4 of the paper).
bool IsSubsequence(const LockSeq& rule, const LockSeq& held);

// Lexicographic hash for use in hash maps.
struct LockSeqHash {
  size_t operator()(const LockSeq& seq) const;
};

// Hash of a single lock class (same mixing as LockSeqHash), for interning.
struct LockClassHash {
  size_t operator()(const LockClass& cls) const;
};

}  // namespace lockdoc

#endif  // SRC_MODEL_LOCK_CLASS_H_
