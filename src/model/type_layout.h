// Structure layouts of the observed kernel data types.
//
// The paper resolves raw memory accesses to (type, member) pairs via the
// struct offset within an allocation (Fig. 6, table type_layout). Union
// compounds are "unrolled": union alternatives are laid out at distinct
// offsets so each alternative becomes an individually addressable member
// (Sec. 7.1). This module reproduces that model.
#ifndef SRC_MODEL_TYPE_LAYOUT_H_
#define SRC_MODEL_TYPE_LAYOUT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/model/ids.h"
#include "src/model/lock_type.h"

namespace lockdoc {

// Flags describing a member's role; they drive the post-processing filters
// from Sec. 5.3 (atomic members and lock members are excluded from rule
// derivation; blacklisted members are out of experiment scope).
struct MemberDef {
  std::string name;
  uint32_t offset = 0;
  uint32_t size = 0;
  // Set when the member itself is a lock; `lock_type` then identifies it.
  bool is_lock = false;
  LockType lock_type = LockType::kSpinlock;
  // atomic_t and friends: accessed via atomic ops, filtered from derivation.
  bool is_atomic = false;
  // Explicitly out-of-scope for the experiments (nested foreign structures,
  // list heads belonging to other subsystems, ...).
  bool blacklisted = false;
};

class TypeLayout {
 public:
  explicit TypeLayout(std::string name);

  // Appends a plain data member of `size` bytes; returns its index.
  MemberIndex AddMember(const std::string& name, uint32_t size);
  // Appends an atomic member (filtered by the importer).
  MemberIndex AddAtomicMember(const std::string& name, uint32_t size);
  // Appends a lock member of the given kind.
  MemberIndex AddLockMember(const std::string& name, LockType lock_type);
  // Appends a blacklisted member.
  MemberIndex AddBlacklistedMember(const std::string& name, uint32_t size);

  // Marks an already-added member as blacklisted (used when experiment scope
  // is configured after layout definition).
  void Blacklist(MemberIndex index);

  const std::string& name() const { return name_; }
  uint32_t size() const { return size_; }
  size_t member_count() const { return members_.size(); }
  const MemberDef& member(MemberIndex index) const;
  const std::vector<MemberDef>& members() const { return members_; }

  // Resolves a byte offset to the member containing it; nullopt if the
  // offset lies in padding or beyond the struct.
  std::optional<MemberIndex> ResolveOffset(uint32_t offset) const;

  // Finds a member by name; nullopt if absent.
  std::optional<MemberIndex> FindMember(std::string_view member_name) const;

  // Number of members that are neither locks, atomics, nor blacklisted —
  // i.e. the population rule mining runs on.
  size_t CountObservableMembers() const;
  // Number of blacklisted/filtered members (the paper's #Bl column counts
  // blacklisted + atomic members).
  size_t CountFilteredMembers() const;

 private:
  MemberIndex Append(MemberDef def, uint32_t size);

  std::string name_;
  uint32_t size_ = 0;
  std::vector<MemberDef> members_;
};

}  // namespace lockdoc

#endif  // SRC_MODEL_TYPE_LAYOUT_H_
