// Registry of observed data types and their subclasses.
//
// Subclassing handles the Linux pattern of filesystem-specific struct inode
// behaviour (Sec. 5.3 item 1): each allocation records its subclass so rules
// can be derived separately per (type, subclass) pair, e.g. inode:ext4 vs
// inode:proc.
#ifndef SRC_MODEL_TYPE_REGISTRY_H_
#define SRC_MODEL_TYPE_REGISTRY_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/model/ids.h"
#include "src/model/type_layout.h"

namespace lockdoc {

class TypeRegistry {
 public:
  TypeRegistry() = default;
  TypeRegistry(const TypeRegistry&) = delete;
  TypeRegistry& operator=(const TypeRegistry&) = delete;

  // Registers a layout; the type name must be unique. Returns its id.
  TypeId Register(std::unique_ptr<TypeLayout> layout);

  // Registers a subclass name for `type` (e.g. "ext4"); returns its id
  // (> kNoSubclass). Registering the same name twice returns the same id.
  SubclassId RegisterSubclass(TypeId type, const std::string& subclass_name);

  size_t type_count() const { return layouts_.size(); }
  const TypeLayout& layout(TypeId id) const;
  std::optional<TypeId> FindType(std::string_view name) const;

  // Subclass name lookup; subclass kNoSubclass yields "".
  const std::string& SubclassName(TypeId type, SubclassId subclass) const;
  std::optional<SubclassId> FindSubclass(TypeId type, std::string_view name) const;
  // All registered subclass ids for a type (excluding kNoSubclass).
  std::vector<SubclassId> SubclassesOf(TypeId type) const;

  // "inode:ext4" or plain "inode" when subclass == kNoSubclass.
  std::string QualifiedName(TypeId type, SubclassId subclass) const;

 private:
  std::vector<std::unique_ptr<TypeLayout>> layouts_;
  std::map<std::string, TypeId, std::less<>> by_name_;
  // subclass id -> name, per type; index 0 is the empty "no subclass" name.
  std::vector<std::vector<std::string>> subclass_names_;
};

}  // namespace lockdoc

#endif  // SRC_MODEL_TYPE_REGISTRY_H_
