#include "src/model/lock_class_pool.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "src/util/logging.h"

namespace lockdoc {

LockId LockClassPool::Intern(const LockClass& cls) {
  auto it = index_.find(cls);
  if (it != index_.end()) {
    return it->second;
  }
  LockId id = static_cast<LockId>(classes_.size());
  classes_.push_back(cls);
  index_.emplace(cls, id);
  return id;
}

IdSeq LockClassPool::InternSeq(const LockSeq& seq) {
  IdSeq ids;
  ids.reserve(seq.size());
  for (const LockClass& cls : seq) {
    ids.push_back(Intern(cls));
  }
  return ids;
}

std::optional<LockId> LockClassPool::Find(const LockClass& cls) const {
  auto it = index_.find(cls);
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<IdSeq> LockClassPool::FindSeq(const LockSeq& seq) const {
  IdSeq ids;
  ids.reserve(seq.size());
  for (const LockClass& cls : seq) {
    std::optional<LockId> id = Find(cls);
    if (!id.has_value()) {
      return std::nullopt;
    }
    ids.push_back(*id);
  }
  return ids;
}

void LockClassPool::Reset(std::vector<LockClass> classes) {
  classes_ = std::move(classes);
  index_.clear();
  index_.reserve(classes_.size());
  for (size_t i = 0; i < classes_.size(); ++i) {
    bool inserted = index_.emplace(classes_[i], static_cast<LockId>(i)).second;
    LOCKDOC_CHECK(inserted && "duplicate class in serialized pool");
  }
}

const LockClass& LockClassPool::Get(LockId id) const {
  LOCKDOC_CHECK(id < classes_.size());
  return classes_[id];
}

LockSeq LockClassPool::Materialize(const IdSeq& ids) const {
  LockSeq seq;
  seq.reserve(ids.size());
  for (LockId id : ids) {
    seq.push_back(Get(id));
  }
  return seq;
}

std::vector<uint32_t> LockClassPool::LexicographicRanks() const {
  std::vector<uint32_t> order(classes_.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [this](uint32_t a, uint32_t b) { return classes_[a] < classes_[b]; });
  std::vector<uint32_t> ranks(classes_.size());
  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    ranks[order[rank]] = rank;
  }
  return ranks;
}

bool IsSubsequenceIds(const IdSeq& rule, const IdSeq& held) {
  size_t rule_pos = 0;
  for (LockId lock : held) {
    if (rule_pos == rule.size()) {
      break;
    }
    if (lock == rule[rule_pos]) {
      ++rule_pos;
    }
  }
  return rule_pos == rule.size();
}

std::vector<IdSeq> EnumerateSubsequenceIds(const IdSeq& seq, size_t max_locks) {
  std::vector<IdSeq> result;
  result.push_back(IdSeq{});
  // The bitmask powerset cannot represent >= 64 locks; such sequences only
  // appear in salvaged or adversarial traces with a raised max_locks, and
  // clamp into the bounded fallback instead of aborting.
  if (seq.size() <= max_locks && seq.size() < 64) {
    uint64_t limit = 1ULL << seq.size();
    result.reserve(static_cast<size_t>(limit));
    for (uint64_t mask = 1; mask < limit; ++mask) {
      IdSeq subsequence;
      subsequence.reserve(static_cast<size_t>(__builtin_popcountll(mask)));
      for (size_t i = 0; i < seq.size(); ++i) {
        if ((mask >> i) & 1) {
          subsequence.push_back(seq[i]);
        }
      }
      result.push_back(std::move(subsequence));
    }
  } else {
    // Bounded fallback: singles, ordered pairs, prefixes, full sequence,
    // and per-class multiplicity runs (mirrors EnumerateSubsequences).
    result.reserve(1 + seq.size() * (seq.size() + 1) / 2 + 2 * seq.size());
    for (size_t i = 0; i < seq.size(); ++i) {
      result.push_back(IdSeq{seq[i]});
      for (size_t j = i + 1; j < seq.size(); ++j) {
        result.push_back(IdSeq{seq[i], seq[j]});
      }
    }
    IdSeq prefix;
    prefix.reserve(seq.size());
    for (LockId lock : seq) {
      prefix.push_back(lock);
      result.push_back(prefix);
    }
    // A class held k >= 3 times in one group (e.g. the same range lock over
    // several spans) must yield the k-fold repeat as a candidate even when
    // the copies are not a prefix: {x, a, a, a} needs {a, a, a}. Runs of 1
    // and 2 are already covered by the singles and ordered pairs above.
    std::map<LockId, size_t> multiplicity;
    for (LockId lock : seq) {
      ++multiplicity[lock];
    }
    for (const auto& [lock, count] : multiplicity) {
      IdSeq run;
      run.reserve(count);
      for (size_t k = 1; k <= count; ++k) {
        run.push_back(lock);
        if (k >= 3) {
          result.push_back(run);
        }
      }
    }
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

}  // namespace lockdoc
