#include "src/model/type_layout.h"

#include "src/util/logging.h"

namespace lockdoc {
namespace {

// Size of a lock member in the simulated layouts. All simulated lock types
// occupy the same footprint; only identity matters for the analysis.
constexpr uint32_t kLockMemberSize = 8;

}  // namespace

TypeLayout::TypeLayout(std::string name) : name_(std::move(name)) {}

MemberIndex TypeLayout::Append(MemberDef def, uint32_t size) {
  def.offset = size_;
  def.size = size;
  size_ += size;
  members_.push_back(std::move(def));
  return static_cast<MemberIndex>(members_.size() - 1);
}

MemberIndex TypeLayout::AddMember(const std::string& name, uint32_t size) {
  LOCKDOC_CHECK(size > 0);
  MemberDef def;
  def.name = name;
  return Append(std::move(def), size);
}

MemberIndex TypeLayout::AddAtomicMember(const std::string& name, uint32_t size) {
  LOCKDOC_CHECK(size > 0);
  MemberDef def;
  def.name = name;
  def.is_atomic = true;
  return Append(std::move(def), size);
}

MemberIndex TypeLayout::AddLockMember(const std::string& name, LockType lock_type) {
  MemberDef def;
  def.name = name;
  def.is_lock = true;
  def.lock_type = lock_type;
  return Append(std::move(def), kLockMemberSize);
}

MemberIndex TypeLayout::AddBlacklistedMember(const std::string& name, uint32_t size) {
  LOCKDOC_CHECK(size > 0);
  MemberDef def;
  def.name = name;
  def.blacklisted = true;
  return Append(std::move(def), size);
}

void TypeLayout::Blacklist(MemberIndex index) {
  LOCKDOC_CHECK(index < members_.size());
  members_[index].blacklisted = true;
}

const MemberDef& TypeLayout::member(MemberIndex index) const {
  LOCKDOC_CHECK(index < members_.size());
  return members_[index];
}

std::optional<MemberIndex> TypeLayout::ResolveOffset(uint32_t offset) const {
  if (offset >= size_) {
    return std::nullopt;
  }
  // Members are laid out contiguously in ascending offset order, so a binary
  // search over the start offsets finds the candidate member.
  size_t lo = 0;
  size_t hi = members_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (members_[mid].offset <= offset) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    return std::nullopt;
  }
  const MemberDef& candidate = members_[lo - 1];
  if (offset < candidate.offset + candidate.size) {
    return static_cast<MemberIndex>(lo - 1);
  }
  return std::nullopt;
}

std::optional<MemberIndex> TypeLayout::FindMember(std::string_view member_name) const {
  for (size_t i = 0; i < members_.size(); ++i) {
    if (members_[i].name == member_name) {
      return static_cast<MemberIndex>(i);
    }
  }
  return std::nullopt;
}

size_t TypeLayout::CountObservableMembers() const {
  size_t count = 0;
  for (const MemberDef& def : members_) {
    if (!def.is_lock && !def.is_atomic && !def.blacklisted) {
      ++count;
    }
  }
  return count;
}

size_t TypeLayout::CountFilteredMembers() const {
  size_t count = 0;
  for (const MemberDef& def : members_) {
    if (!def.is_lock && (def.is_atomic || def.blacklisted)) {
      ++count;
    }
  }
  return count;
}

}  // namespace lockdoc
