// Shared identifier types used across tracing, simulation, and analysis.
#ifndef SRC_MODEL_IDS_H_
#define SRC_MODEL_IDS_H_

#include <cstdint>

namespace lockdoc {

// Index of a data type in the TypeRegistry.
using TypeId = uint32_t;
// Per-type subclass (e.g. the backing filesystem of a struct inode).
// kNoSubclass means the type is not subclassed.
using SubclassId = uint32_t;
// Index of a member within its TypeLayout.
using MemberIndex = uint32_t;
// Simulated (or real) memory address.
using Address = uint64_t;
// Identifier of one dynamic allocation, unique within a trace.
using AllocationId = uint64_t;
// Identifier of one lock instance, unique within a trace.
using LockInstanceId = uint64_t;
// Identifier of one reconstructed transaction.
using TxnId = uint64_t;
// Interned call-stack identifier.
using StackId = uint32_t;
// Interned source-file / function-name string identifiers.
using StringId = uint32_t;

inline constexpr TypeId kInvalidTypeId = 0xffffffffu;
inline constexpr SubclassId kNoSubclass = 0;
inline constexpr MemberIndex kInvalidMember = 0xffffffffu;
inline constexpr StackId kInvalidStack = 0xffffffffu;

// Memory access direction.
enum class AccessType : uint8_t {
  kRead = 0,
  kWrite = 1,
};

inline const char* AccessTypeName(AccessType type) {
  return type == AccessType::kRead ? "r" : "w";
}

// A half-open span [start, end) over the resource a range lock protects
// (e.g. the user address space under mmap_lock). A default-constructed
// range is "whole": it stands for a non-range acquisition and covers
// everything. Empty non-whole ranges (start >= end) cover nothing.
struct LockRange {
  uint64_t start = 0;
  uint64_t end = 0;

  // True when this stands for a plain (non-range) acquisition.
  bool whole() const { return start == 0 && end == 0; }

  friend bool operator==(const LockRange&, const LockRange&) = default;
};

// Half-open interval overlap. Empty intervals (start >= end) overlap
// nothing; adjacent intervals ([0,4) vs [4,8)) do not overlap.
inline bool RangesOverlap(uint64_t a_start, uint64_t a_end, uint64_t b_start,
                          uint64_t b_end) {
  return a_start < a_end && b_start < b_end && a_start < b_end && b_start < a_end;
}

// Overlap with "whole" semantics: a whole range covers every non-empty span.
inline bool RangeCovers(const LockRange& held, uint64_t span_start, uint64_t span_end) {
  if (held.whole()) {
    return true;
  }
  return RangesOverlap(held.start, held.end, span_start, span_end);
}

// A source-code position in the simulated kernel; files and functions are
// interned strings resolved via the trace's string table.
struct SourceLoc {
  StringId file = 0;
  uint32_t line = 0;

  friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

}  // namespace lockdoc

#endif  // SRC_MODEL_IDS_H_
