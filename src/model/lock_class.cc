#include "src/model/lock_class.h"

#include "src/util/string_util.h"

namespace lockdoc {
namespace {

constexpr std::string_view kNoLockText = "no lock";
constexpr std::string_view kArrow = "->";

}  // namespace

std::string LockClass::ToString() const {
  switch (scope) {
    case LockScope::kGlobal:
      return lock_name;
    case LockScope::kEmbeddedSame:
      return "ES(" + lock_name + " in " + owner_type + ")";
    case LockScope::kEmbeddedOther:
      return "EO(" + lock_name + " in " + owner_type + ")";
  }
  return "?";
}

Result<LockClass> LockClass::Parse(std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return Status::Error("LockClass::Parse: empty input");
  }
  LockScope scope;
  if (StartsWith(trimmed, "ES(")) {
    scope = LockScope::kEmbeddedSame;
  } else if (StartsWith(trimmed, "EO(")) {
    scope = LockScope::kEmbeddedOther;
  } else {
    if (trimmed.find_first_of("() ") != std::string_view::npos) {
      return Status::Error("LockClass::Parse: malformed global lock name '" +
                           std::string(trimmed) + "'");
    }
    return LockClass::Global(std::string(trimmed));
  }
  if (!EndsWith(trimmed, ")")) {
    return Status::Error("LockClass::Parse: missing ')' in '" + std::string(trimmed) + "'");
  }
  std::string_view body = trimmed.substr(3, trimmed.size() - 4);
  size_t in_pos = body.find(" in ");
  if (in_pos == std::string_view::npos) {
    return Status::Error("LockClass::Parse: missing ' in ' in '" + std::string(trimmed) + "'");
  }
  std::string lock_name(Trim(body.substr(0, in_pos)));
  std::string owner(Trim(body.substr(in_pos + 4)));
  if (lock_name.empty() || owner.empty()) {
    return Status::Error("LockClass::Parse: empty lock or owner in '" + std::string(trimmed) +
                         "'");
  }
  LockClass result;
  result.scope = scope;
  result.lock_name = std::move(lock_name);
  result.owner_type = std::move(owner);
  return result;
}

LockClass LockClass::Global(std::string name) {
  LockClass c;
  c.scope = LockScope::kGlobal;
  c.lock_name = std::move(name);
  return c;
}

LockClass LockClass::Same(std::string lock_name, std::string owner_type) {
  LockClass c;
  c.scope = LockScope::kEmbeddedSame;
  c.lock_name = std::move(lock_name);
  c.owner_type = std::move(owner_type);
  return c;
}

LockClass LockClass::Other(std::string lock_name, std::string owner_type) {
  LockClass c;
  c.scope = LockScope::kEmbeddedOther;
  c.lock_name = std::move(lock_name);
  c.owner_type = std::move(owner_type);
  return c;
}

std::string LockSeqToString(const LockSeq& seq) {
  if (seq.empty()) {
    return std::string(kNoLockText);
  }
  std::string result;
  for (size_t i = 0; i < seq.size(); ++i) {
    if (i != 0) {
      result += " -> ";
    }
    result += seq[i].ToString();
  }
  return result;
}

Result<LockSeq> ParseLockSeq(std::string_view text) {
  std::string_view trimmed = Trim(text);
  if (trimmed.empty() || trimmed == kNoLockText) {
    return LockSeq{};
  }
  LockSeq seq;
  size_t start = 0;
  while (start <= trimmed.size()) {
    size_t arrow = trimmed.find(kArrow, start);
    std::string_view part = (arrow == std::string_view::npos)
                                ? trimmed.substr(start)
                                : trimmed.substr(start, arrow - start);
    auto parsed = LockClass::Parse(part);
    if (!parsed.ok()) {
      return parsed.status();
    }
    seq.push_back(std::move(parsed).value());
    if (arrow == std::string_view::npos) {
      break;
    }
    start = arrow + kArrow.size();
  }
  return seq;
}

bool IsSubsequence(const LockSeq& rule, const LockSeq& held) {
  size_t rule_pos = 0;
  for (const LockClass& lock : held) {
    if (rule_pos == rule.size()) {
      break;
    }
    if (lock == rule[rule_pos]) {
      ++rule_pos;
    }
  }
  return rule_pos == rule.size();
}

namespace {

// FNV-1a mixing over one lock class's fields; sequences are short.
void MixLockClass(size_t& hash, const LockClass& lock) {
  auto mix = [&hash](std::string_view text) {
    for (char c : text) {
      hash ^= static_cast<size_t>(static_cast<unsigned char>(c));
      hash *= 1099511628211ULL;
    }
    hash ^= 0xff;
    hash *= 1099511628211ULL;
  };
  mix(lock.lock_name);
  mix(lock.owner_type);
  hash ^= static_cast<size_t>(lock.scope) + 0x9e3779b9;
}

}  // namespace

size_t LockSeqHash::operator()(const LockSeq& seq) const {
  size_t hash = 1469598103934665603ULL;
  for (const LockClass& lock : seq) {
    MixLockClass(hash, lock);
  }
  return hash;
}

size_t LockClassHash::operator()(const LockClass& cls) const {
  size_t hash = 1469598103934665603ULL;
  MixLockClass(hash, cls);
  return hash;
}

}  // namespace lockdoc
