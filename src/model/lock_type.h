// The zoo of kernel locking mechanisms modelled by the simulator, mirroring
// the set the paper instruments: spinlock_t, rwlock_t, semaphore,
// rw_semaphore, mutex and RCU, plus the synthetic softirq/hardirq locks the
// paper records for bottom-half / interrupt disabling (Sec. 7.1).
#ifndef SRC_MODEL_LOCK_TYPE_H_
#define SRC_MODEL_LOCK_TYPE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace lockdoc {

enum class LockType : uint8_t {
  kSpinlock = 0,
  kRwlock = 1,
  kSemaphore = 2,
  kRwSemaphore = 3,
  kMutex = 4,
  kRcu = 5,       // Global pseudo-lock: rcu_read_lock() .. rcu_read_unlock().
  kSeqlock = 6,   // write_seqlock side is traced; readers are lock-free.
  kSoftirq = 7,   // Synthetic: local_bh_disable() .. local_bh_enable().
  kHardirq = 8,   // Synthetic: local_irq_disable() .. local_irq_enable().
  kRangeLock = 9, // Range lock over [start, end), mmap_lock-style.
};

inline constexpr int kNumLockTypes = 10;

// How a lock was taken. Reader/writer locks distinguish shared vs exclusive;
// everything else is exclusive.
enum class AcquireMode : uint8_t {
  kExclusive = 0,
  kShared = 1,
};

// Short kernel-style name, e.g. "spinlock_t".
std::string_view LockTypeName(LockType type);

// Inverse of LockTypeName; returns nullopt for unknown names.
std::optional<LockType> LockTypeFromName(std::string_view name);

// True for lock types that have no per-instance storage and act as one
// global lock (rcu, softirq, hardirq).
bool IsPseudoLockType(LockType type);

// True for types with distinct shared/exclusive acquisition.
bool IsReaderWriterLockType(LockType type);

// True for lock types that may block (and therefore must not be taken from
// interrupt context in the simulated kernel).
bool IsBlockingLockType(LockType type);

}  // namespace lockdoc

#endif  // SRC_MODEL_LOCK_TYPE_H_
