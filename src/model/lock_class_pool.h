// Dense interning of lock classes — the integer vocabulary the rule-mining
// hot path runs on.
//
// Phase-2 hypothesis enumeration and support scoring (paper Sec. 4.3/5.4)
// compare lock sequences millions of times; doing that on
// `std::vector<LockClass>` means deep string comparisons and per-copy
// allocations. A LockClassPool maps each distinct LockClass to a dense
// small-integer `LockId` so the mining core can operate on `IdSeq`
// (`std::vector<LockId>`) with integer comparisons and flat copies,
// materializing `LockClass` strings only at report/documentation
// boundaries.
//
// Determinism: ids are assigned in first-appearance interning order. The
// ObservationStore interns classified lock sequences serially in task
// first-appearance order (see observations.h), so the id assignment — and
// therefore everything derived from it — is byte-identical at any thread
// count. Id order is NOT lexicographic; user-visible orderings are computed
// either on the materialized string forms or on LexicographicRanks (a rank
// table that reproduces LockClass::operator< exactly), which is why output
// ordering is unchanged by the interning layer (see DESIGN.md, "Interned-id
// mining core").
#ifndef SRC_MODEL_LOCK_CLASS_POOL_H_
#define SRC_MODEL_LOCK_CLASS_POOL_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/model/lock_class.h"

namespace lockdoc {

// Dense id of one distinct LockClass within a LockClassPool.
using LockId = uint32_t;

// An interned lock sequence — the integer mirror of LockSeq.
using IdSeq = std::vector<LockId>;

class LockClassPool {
 public:
  // Returns the id of `cls`, interning it (next dense id) on first sight.
  LockId Intern(const LockClass& cls);

  // Interns every class of `seq`, preserving order.
  IdSeq InternSeq(const LockSeq& seq);

  // Lookup without interning; nullopt when the class was never interned.
  std::optional<LockId> Find(const LockClass& cls) const;

  // Id form of `seq`; nullopt when any class of it was never interned (such
  // a sequence cannot match any interned observation).
  std::optional<IdSeq> FindSeq(const LockSeq& seq) const;

  const LockClass& Get(LockId id) const;

  // The string form of an id sequence — the report/doc boundary.
  LockSeq Materialize(const IdSeq& ids) const;

  // ranks[id] = position of Get(id) under LockClass::operator< across the
  // whole pool. Comparing two IdSeqs element-wise by rank therefore orders
  // them exactly as their materialized LockSeqs compare lexicographically —
  // report and winner tie-breaks can run on ids without string compares.
  // O(n log n); compute once per mining pass, not per candidate.
  std::vector<uint32_t> LexicographicRanks() const;

  size_t size() const { return classes_.size(); }

  // The interned classes in id order — the serialization boundary for
  // .lockdb snapshots.
  const std::vector<LockClass>& classes() const { return classes_; }

  // Rebuilds the pool from a serialized table (index == id); classes must
  // be distinct.
  void Reset(std::vector<LockClass> classes);

 private:
  std::vector<LockClass> classes_;
  std::unordered_map<LockClass, LockId, LockClassHash> index_;
};

// True iff `rule` is a subsequence of `held` — the integer two-pointer
// mirror of IsSubsequence(LockSeq, LockSeq). Both sequences must come from
// the same pool.
bool IsSubsequenceIds(const IdSeq& rule, const IdSeq& held);

// All distinct subsequences of `seq` (including the empty one) as a sorted
// deduplicated vector — the id mirror of EnumerateSubsequences with the
// same bounded fallback: if `seq` is longer than `max_locks` (or than 63,
// the bitmask powerset limit), only single locks, ordered pairs, contiguous
// prefixes, and the full sequence are produced.
std::vector<IdSeq> EnumerateSubsequenceIds(const IdSeq& seq, size_t max_locks);

}  // namespace lockdoc

#endif  // SRC_MODEL_LOCK_CLASS_POOL_H_
