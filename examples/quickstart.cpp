// Quickstart: the paper's clock-counter example (Sec. 4) end to end.
//
// Builds a trace of 1000 correct executions plus one buggy one, runs the
// LockDoc pipeline, prints the per-variable observations (Tab. 1), the
// hypothesis ranking for writes to `minutes` (Tab. 2), and the detected
// rule violation.
//
// Usage: quickstart [--iterations=N] [--tac=0.9]
#include <cstdio>

#include "src/core/clock_example.h"
#include "src/core/pipeline.h"
#include "src/core/violation_finder.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  FlagSet flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  ClockExampleOptions clock_options;
  clock_options.iterations = static_cast<int>(flags.GetUint64("iterations", 1000));
  ClockExample example = BuildClockExample(clock_options);

  PipelineOptions options;
  options.derivator.accept_threshold = flags.GetDouble("tac", 0.9);
  options.derivator.enumerate_permutations = true;
  PipelineResult result = RunPipeline(example.trace, *example.registry, options);

  std::printf("clock example: %zu events, %llu transactions\n\n", example.trace.size(),
              static_cast<unsigned long long>(result.snapshot.import_stats.txns));

  // Per-variable derivation results.
  for (const DerivationResult& rule : result.rules) {
    const TypeLayout& layout = example.registry->layout(rule.key.type);
    std::printf("%s.%s [%s]: %llu observations, winner: %s (sa=%llu, sr=%s)\n",
                layout.name().c_str(), layout.member(rule.key.member).name.c_str(),
                AccessTypeName(rule.access), static_cast<unsigned long long>(rule.total),
                LockSeqToString(rule.winner->locks).c_str(),
                static_cast<unsigned long long>(rule.winner->sa),
                FormatPercent(rule.winner->sr).c_str());
  }

  // Tab. 2: all hypotheses for writes to `minutes`.
  std::printf("\nhypotheses for writing 'minutes' (paper Tab. 2):\n");
  MemberObsKey minutes_key;
  minutes_key.type = example.clock_type;
  minutes_key.subclass = kNoSubclass;
  minutes_key.member = example.minutes;
  RuleDerivator derivator(options.derivator);
  DerivationResult minutes =
      derivator.Derive(result.snapshot.observations, minutes_key, AccessType::kWrite);
  TextTable table({"ID", "Locking Hypothesis", "sa", "sr"});
  int id = 0;
  for (const Hypothesis& hypothesis : minutes.hypotheses) {
    table.AddRow({StrFormat("#%d", id++), LockSeqToString(hypothesis.locks),
                  std::to_string(hypothesis.sa), FormatPercent(hypothesis.sr)});
  }
  std::printf("%s", table.ToString().c_str());

  // The injected bug shows up as a rule violation.
  ViolationFinder finder(&result.snapshot.db, example.registry.get(), &result.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(result.rules);
  std::printf("\nrule violations found: %zu\n", violations.size());
  for (const ViolationExample& ex : finder.Examples(violations, 5)) {
    std::printf("  %s [%s] expected {%s} but held {%s} at %s (%llu events)\n",
                ex.member.c_str(), ex.access.c_str(), ex.rule.c_str(), ex.held.c_str(),
                ex.location.c_str(), static_cast<unsigned long long>(ex.events));
  }
  return 0;
}
