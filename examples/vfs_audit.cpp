// vfs_audit: runs the full benchmark mix against the simulated kernel,
// mines locking rules for every observed data structure, and prints the
// generated documentation for a selected type — the end-to-end "phase 1-3"
// workflow of the paper applied to its main evaluation subject.
//
// Usage: vfs_audit [--ops=20000] [--seed=1] [--tac=0.9] [--type=inode]
//                  [--subclass=ext4] [--spec] [--trace-out=FILE]
#include <cstdio>

#include "src/core/doc_generator.h"
#include "src/core/pipeline.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/util/flags.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  FlagSet flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  MixOptions mix;
  mix.ops = flags.GetUint64("ops", 20000);
  mix.seed = flags.GetUint64("seed", 1);
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});

  TraceStats stats = ComputeTraceStats(sim.trace);
  std::printf("=== trace ===\n%s\n", stats.ToString().c_str());

  std::string trace_out = flags.GetString("trace-out", "");
  if (!trace_out.empty()) {
    Status status = WriteTraceToFile(sim.trace, trace_out);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.message().c_str());
      return 1;
    }
    std::printf("trace written to %s\n\n", trace_out.c_str());
  }

  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  options.derivator.accept_threshold = flags.GetDouble("tac", 0.9);
  PipelineResult result = RunPipeline(sim.trace, *sim.registry, options);
  std::printf("=== import ===\naccesses kept: %llu (filtered: %llu), transactions: %llu\n\n",
              static_cast<unsigned long long>(result.snapshot.import_stats.accesses_kept),
              static_cast<unsigned long long>(result.snapshot.import_stats.accesses_filtered),
              static_cast<unsigned long long>(result.snapshot.import_stats.txns));

  std::string type_name = flags.GetString("type", "inode");
  std::string subclass_name = flags.GetString("subclass", type_name == "inode" ? "ext4" : "");
  auto type = sim.registry->FindType(type_name);
  if (!type.has_value()) {
    std::fprintf(stderr, "unknown type: %s\n", type_name.c_str());
    return 1;
  }
  SubclassId subclass = kNoSubclass;
  if (!subclass_name.empty()) {
    auto found = sim.registry->FindSubclass(*type, subclass_name);
    if (!found.has_value()) {
      std::fprintf(stderr, "unknown subclass: %s\n", subclass_name.c_str());
      return 1;
    }
    subclass = *found;
  }

  DocGenOptions doc_options;
  doc_options.include_support = flags.GetBool("support", false);
  DocGenerator generator(sim.registry.get(), doc_options);
  if (flags.GetBool("spec", false)) {
    std::printf("%s", generator.GenerateRuleSpec(*type, subclass, result.rules).c_str());
  } else {
    std::printf("%s", generator.Generate(*type, subclass, result.rules).c_str());
  }
  return 0;
}
