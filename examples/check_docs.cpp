// check_docs: the locking-rule checker (paper Sec. 7.3). Validates the
// simulated kernel's "documented" locking rules — or a user-supplied
// rule-spec file — against a recorded trace, and buckets each rule as
// correct (!), ambivalent (~), incorrect (#), or unobserved (-).
//
// Usage: check_docs [--ops=20000] [--seed=1] [--rules=FILE]
//                   [--trace=FILE] (analyze an archived trace instead of
//                                   simulating a fresh run; requires the
//                                   built-in VFS type registry)
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/pipeline.h"
#include "src/core/rule_checker.h"
#include "src/trace/trace_io.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  FlagSet flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Rule spec: shipped documentation by default, or a file.
  std::string rules_text = VfsKernel::DocumentedRulesText();
  std::string rules_path = flags.GetString("rules", "");
  if (!rules_path.empty()) {
    std::ifstream in(rules_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", rules_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    rules_text = buffer.str();
  }
  auto rules = RuleSet::ParseText(rules_text);
  if (!rules.ok()) {
    std::fprintf(stderr, "rule parse error: %s\n", rules.status().message().c_str());
    return 1;
  }

  // Trace: archived file or fresh simulation.
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
  std::string trace_path = flags.GetString("trace", "");
  if (!trace_path.empty()) {
    registry = BuildVfsRegistry(&ids);
    auto loaded = ReadTraceFromFile(trace_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().message().c_str());
      return 1;
    }
    trace = std::move(loaded).value();
  } else {
    MixOptions mix;
    mix.ops = flags.GetUint64("ops", 20000);
    mix.seed = flags.GetUint64("seed", 1);
    SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});
    registry = std::move(sim.registry);
    trace = std::move(sim.trace);
  }

  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  PipelineResult result = RunPipeline(trace, *registry, options);

  RuleChecker checker(registry.get(), &result.snapshot.observations);
  std::vector<RuleCheckResult> checked = checker.CheckAll(rules.value());

  std::printf("=== per-rule results ===\n");
  for (const RuleCheckResult& r : checked) {
    std::printf("%s  %-70s sr=%7s (%llu/%llu)\n",
                std::string(RuleVerdictSymbol(r.verdict)).c_str(), r.rule.ToString().c_str(),
                r.total == 0 ? "n/a" : FormatPercent(r.sr).c_str(),
                static_cast<unsigned long long>(r.sa), static_cast<unsigned long long>(r.total));
  }

  std::printf("\n=== summary per data type (paper Tab. 4) ===\n");
  TextTable table({"Data Type", "#R", "#No", "#Ob", "! (%)", "~ (%)", "# (%)"});
  for (const RuleCheckSummary& s : RuleChecker::Summarize(checked)) {
    table.AddRow({s.type_name, std::to_string(s.documented), std::to_string(s.unobserved),
                  std::to_string(s.observed), StrFormat("%.2f", s.correct_pct()),
                  StrFormat("%.2f", s.ambivalent_pct()), StrFormat("%.2f", s.incorrect_pct())});
  }
  std::printf("%s", table.ToString().c_str());
  return 0;
}
