// bug_hunt: the rule-violation finder applied to the simulated kernel
// (paper Sec. 7.5). Runs the benchmark mix with the fault plan enabled,
// mines rules, then lists every context that contradicts a winning rule —
// including the i_flags bug a kernel developer confirmed for the paper.
//
// Usage: bug_hunt [--ops=20000] [--seed=1] [--tac=0.9] [--examples=12]
//                 [--workload=vfs|mm] [--clean] (disable all injected faults)
//
// --workload mm runs the address-space mix instead: mmap_lock is a range
// lock, and the seeded fault writes a vm_area_struct while holding the
// lock over a non-overlapping span, so the finder must reason by overlap.
#include <cstdio>
#include <string>

#include "src/core/pipeline.h"
#include "src/core/violation_finder.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  FlagSet flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  MixOptions mix;
  mix.ops = flags.GetUint64("ops", 20000);
  mix.seed = flags.GetUint64("seed", 1);
  std::string workload = flags.GetString("workload", "vfs");
  if (workload != "vfs" && workload != "mm") {
    std::fprintf(stderr, "bug_hunt: --workload must be vfs or mm\n");
    return 1;
  }
  FaultPlan plan = flags.GetBool("clean", false) ? FaultPlan::Clean() : FaultPlan{};
  SimulationResult sim =
      workload == "mm" ? SimulateMmRun(mix, plan) : SimulateKernelRun(mix, plan);

  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  options.derivator.accept_threshold = flags.GetDouble("tac", 0.9);
  PipelineResult result = RunPipeline(sim.trace, *sim.registry, options);

  ViolationFinder finder(&result.snapshot.db, sim.registry.get(), &result.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(result.rules);

  std::printf("=== violation summary per data type ===\n");
  TextTable table({"Data Type", "Events", "Members", "Contexts"});
  uint64_t total_events = 0;
  uint64_t total_contexts = 0;
  for (const ViolationSummaryRow& row : finder.Summarize(violations)) {
    table.AddRow({row.type_name, std::to_string(row.events), std::to_string(row.members),
                  std::to_string(row.contexts)});
    total_events += row.events;
    total_contexts += row.contexts;
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("total: %llu violating events at %llu contexts\n\n",
              static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_contexts));

  size_t limit = flags.GetUint64("examples", 12);
  std::printf("=== top violation contexts ===\n");
  for (const ViolationExample& ex : finder.Examples(violations, limit)) {
    std::printf("%s [%s]\n  rule: %s\n  held: %s\n  at %s (%llu events)\n  stack: %s\n\n",
                ex.member.c_str(), ex.access.c_str(), ex.rule.c_str(), ex.held.c_str(),
                ex.location.c_str(), static_cast<unsigned long long>(ex.events),
                ex.stack.c_str());
  }
  return 0;
}
