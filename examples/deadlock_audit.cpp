// deadlock_audit: lock-ordering analysis of the simulated kernel — the
// lockdep-style companion to rule mining (the paper's Sec. 3.2 discusses
// Linux's in-situ lockdep; LockDoc's trace makes the same analysis possible
// ex post). Builds the lock-class ordering graph from the reconstructed
// transactions, prints the dominant orderings, the deliberate same-class
// nesting conventions, and any ABBA conflicts / cycles — including the
// injected inode_lru_lock <-> i_lock inversion.
//
// Usage: deadlock_audit [--ops=20000] [--seed=1] [--clean]
#include <cstdio>

#include "src/core/importer.h"
#include "src/core/lock_order.h"
#include "src/util/flags.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  FlagSet flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  MixOptions mix;
  mix.ops = flags.GetUint64("ops", 20000);
  mix.seed = flags.GetUint64("seed", 1);
  FaultPlan plan = flags.GetBool("clean", false) ? FaultPlan::Clean() : FaultPlan{};
  SimulationResult sim = SimulateKernelRun(mix, plan);

  Database db;
  TraceImporter importer(sim.registry.get(), VfsKernel::MakeFilterConfig());
  importer.Import(sim.trace, &db);

  LockOrderGraph graph = LockOrderGraph::Build(db, *sim.registry);
  std::printf("%s\n", graph.Report(db).c_str());

  std::printf("same-class nesting conventions (ancestor-before-descendant):\n");
  for (const LockOrderEdge& edge : graph.SelfNesting()) {
    std::printf("  %s nests (n=%llu)\n", edge.from.ToString().c_str(),
                static_cast<unsigned long long>(edge.support));
  }

  std::printf("\npotential deadlock cycles:\n");
  auto cycles = graph.FindCycles();
  if (cycles.empty()) {
    std::printf("  none\n");
  }
  for (const LockOrderCycle& cycle : cycles) {
    std::printf("  %s\n", cycle.ToString().c_str());
  }
  return 0;
}
