// Tab. 6 reproduction: summary of mined locking rules for the 11 observed
// data types and the per-filesystem inode subclasses — member counts,
// filtered members, generated rules per access type, and how many of those
// rules are "no lock needed".
#include <cstdio>
#include <fstream>
#include <map>

#include "bench/common.h"
#include "src/util/stats.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  StandardRun run = RunStandardEvaluation(argc, argv);
  const TypeRegistry& registry = *run.sim.registry;

  // --timings-json FILE: machine-readable per-phase timings for the bench
  // harness (jobs count, wall seconds, items/sec per phase).
  {
    FlagSet flags;
    std::string error;
    flags.Parse(argc, argv, &error);
    std::string timings_path = flags.GetString("timings-json", "");
    if (!timings_path.empty()) {
      std::ofstream out(timings_path);
      out << run.pipeline.timings.ToJson() << "\n";
    }
  }

  struct Row {
    uint64_t rules_r = 0, rules_w = 0;
    uint64_t no_lock_r = 0, no_lock_w = 0;
  };
  std::map<std::pair<TypeId, SubclassId>, Row> rows;
  for (const DerivationResult& result : run.pipeline.rules) {
    Row& row = rows[{result.key.type, result.key.subclass}];
    bool no_lock = result.winner_is_no_lock();
    if (result.access == AccessType::kRead) {
      ++row.rules_r;
      row.no_lock_r += no_lock ? 1 : 0;
    } else {
      ++row.rules_w;
      row.no_lock_w += no_lock ? 1 : 0;
    }
  }

  std::printf("Tab. 6 — mined locking rules per data type (tac = 0.9)\n\n");
  TextTable table({"Data Type", "#M", "#Bl", "#Rules r", "#Rules w", "#Nl r", "#Nl w"});
  for (const auto& [key, row] : rows) {
    const TypeLayout& layout = registry.layout(key.first);
    uint64_t filtered = 0;
    for (const MemberDef& def : layout.members()) {
      if (def.is_lock || def.is_atomic || def.blacklisted) {
        ++filtered;
      }
    }
    table.AddRow({registry.QualifiedName(key.first, key.second),
                  std::to_string(layout.member_count()), std::to_string(filtered),
                  std::to_string(row.rules_r), std::to_string(row.rules_w),
                  std::to_string(row.no_lock_r), std::to_string(row.no_lock_w)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\n%s", run.pipeline.timings.ToString().c_str());
  std::printf(
      "\npaper Tab. 6 (#M/#Bl): backing_dev_info 43/2, block_device 21/2, buffer_head 13/0,\n"
      "  cdev 6/0, dentry 21/1, inode 65/5 (per filesystem), journal_head 15/0,\n"
      "  journal_t 58/11, pipe_inode_info 16/1, super_block 56/3, transaction_t 27/1;\n"
      "  sparse subclasses (anon_inodefs, debugfs, sockfs) yield few rules, ext4 the most.\n");
  return 0;
}
