// Micro-benchmark for the .lockdb snapshot layer: serialize/deserialize
// throughput, the container scan, and the motivating comparison — loading a
// snapshot vs re-running import + extraction from the trace.
#include <benchmark/benchmark.h>

#include "src/core/pipeline.h"
#include "src/core/snapshot.h"
#include "src/db/snapshot.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

struct Fixture {
  SimulationResult sim;
  AnalysisSnapshot snapshot;
  std::string bytes;

  explicit Fixture(uint64_t ops) {
    MixOptions mix;
    mix.ops = ops;
    mix.seed = 5;
    sim = SimulateKernelRun(mix, FaultPlan{});
    PipelineOptions options;
    options.filter = VfsKernel::MakeFilterConfig();
    snapshot = BuildSnapshot(sim.trace, *sim.registry, options);
    bytes = SerializeSnapshot(snapshot, *sim.registry);
  }
};

Fixture& SharedFixture(benchmark::State& state) {
  static Fixture fixture(static_cast<uint64_t>(state.range(0)));
  return fixture;
}

void BM_Serialize(benchmark::State& state) {
  Fixture& fixture = SharedFixture(state);
  for (auto _ : state) {
    std::string bytes = SerializeSnapshot(fixture.snapshot, *fixture.sim.registry);
    benchmark::DoNotOptimize(bytes);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.bytes.size()));
}
BENCHMARK(BM_Serialize)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_Deserialize(benchmark::State& state) {
  Fixture& fixture = SharedFixture(state);
  for (auto _ : state) {
    auto snapshot = DeserializeSnapshot(fixture.bytes, *fixture.sim.registry);
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.bytes.size()));
}
BENCHMARK(BM_Deserialize)->Arg(20000)->Unit(benchmark::kMillisecond);

void BM_ContainerScan(benchmark::State& state) {
  Fixture& fixture = SharedFixture(state);
  for (auto _ : state) {
    auto sections = ScanSnapshotSections(fixture.bytes);
    benchmark::DoNotOptimize(sections);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.bytes.size()));
}
BENCHMARK(BM_ContainerScan)->Arg(20000)->Unit(benchmark::kMillisecond);

// The payoff being bought: import + extraction from the trace...
void BM_BuildFromTrace(benchmark::State& state) {
  Fixture& fixture = SharedFixture(state);
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  for (auto _ : state) {
    AnalysisSnapshot snapshot = BuildSnapshot(fixture.sim.trace, *fixture.sim.registry, options);
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_BuildFromTrace)->Arg(20000)->Unit(benchmark::kMillisecond);

// ...vs the same analysis-ready state straight from .lockdb bytes.
void BM_LoadFromSnapshot(benchmark::State& state) {
  Fixture& fixture = SharedFixture(state);
  for (auto _ : state) {
    auto snapshot = DeserializeSnapshot(fixture.bytes, *fixture.sim.registry);
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_LoadFromSnapshot)->Arg(20000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
