// Tab. 8 reproduction: concrete locking-rule violation examples — for each,
// the member, the locks that should have been held (the mined rule), the
// locks actually held, and the source context. Includes the paper's three
// showcased findings: inode.i_hash in __remove_inode_hash (fs/inode.c),
// journal_t.j_committing_transaction under EO(i_rwsem) -> ES(j_state_lock)
// (fs/ext4/inode.c), and dentry.d_subdirs under EO(i_rwsem) -> rcu
// (fs/libfs.c).
#include <cstdio>

#include "bench/common.h"
#include "src/core/violation_finder.h"
#include "src/util/flags.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  StandardRun run = RunStandardEvaluation(argc, argv);

  FlagSet flags;
  std::string error;
  flags.Parse(argc, argv, &error);
  size_t limit = flags.GetUint64("examples", 10);

  ViolationFinder finder(&run.pipeline.snapshot.db, run.sim.registry.get(),
                         &run.pipeline.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(run.pipeline.rules);

  std::printf("Tab. 8 — locking-rule violation examples\n\n");
  for (const ViolationExample& ex : finder.Examples(violations, limit)) {
    std::printf("%s [%s]\n", ex.member.c_str(), ex.access.c_str());
    std::printf("  rule:     %s\n", ex.rule.c_str());
    std::printf("  held:     %s\n", ex.held.c_str());
    std::printf("  location: %s (%llu events)\n", ex.location.c_str(),
                static_cast<unsigned long long>(ex.events));
    std::printf("  stack:    %s\n\n", ex.stack.c_str());
  }
  std::printf("paper Tab. 8: inode:ext4.i_hash held inode_hash_lock -> EO(i_lock) at\n"
              "fs/inode.c:507; journal_t.j_committing_transaction held EO(i_rwsem) ->\n"
              "ES(j_state_lock) at fs/ext4/inode.c:4685; dentry.d_subdirs held\n"
              "EO(i_rwsem) -> rcu at fs/libfs.c:104.\n");
  return 0;
}
