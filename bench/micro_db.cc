// Micro-benchmark for the mini relational engine: insert, index build, and
// indexed/unindexed lookup throughput.
#include <benchmark/benchmark.h>

#include "src/db/table.h"
#include "src/util/rng.h"

namespace lockdoc {
namespace {

Table BuildTable(size_t rows, bool indexed) {
  Table table("bench", {{"id", ColumnType::kUint64},
                        {"key", ColumnType::kUint64},
                        {"payload", ColumnType::kUint64}});
  Rng rng(5);
  for (size_t i = 0; i < rows; ++i) {
    table.Insert({static_cast<uint64_t>(i), rng.Below(rows / 8 + 1), rng.Next()});
  }
  if (indexed) {
    table.CreateIndex(table.ColumnIndex("key"));
  }
  return table;
}

void BM_Insert(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Table table = BuildTable(rows, /*indexed=*/false);
    benchmark::DoNotOptimize(table.row_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_Insert)->Range(1024, 262144);

void BM_InsertIndexed(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Table table = BuildTable(rows, /*indexed=*/true);
    benchmark::DoNotOptimize(table.row_count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(rows));
}
BENCHMARK(BM_InsertIndexed)->Range(1024, 262144);

void BM_LookupIndexed(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table table = BuildTable(rows, /*indexed=*/true);
  size_t key_col = table.ColumnIndex("key");
  Rng rng(7);
  for (auto _ : state) {
    auto hits = table.LookupEqual(key_col, rng.Below(rows / 8 + 1));
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LookupIndexed)->Range(1024, 262144);

void BM_LookupScan(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  Table table = BuildTable(rows, /*indexed=*/false);
  size_t key_col = table.ColumnIndex("key");
  Rng rng(7);
  for (auto _ : state) {
    auto hits = table.LookupEqual(key_col, rng.Below(rows / 8 + 1));
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_LookupScan)->Range(1024, 65536);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
