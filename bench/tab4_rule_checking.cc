// Tab. 4 reproduction: validation of the (simulated) kernel's documented
// locking rules — per data type, how many rules exist, how many of their
// members the benchmark mix observed, and the split into correct (!),
// ambivalent (~), and incorrect (#) rules.
#include <cstdio>

#include "bench/common.h"
#include "src/core/rule_checker.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  StandardRun run = RunStandardEvaluation(argc, argv);

  auto rules = RuleSet::ParseText(VfsKernel::DocumentedRulesText());
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().message().c_str());
    return 1;
  }
  RuleChecker checker(run.sim.registry.get(), &run.pipeline.snapshot.observations);
  std::vector<RuleCheckResult> results = checker.CheckAll(rules.value());

  std::printf("Tab. 4 — summary of validated locking rules\n\n");
  TextTable table({"Data Type", "#R", "#No", "#Ob", "! (%)", "~ (%)", "# (%)"});
  for (const RuleCheckSummary& s : RuleChecker::Summarize(results)) {
    table.AddRow({s.type_name, std::to_string(s.documented), std::to_string(s.unobserved),
                  std::to_string(s.observed), StrFormat("%.2f", s.correct_pct()),
                  StrFormat("%.2f", s.ambivalent_pct()), StrFormat("%.2f", s.incorrect_pct())});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper Tab. 4: inode 14/3/11 18.18/45.45/36.36 | journal_head 26/3/23 "
      "56.52/17.39/26.09\n"
      "              transaction_t 42/13/29 79.31/13.79/6.90 | journal_t 38/8/30 "
      "56.67/33.33/10.00\n"
      "              dentry 22/0/22 27.27/63.64/9.09\n");
  return 0;
}
