// Shared setup for the table/figure reproduction benches: one standard
// simulated-kernel run (the paper's benchmark mix, Sec. 7.1) plus the
// LockDoc pipeline over it.
#ifndef BENCH_COMMON_H_
#define BENCH_COMMON_H_

#include <cstdlib>
#include <string>

#include "src/core/pipeline.h"
#include "src/util/flags.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {

struct StandardRun {
  SimulationResult sim;
  PipelineResult pipeline;
  MixOptions mix;
};

// Runs the standard evaluation setup. Flags: --ops (default 30000),
// --seed (default 1), --tac (default 0.9), --jobs (default 0 = all
// hardware threads; results are byte-identical at any value). The
// LOCKDOC_BENCH_OPS environment variable overrides the default op count
// (handy for CI).
inline StandardRun RunStandardEvaluation(int argc, const char* const* argv,
                                         CoverageTracker* coverage = nullptr) {
  FlagSet flags;
  std::string error;
  flags.Parse(argc, argv, &error);

  StandardRun run;
  run.mix.ops = flags.GetUint64("ops", 30000);
  if (const char* env = std::getenv("LOCKDOC_BENCH_OPS"); env != nullptr) {
    uint64_t ops = 0;
    if (ParseUint64(env, &ops) && ops > 0) {
      run.mix.ops = ops;
    }
  }
  run.mix.seed = flags.GetUint64("seed", 1);
  run.sim = SimulateKernelRun(run.mix, FaultPlan{}, coverage);

  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  options.derivator.accept_threshold = flags.GetDouble("tac", 0.9);
  options.jobs = flags.GetUint64("jobs", 0);
  run.pipeline = RunPipeline(run.sim.trace, *run.sim.registry, options);
  return run;
}

}  // namespace lockdoc

#endif  // BENCH_COMMON_H_
