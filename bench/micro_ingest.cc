// Micro-benchmark for the ingest path: the overlapped parallel import
// (trace -> .lockdb on disk) at several job counts, and the load side — the
// v2 zero-copy mmap load vs the v1 varint deserialize vs rebuilding the
// snapshot from the trace. The load comparison is what the v2 container
// buys; the jobs sweep is bounded by the host's core count (a single-core
// machine shows overhead, not speedup — see BENCH_ingest.json's context).
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/core/pipeline.h"
#include "src/core/snapshot.h"
#include "src/util/file_io.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

uint64_t BenchOps() {
  uint64_t ops = 100000;
  if (const char* env = std::getenv("LOCKDOC_BENCH_OPS"); env != nullptr) {
    uint64_t parsed = 0;
    if (ParseUint64(env, &parsed) && parsed > 0) {
      ops = parsed;
    }
  }
  return ops;
}

struct Fixture {
  SimulationResult sim;
  PipelineOptions options;
  std::string dir;
  std::string v1_path;
  std::string v2_path;
  uint64_t v2_bytes = 0;

  Fixture() {
    MixOptions mix;
    mix.ops = BenchOps();
    mix.seed = 5;
    sim = SimulateKernelRun(mix, FaultPlan{});
    options.filter = VfsKernel::MakeFilterConfig();

    dir = (std::filesystem::temp_directory_path() /
           ("lockdoc_bench_ingest." + std::to_string(::getpid())))
              .string();
    std::filesystem::create_directories(dir);
    v1_path = dir + "/bench_v1.lockdb";
    v2_path = dir + "/bench_v2.lockdb";
    AnalysisSnapshot snapshot = BuildSnapshot(sim.trace, *sim.registry, options);
    SnapshotWriteOptions v1;
    v1.container_version = 1;
    LOCKDOC_CHECK(SaveSnapshot(snapshot, *sim.registry, v1_path, v1).ok());
    LOCKDOC_CHECK(SaveSnapshot(snapshot, *sim.registry, v2_path).ok());
    v2_bytes = FileSize(v2_path).value();
  }

  ~Fixture() { std::filesystem::remove_all(dir); }
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

// The load benchmarks compare decode/attach cost, not disk throughput: the
// import benchmarks that run first write enough dirty pages to evict the
// fixture files from the page cache, and a single cold 300MB+ fault sweep
// would swamp the timed region with disk variance. Re-reading the file
// right before the loop pins the warm-cache case — the representative one
// for import-once/analyze-many.
void Prefault(const std::string& path) {
  auto bytes = ReadFileToString(path);
  LOCKDOC_CHECK(bytes.ok());
  benchmark::DoNotOptimize(bytes.value().data());
}

// The full import command: trace -> analysis snapshot -> .lockdb on disk,
// with the head sections streamed behind observation extraction. Arg is the
// job count; bytes on disk are identical at every value.
void BM_ImportAndSave(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  PipelineOptions options = fixture.options;
  options.jobs = static_cast<size_t>(state.range(0));
  std::string path = fixture.dir + "/import_out.lockdb";
  for (auto _ : state) {
    auto snapshot = BuildAndSaveSnapshot(fixture.sim.trace, *fixture.sim.registry, options,
                                         SnapshotWriteOptions{}, path);
    LOCKDOC_CHECK(snapshot.ok());
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.v2_bytes));
}
BENCHMARK(BM_ImportAndSave)->Arg(1)->Arg(2)->Arg(8)->Unit(benchmark::kMillisecond);

// The v2 zero-copy load: mmap + header-checked scan + column views attached
// in place. Default options still sweep every payload CRC.
void BM_LoadV2Mmap(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  Prefault(fixture.v2_path);
  for (auto _ : state) {
    auto snapshot = LoadSnapshot(fixture.v2_path, *fixture.sim.registry);
    LOCKDOC_CHECK(snapshot.ok());
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.v2_bytes));
}
BENCHMARK(BM_LoadV2Mmap)->Unit(benchmark::kMillisecond);

// Same load with payload CRCs deferred (trusted file): the pure zero-copy
// attach cost.
void BM_LoadV2MmapNoCrc(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  SnapshotLoadOptions trusting;
  trusting.verify_payload_crcs = false;
  Prefault(fixture.v2_path);
  for (auto _ : state) {
    auto snapshot = LoadSnapshot(fixture.v2_path, *fixture.sim.registry, trusting);
    LOCKDOC_CHECK(snapshot.ok());
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.v2_bytes));
}
BENCHMARK(BM_LoadV2MmapNoCrc)->Unit(benchmark::kMillisecond);

// The legacy v1 load: every varint decoded into owned storage.
void BM_LoadV1Deserialize(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  Prefault(fixture.v1_path);
  for (auto _ : state) {
    auto snapshot = LoadSnapshot(fixture.v1_path, *fixture.sim.registry);
    LOCKDOC_CHECK(snapshot.ok());
    benchmark::DoNotOptimize(snapshot);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(fixture.v2_bytes));
}
BENCHMARK(BM_LoadV1Deserialize)->Unit(benchmark::kMillisecond);

// The ceiling both loads are measured against: rebuilding the snapshot from
// the trace (what every analysis paid before .lockdb existed).
void BM_RebuildFromTrace(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    AnalysisSnapshot snapshot =
        BuildSnapshot(fixture.sim.trace, *fixture.sim.registry, fixture.options);
    benchmark::DoNotOptimize(snapshot);
  }
}
BENCHMARK(BM_RebuildFromTrace)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
