// Tab. 1 reproduction: accesses to `seconds` and `minutes` grouped by
// access type for one execution of the clock example's transactions a and
// b — observed counts, folded counts, and the write-over-read matrix.
#include <cstdio>

#include "src/core/clock_example.h"
#include "src/core/pipeline.h"
#include "src/util/stats.h"

using namespace lockdoc;

namespace {

struct Cell {
  uint32_t observed_r = 0, observed_w = 0;
  uint32_t folded_r = 0, folded_w = 0;
  uint32_t wor_r = 0, wor_w = 0;
};

// Extracts the matrix for the FIRST transaction whose lock sequence matches
// `txn_locks` (one execution, as in the paper's table).
Cell ExtractCell(const ObservationStore& store, const MemberObsKey& key,
                 const std::string& txn_locks) {
  Cell cell;
  const ObservationGroup* first = nullptr;
  for (const ObservationGroup& group : store.GroupsFor(key)) {
    if (LockSeqToString(store.seq(group.lockseq_id)) != txn_locks) {
      continue;
    }
    if (first == nullptr || group.txn_id < first->txn_id) {
      first = &group;
    }
  }
  if (first != nullptr) {
    cell.observed_r = first->n_reads;
    cell.observed_w = first->n_writes;
    cell.folded_r = first->n_reads > 0 ? 1 : 0;
    cell.folded_w = first->n_writes > 0 ? 1 : 0;
    cell.wor_r = (first->effective() == AccessType::kRead) ? 1 : 0;
    cell.wor_w = (first->effective() == AccessType::kWrite) ? 1 : 0;
  }
  return cell;
}

}  // namespace

int main() {
  ClockExampleOptions options;
  options.iterations = 60;  // One full minute: exactly one txn a and one txn b.
  options.include_faulty_execution = false;
  ClockExample example = BuildClockExample(options);

  PipelineResult result = RunPipeline(example.trace, *example.registry);

  std::printf("Tab. 1 — accesses to seconds and minutes for one execution\n");
  std::printf("(a = sec_lock only; b = sec_lock -> min_lock)\n\n");

  TextTable table({"Variable", "Type", "Observed a", "Observed b", "Folded a", "Folded b",
                   "WoR a", "WoR b"});
  for (const char* member_name : {"seconds", "minutes"}) {
    MemberObsKey key;
    key.type = example.clock_type;
    key.subclass = kNoSubclass;
    key.member = (member_name == std::string("seconds")) ? example.seconds : example.minutes;
    Cell a = ExtractCell(result.snapshot.observations, key, "sec_lock");
    Cell b = ExtractCell(result.snapshot.observations, key, "sec_lock -> min_lock");
    table.AddRow({member_name, "r", std::to_string(a.observed_r), std::to_string(b.observed_r),
                  std::to_string(a.folded_r), std::to_string(b.folded_r),
                  std::to_string(a.wor_r), std::to_string(b.wor_r)});
    table.AddRow({member_name, "w", std::to_string(a.observed_w), std::to_string(b.observed_w),
                  std::to_string(a.folded_w), std::to_string(b.folded_w),
                  std::to_string(a.wor_w), std::to_string(b.wor_w)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\npaper Tab. 1: seconds r: 2/0|1/0|0/0, seconds w: 1/1|1/1|1/1,\n");
  std::printf("              minutes r: 0/1|0/1|0/0, minutes w: 0/1|0/1|0/1\n");
  return 0;
}
