// Micro-benchmark for trace serialization: binary encode/decode throughput
// of realistic event streams (the archival path that makes ex-post analysis
// repeatable).
#include <benchmark/benchmark.h>

#include <sstream>

#include "src/core/clock_example.h"
#include "src/trace/trace_io.h"

namespace lockdoc {
namespace {

void BM_TraceWrite(benchmark::State& state) {
  ClockExampleOptions options;
  options.iterations = static_cast<int>(state.range(0));
  ClockExample example = BuildClockExample(options);
  for (auto _ : state) {
    std::ostringstream out;
    WriteTrace(example.trace, out);
    benchmark::DoNotOptimize(out.str().size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(example.trace.size()));
}
BENCHMARK(BM_TraceWrite)->Range(1000, 64000);

void BM_TraceRead(benchmark::State& state) {
  ClockExampleOptions options;
  options.iterations = static_cast<int>(state.range(0));
  ClockExample example = BuildClockExample(options);
  std::ostringstream out;
  WriteTrace(example.trace, out);
  std::string encoded = out.str();
  for (auto _ : state) {
    std::istringstream in(encoded);
    auto trace = ReadTrace(in);
    benchmark::DoNotOptimize(trace.ok());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(example.trace.size()));
}
BENCHMARK(BM_TraceRead)->Range(1000, 64000);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
