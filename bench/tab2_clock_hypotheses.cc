// Tab. 2 reproduction: every locking-rule hypothesis for writes to the
// clock example's `minutes` variable with absolute and relative support.
// Expected: no-lock and sec_lock at sa=17/sr=100%; min_lock and
// sec_lock->min_lock at sa=16/sr=94.12%; min_lock->sec_lock at sa=0; the
// winner is sec_lock -> min_lock.
#include <cstdio>

#include "src/core/clock_example.h"
#include "src/core/pipeline.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

using namespace lockdoc;

int main() {
  ClockExample example = BuildClockExample();  // 1000 iterations + 1 faulty.

  PipelineOptions options;
  options.derivator.enumerate_permutations = true;
  PipelineResult result = RunPipeline(example.trace, *example.registry, options);

  MemberObsKey key;
  key.type = example.clock_type;
  key.subclass = kNoSubclass;
  key.member = example.minutes;
  RuleDerivator derivator(options.derivator);
  DerivationResult minutes = derivator.Derive(result.snapshot.observations, key, AccessType::kWrite);

  std::printf("Tab. 2 — locking hypotheses for writing `minutes`\n\n");
  TextTable table({"ID", "Locking Hypothesis", "sa", "sr"});
  int id = 0;
  for (const Hypothesis& hypothesis : minutes.hypotheses) {
    table.AddRow({StrFormat("#%d", id++), LockSeqToString(hypothesis.locks),
                  std::to_string(hypothesis.sa), FormatPercent(hypothesis.sr)});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\nwinner: %s (sa=%llu, sr=%s)\n", LockSeqToString(minutes.winner->locks).c_str(),
              static_cast<unsigned long long>(minutes.winner->sa),
              FormatPercent(minutes.winner->sr).c_str());
  std::printf("paper Tab. 2: #0 no lock 17/100%%, #1 sec_lock 17/100%%,\n");
  std::printf("              #2 sec_lock->min_lock 16/94.12%%, #3 min_lock 16/94.12%%,\n");
  std::printf("              #4 min_lock->sec_lock 0/0%% — winner #2\n");
  return 0;
}
