// Micro-benchmark for the monitoring/tracing substrate: simulated-kernel
// event throughput (the analogue of the paper's 34-minute Bochs run being
// dominated by instrumentation cost) and the cost of the benchmark mix.
#include <benchmark/benchmark.h>

#include "src/core/pipeline.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

void BM_SimulateMix(benchmark::State& state) {
  size_t ops = static_cast<size_t>(state.range(0));
  uint64_t events = 0;
  for (auto _ : state) {
    MixOptions options;
    options.ops = ops;
    options.seed = 1;
    SimulationResult result = SimulateKernelRun(options, FaultPlan{});
    events = result.trace.size();
    benchmark::DoNotOptimize(result.trace.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(events));
  state.counters["events"] = static_cast<double>(events);
}
BENCHMARK(BM_SimulateMix)->Arg(1000)->Arg(4000)->Arg(16000)->Unit(benchmark::kMillisecond);

void BM_RawEventEmission(benchmark::State& state) {
  // Lower bound: pure lock/access event emission without workload logic.
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  for (auto _ : state) {
    state.PauseTiming();
    Trace trace;
    SimKernel sim(&trace, registry.get());
    FunctionScope fn(sim, "bench.c", "emit", 1, 10);
    ObjectRef obj = sim.Create(ids.cdev, kNoSubclass, 1);
    GlobalLock lock = sim.DefineStaticLock("bench_lock", LockType::kSpinlock);
    MemberIndex member = *registry->layout(ids.cdev).FindMember("count");
    state.ResumeTiming();
    for (int i = 0; i < 10000; ++i) {
      sim.LockGlobal(lock, 2);
      sim.Write(obj, member, 3);
      sim.UnlockGlobal(lock, 4);
    }
    state.PauseTiming();
    sim.Destroy(obj, 9);
    state.ResumeTiming();
    benchmark::DoNotOptimize(trace.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 30000);
}
BENCHMARK(BM_RawEventEmission);

void BM_FullPipeline(benchmark::State& state) {
  // End-to-end: import + extraction + derivation over a prebuilt trace
  // (the analysis side only; simulation excluded).
  MixOptions options;
  options.ops = static_cast<size_t>(state.range(0));
  options.seed = 1;
  SimulationResult sim = SimulateKernelRun(options, FaultPlan{});
  PipelineOptions pipeline_options;
  pipeline_options.filter = VfsKernel::MakeFilterConfig();
  for (auto _ : state) {
    PipelineResult result = RunPipeline(sim.trace, *sim.registry, pipeline_options);
    benchmark::DoNotOptimize(result.rules.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(sim.trace.size()));
}
BENCHMARK(BM_FullPipeline)->Arg(2000)->Arg(8000)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
