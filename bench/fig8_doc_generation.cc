// Fig. 8 reproduction: the generated locking-rule documentation for
// fs/inode.c — kernel-comment-style output with "No locks needed" and
// EO/ES-grouped members, produced by the documentation generator from the
// mined rules.
#include <cstdio>

#include "bench/common.h"
#include "src/core/doc_generator.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  StandardRun run = RunStandardEvaluation(argc, argv);
  const TypeRegistry& registry = *run.sim.registry;

  DocGenerator generator(run.sim.registry.get());

  std::printf("Fig. 8 — generated locking documentation for fs/inode.c (ext4 inodes)\n\n");
  TypeId inode = *registry.FindType("inode");
  SubclassId ext4 = *registry.FindSubclass(inode, "ext4");
  std::printf("%s\n", generator.Generate(inode, ext4, run.pipeline.rules).c_str());

  std::printf("generated documentation for the journal (fs/jbd2):\n\n");
  TypeId journal = *registry.FindType("journal_t");
  std::printf("%s", generator.Generate(journal, kNoSubclass, run.pipeline.rules).c_str());
  return 0;
}
