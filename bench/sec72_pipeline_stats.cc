// Sec. 7.2 reproduction: tracing and locking-rule derivation statistics —
// event counts by kind, distinct locks (static vs embedded), allocation
// counts, and the wall-clock time of every pipeline phase (monitoring/
// tracing, filtering + database import, observation extraction, rule
// derivation, counterexample extraction).
#include <chrono>
#include <cstdio>

#include "src/core/pipeline.h"
#include "src/core/violation_finder.h"
#include "src/trace/trace_stats.h"
#include "src/util/flags.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

using namespace lockdoc;

namespace {

double Seconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  std::string error;
  flags.Parse(argc, argv, &error);

  MixOptions mix;
  mix.ops = flags.GetUint64("ops", 30000);
  if (const char* env = std::getenv("LOCKDOC_BENCH_OPS"); env != nullptr) {
    uint64_t ops = 0;
    if (ParseUint64(env, &ops) && ops > 0) {
      mix.ops = ops;
    }
  }
  mix.seed = flags.GetUint64("seed", 1);
  // --jobs N: analysis threads (0 = all hardware threads). Results are
  // byte-identical at any value; only the phase timings change.
  ThreadPool pool(flags.GetUint64("jobs", 0));

  auto t0 = std::chrono::steady_clock::now();
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});
  auto t1 = std::chrono::steady_clock::now();

  Database db;
  TraceImporter importer(sim.registry.get(), VfsKernel::MakeFilterConfig());
  ImportStats import_stats = importer.Import(sim.trace, &db);
  auto t2 = std::chrono::steady_clock::now();

  ObservationStore observations = ExtractObservations(db, *sim.registry, &pool);
  auto t3 = std::chrono::steady_clock::now();

  RuleDerivator derivator;
  std::vector<DerivationResult> rules = derivator.DeriveAll(observations, &pool);
  auto t4 = std::chrono::steady_clock::now();

  ViolationFinder finder(&db, sim.registry.get(), &observations);
  std::vector<Violation> violations = finder.FindAll(rules, &pool);
  auto t5 = std::chrono::steady_clock::now();

  TraceStats stats = ComputeTraceStats(sim.trace);
  std::printf("Sec. 7.2 — tracing and locking-rule derivation statistics\n\n");
  std::printf("%s", stats.ToString().c_str());
  std::printf("accesses kept after filtering: %s (filtered: %s)\n",
              FormatWithCommas(import_stats.accesses_kept).c_str(),
              FormatWithCommas(import_stats.accesses_filtered).c_str());
  std::printf("transactions reconstructed:    %s (%s with locks held)\n",
              FormatWithCommas(import_stats.txns).c_str(),
              FormatWithCommas(import_stats.locked_txns).c_str());
  std::printf("lock instances:                %s\n",
              FormatWithCommas(import_stats.lock_instances).c_str());
  std::printf("derived rules:                 %zu (for %zu member populations)\n",
              rules.size(), observations.groups().size());
  uint64_t counterexamples = 0;
  for (const Violation& violation : violations) {
    counterexamples += violation.seqs.size();
  }
  std::printf("counterexample events:         %s\n\n",
              FormatWithCommas(counterexamples).c_str());

  std::printf("phase timings (%zu jobs):\n", pool.thread_count());
  std::printf("  monitoring/tracing:          %.3f s\n", Seconds(t0, t1));
  std::printf("  filtering + database import: %.3f s\n", Seconds(t1, t2));
  std::printf("  observation extraction:      %.3f s\n", Seconds(t2, t3));
  std::printf("  locking-rule derivation:     %.3f s\n", Seconds(t3, t4));
  std::printf("  counterexample extraction:   %.3f s\n", Seconds(t4, t5));
  std::printf("\npaper (34-minute Bochs run): 27.4 M events, 13 M lock ops, 14.4 M accesses\n"
              "(13.9 M after filtering), 33,606 allocations, 41,589 locks (821 static,\n"
              "40,768 embedded); derivation itself took 3.02 s.\n");
  return 0;
}
