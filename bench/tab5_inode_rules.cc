// Tab. 5 reproduction: the detailed per-member check results for struct
// inode's documented rules, ranked by relative support — including the
// famous i_lru ~50 %, i_state-read ~20 %, and the never-followed read rules.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"
#include "src/core/rule_checker.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  StandardRun run = RunStandardEvaluation(argc, argv);

  auto rules = RuleSet::ParseText(VfsKernel::DocumentedRulesText());
  if (!rules.ok()) {
    std::fprintf(stderr, "%s\n", rules.status().message().c_str());
    return 1;
  }
  RuleChecker checker(run.sim.registry.get(), &run.pipeline.snapshot.observations);

  std::vector<RuleCheckResult> inode_results;
  for (const LockingRule& rule : rules.value().rules()) {
    if (rule.member.type_name == "inode") {
      RuleCheckResult result = checker.Check(rule);
      if (result.verdict != RuleVerdict::kUnobserved) {
        inode_results.push_back(std::move(result));
      }
    }
  }
  std::sort(inode_results.begin(), inode_results.end(),
            [](const RuleCheckResult& a, const RuleCheckResult& b) { return a.sr > b.sr; });

  std::printf("Tab. 5 — documented rules for struct inode, by relative support\n\n");
  TextTable table({"Member", "r/w", "Locking Rule", "sr", "OK?"});
  for (const RuleCheckResult& r : inode_results) {
    table.AddRow({r.rule.member.member_name, std::string(AccessTypeName(r.rule.access)),
                  LockSeqToString(r.rule.locks), FormatPercent(r.sr),
                  std::string(RuleVerdictSymbol(r.verdict))});
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\npaper Tab. 5: i_bytes w 100%% !, i_state w 100%% !, i_hash w 98.1%% ~,\n"
      "  i_blocks w 93.56%% ~, i_lru r 50.6%% ~, i_lru w 50.39%% ~, i_state r 19.78%% ~,\n"
      "  i_size r 0%% #, i_hash r 0%% #, i_blocks r 0%% #, i_size w 0%% #\n");
  return 0;
}
