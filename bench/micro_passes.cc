// Micro-benchmark for the unified analysis-pass framework: the full phase-3
// suite through one AnalysisContext (`lockdoc analyze` semantics — load the
// snapshot once, derive rules once, share the member/posting/lock-order
// indexes) vs the pre-framework cost of running N separate commands, each
// of which re-loads the snapshot and re-derives everything it needs.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "src/core/analysis_context.h"
#include "src/core/analysis_pass.h"
#include "src/core/pipeline.h"
#include "src/core/snapshot.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

uint64_t BenchOps() {
  uint64_t ops = 100000;
  if (const char* env = std::getenv("LOCKDOC_BENCH_OPS"); env != nullptr) {
    uint64_t parsed = 0;
    if (ParseUint64(env, &parsed) && parsed > 0) {
      ops = parsed;
    }
  }
  return ops;
}

struct Fixture {
  SimulationResult sim;
  std::string bytes;

  Fixture() {
    MixOptions mix;
    mix.ops = BenchOps();
    mix.seed = 9;
    sim = SimulateKernelRun(mix, FaultPlan{});
    PipelineOptions options;
    options.filter = VfsKernel::MakeFilterConfig();
    AnalysisSnapshot snapshot = BuildSnapshot(sim.trace, *sim.registry, options);
    bytes = SerializeSnapshot(snapshot, *sim.registry);
  }
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

AnalysisOptions PassRunOptions() {
  AnalysisOptions options;
  options.pipeline.jobs = 1;
  options.pass.documented_rules_text = VfsKernel::DocumentedRulesText();
  return options;
}

// Every registered single-input pass, in canonical order (diff needs a
// second input and is excluded — exactly what `lockdoc analyze` runs).
size_t RunPass(const AnalysisPass& pass, AnalysisContext& context) {
  PassOutput out;
  Status status = pass.Run(context, out);
  LOCKDOC_CHECK(status.ok());
  return out.text.size();
}

// One `lockdoc analyze` run: a single snapshot load, a single context, all
// passes sharing its lazily-built indexes.
void BM_FullSuiteAnalyze(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    auto snapshot = DeserializeSnapshot(fixture.bytes, *fixture.sim.registry);
    LOCKDOC_CHECK(snapshot.ok());
    AnalysisContext context(&snapshot.value(), fixture.sim.registry.get(), PassRunOptions());
    size_t total = 0;
    for (const auto& pass : PassRegistry::Default().passes()) {
      if (pass->name() == "diff") {
        continue;
      }
      total += RunPass(*pass, context);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_FullSuiteAnalyze)->Unit(benchmark::kMillisecond);

// The same suite as N separate commands: every pass pays its own snapshot
// load and its own context (so rule derivation and the shared indexes are
// rebuilt per command).
void BM_SeparateCommands(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& pass : PassRegistry::Default().passes()) {
      if (pass->name() == "diff") {
        continue;
      }
      auto snapshot = DeserializeSnapshot(fixture.bytes, *fixture.sim.registry);
      LOCKDOC_CHECK(snapshot.ok());
      AnalysisContext context(&snapshot.value(), fixture.sim.registry.get(), PassRunOptions());
      total += RunPass(*pass, context);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_SeparateCommands)->Unit(benchmark::kMillisecond);

// The shared-index payoff in isolation: passes only, snapshot already
// loaded — cold context (derive + build indexes once) vs warm context
// (everything memoized).
void BM_PassesColdContext(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  auto snapshot = DeserializeSnapshot(fixture.bytes, *fixture.sim.registry);
  LOCKDOC_CHECK(snapshot.ok());
  for (auto _ : state) {
    AnalysisContext context(&snapshot.value(), fixture.sim.registry.get(), PassRunOptions());
    size_t total = 0;
    for (const auto& pass : PassRegistry::Default().passes()) {
      if (pass->name() == "diff") {
        continue;
      }
      total += RunPass(*pass, context);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PassesColdContext)->Unit(benchmark::kMillisecond);

void BM_PassesWarmContext(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  auto snapshot = DeserializeSnapshot(fixture.bytes, *fixture.sim.registry);
  LOCKDOC_CHECK(snapshot.ok());
  AnalysisContext context(&snapshot.value(), fixture.sim.registry.get(), PassRunOptions());
  context.rules();
  context.member_access_index();
  context.lock_postings();
  context.lock_order_graph();
  for (auto _ : state) {
    size_t total = 0;
    for (const auto& pass : PassRegistry::Default().passes()) {
      if (pass->name() == "diff") {
        continue;
      }
      total += RunPass(*pass, context);
    }
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_PassesWarmContext)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
