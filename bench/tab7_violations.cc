// Tab. 7 reproduction: locking-rule violations per data type — violating
// memory-access events, distinct members involved, and distinct contexts
// (source location + call stack).
#include <cstdio>

#include "bench/common.h"
#include "src/core/violation_finder.h"
#include "src/util/stats.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  StandardRun run = RunStandardEvaluation(argc, argv);

  ViolationFinder finder(&run.pipeline.snapshot.db, run.sim.registry.get(),
                         &run.pipeline.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(run.pipeline.rules);

  std::printf("Tab. 7 — summary of locking-rule violations\n\n");
  TextTable table({"Data Type", "Events", "Members", "Contexts"});
  uint64_t total_events = 0;
  uint64_t total_contexts = 0;
  for (const ViolationSummaryRow& row : finder.Summarize(violations)) {
    table.AddRow({row.type_name, std::to_string(row.events), std::to_string(row.members),
                  std::to_string(row.contexts)});
    total_events += row.events;
    total_contexts += row.contexts;
  }
  std::printf("%s", table.ToString().c_str());
  std::printf("\ntotal: %llu events at %llu contexts (paper: 52,452 events at 986 contexts on\n"
              "a 34-minute emulator run; scale with --ops)\n",
              static_cast<unsigned long long>(total_events),
              static_cast<unsigned long long>(total_contexts));
  std::printf("paper shape: buffer_head dominates; cdev, journal_head, transaction_t and the\n"
              "anon_inodefs/debugfs/pipefs/proc/sockfs inodes are violation-free.\n");
  return 0;
}
