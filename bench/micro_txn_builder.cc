// Micro-benchmark for trace post-processing: database-import throughput
// (transaction reconstruction included) as a function of lock-nesting depth
// and trace size.
#include <benchmark/benchmark.h>

#include "src/core/importer.h"
#include "src/sim/kernel.h"

namespace lockdoc {
namespace {

struct SyntheticTrace {
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
};

// A trace of `rounds` critical sections nested `depth` deep, each touching
// one member at every level.
SyntheticTrace BuildNestedTrace(size_t depth, size_t rounds) {
  SyntheticTrace result;
  result.registry = std::make_unique<TypeRegistry>();
  auto layout = std::make_unique<TypeLayout>("obj");
  MemberIndex member = layout->AddMember("value", 8);
  std::vector<MemberIndex> locks;
  for (size_t i = 0; i < depth; ++i) {
    locks.push_back(layout->AddLockMember("lock" + std::to_string(i), LockType::kSpinlock));
  }
  TypeId type = result.registry->Register(std::move(layout));

  SimKernel sim(&result.trace, result.registry.get());
  FunctionScope fn(sim, "synthetic.c", "nest", 1, 100);
  ObjectRef obj = sim.Create(type, kNoSubclass, 1);
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t i = 0; i < depth; ++i) {
      sim.Lock(obj, locks[i], static_cast<uint32_t>(10 + i));
      sim.Write(obj, member, static_cast<uint32_t>(20 + i));
    }
    for (size_t i = depth; i > 0; --i) {
      sim.Unlock(obj, locks[i - 1], static_cast<uint32_t>(30 + i));
    }
  }
  sim.Destroy(obj, 99);
  return result;
}

void BM_ImportByDepth(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  SyntheticTrace synthetic = BuildNestedTrace(depth, 2000);
  TraceImporter importer(synthetic.registry.get(), FilterConfig::Defaults());
  for (auto _ : state) {
    Database db;
    ImportStats stats = importer.Import(synthetic.trace, &db);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(synthetic.trace.size()));
}
BENCHMARK(BM_ImportByDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ImportBySize(benchmark::State& state) {
  size_t rounds = static_cast<size_t>(state.range(0));
  SyntheticTrace synthetic = BuildNestedTrace(3, rounds);
  TraceImporter importer(synthetic.registry.get(), FilterConfig::Defaults());
  for (auto _ : state) {
    Database db;
    ImportStats stats = importer.Import(synthetic.trace, &db);
    benchmark::DoNotOptimize(stats);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(synthetic.trace.size()));
}
BENCHMARK(BM_ImportBySize)->Range(256, 16384);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
