// Fig. 7 reproduction: fraction of "no lock" winning hypotheses as a
// function of the acceptance threshold tac in [0.7, 1.0], per observed data
// type (inode subclasses excluded for clarity, as in the paper) and per
// access direction. Expected shape: the fraction grows with tac and levels
// off as tac -> 1; writes generally retain more lock rules than reads.
#include <cstdio>
#include <map>
#include <vector>

#include "bench/common.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  StandardRun run = RunStandardEvaluation(argc, argv);
  const TypeRegistry& registry = *run.sim.registry;
  TypeId inode_type = *registry.FindType("inode");

  const std::vector<double> thresholds = {0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00};

  std::printf("Fig. 7 — fraction of \"no lock\" winners vs acceptance threshold\n\n");
  for (AccessType access : {AccessType::kRead, AccessType::kWrite}) {
    std::printf("access type: %s\n", access == AccessType::kRead ? "r" : "w");
    std::vector<std::string> header = {"Data Type"};
    for (double tac : thresholds) {
      header.push_back(StrFormat("%.0f%%", tac * 100));
    }
    TextTable table(header);

    // type -> per-threshold (no-lock count, total).
    std::map<TypeId, std::vector<std::pair<uint64_t, uint64_t>>> counts;
    for (size_t t = 0; t < thresholds.size(); ++t) {
      DerivatorOptions options;
      options.accept_threshold = thresholds[t];
      RuleDerivator derivator(options);
      for (const auto& [key, groups] : run.pipeline.snapshot.observations.groups()) {
        if (key.type == inode_type) {
          continue;  // The paper's Fig. 7 excludes the inode subclasses.
        }
        DerivationResult result = derivator.Derive(run.pipeline.snapshot.observations, key, access);
        if (!result.observed()) {
          continue;
        }
        auto& row = counts[key.type];
        row.resize(thresholds.size());
        row[t].second += 1;
        row[t].first += result.winner_is_no_lock() ? 1 : 0;
      }
    }
    for (const auto& [type, row] : counts) {
      std::vector<std::string> cells = {registry.layout(type).name()};
      for (const auto& [no_lock, total] : row) {
        cells.push_back(total == 0
                            ? "-"
                            : StrFormat("%.0f%%", 100.0 * static_cast<double>(no_lock) /
                                                      static_cast<double>(total)));
      }
      table.AddRow(cells);
    }
    std::printf("%s\n", table.ToString().c_str());
  }
  std::printf("paper Fig. 7: fractions rise with tac and level off near 90%%; for several\n");
  std::printf("types the write curves stay below 100%% even at tac = 1.\n");
  return 0;
}
