// Micro-benchmark for the lock-order pass: graph construction from an
// imported database, the Tarjan SCC condensation, the bounded cycle-path
// enumeration, and the full report. The fixture is an mm workload with the
// seeded lock-order inversion enabled, so the graph actually contains a
// nontrivial SCC and the path search does real work — a purely acyclic
// graph would make FindCyclePaths measure only the condensation.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "src/core/lock_order.h"
#include "src/core/pipeline.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

uint64_t BenchOps() {
  uint64_t ops = 100000;
  if (const char* env = std::getenv("LOCKDOC_BENCH_OPS"); env != nullptr) {
    uint64_t parsed = 0;
    if (ParseUint64(env, &parsed) && parsed > 0) {
      ops = parsed;
    }
  }
  return ops;
}

struct Fixture {
  SimulationResult sim;
  AnalysisSnapshot snapshot;

  Fixture() {
    MixOptions mix;
    mix.ops = BenchOps();
    mix.seed = 5;
    // Default FaultPlan keeps the mm lock-order inversion on: the graph gets
    // a real cycle (mmap_lock -> page_table_lock -> vm_committed_lock plus
    // the inverted direction), range-lock witnesses included.
    sim = SimulateMmRun(mix, FaultPlan{});
    PipelineOptions options;
    options.filter = VfsKernel::MakeFilterConfig();
    snapshot = BuildSnapshot(sim.trace, *sim.registry, options);
    // The benchmarks below assume a cyclic graph; fail loudly if the
    // workload mix ever stops producing one.
    LockOrderGraph graph = LockOrderGraph::Build(snapshot.db, *sim.registry);
    LOCKDOC_CHECK(!graph.StronglyConnectedComponents().empty());
  }
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

// Graph construction: one sweep over txn_locks (plus the optional
// txn_lock_ranges join for witnesses), deduplicating class-level edges.
void BM_BuildGraph(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    LockOrderGraph graph =
        LockOrderGraph::Build(fixture.snapshot.db, *fixture.sim.registry);
    benchmark::DoNotOptimize(graph.edges().data());
  }
}
BENCHMARK(BM_BuildGraph)->Unit(benchmark::kMillisecond);

// Tarjan condensation alone, on a prebuilt graph.
void BM_Scc(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  LockOrderGraph graph =
      LockOrderGraph::Build(fixture.snapshot.db, *fixture.sim.registry);
  for (auto _ : state) {
    auto sccs = graph.StronglyConnectedComponents();
    benchmark::DoNotOptimize(sccs.data());
  }
}
BENCHMARK(BM_Scc)->Unit(benchmark::kMicrosecond);

// Bounded cycle-path enumeration (per-SCC, rarest-first) at the default
// caps — the cost the `lock-order` pass adds over plain cycle listing.
void BM_FindCyclePaths(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  LockOrderGraph graph =
      LockOrderGraph::Build(fixture.snapshot.db, *fixture.sim.registry);
  for (auto _ : state) {
    auto paths = graph.FindCyclePaths();
    benchmark::DoNotOptimize(paths.data());
  }
}
BENCHMARK(BM_FindCyclePaths)->Unit(benchmark::kMicrosecond);

// The full pass as the CLI runs it: build + conflicts + SCCs + paths +
// report text with witness/site resolution.
void BM_FullReport(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  for (auto _ : state) {
    LockOrderGraph graph =
        LockOrderGraph::Build(fixture.snapshot.db, *fixture.sim.registry);
    std::string report = graph.Report(fixture.snapshot.db);
    benchmark::DoNotOptimize(report.data());
  }
}
BENCHMARK(BM_FullReport)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
