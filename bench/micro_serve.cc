// Micro-benchmark for the serve request path:
//
//  - warm resident round-trip vs cold reload (what --max-resident buys a
//    long-lived service, and what every LRU eviction costs),
//  - batch throughput over a mixed hot/cold resident set at --workers
//    1/2/4 (what the request scheduler buys; on a single-core host the
//    sweep measures scheduling overhead, not scaling — BENCH_serve.json
//    records num_cpus so the ratio is read in context),
//  - socket round-trip latency (the framing + scheduler hand-off tax of
//    the TCP front-end over the same in-process answer path).
#include <benchmark/benchmark.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/serve/service.h"
#include "src/serve/socket.h"
#include "src/serve/spool.h"
#include "src/util/socket.h"
#include "src/trace/trace_io.h"
#include "src/util/file_io.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

uint64_t BenchOps() {
  uint64_t ops = 100000;
  if (const char* env = std::getenv("LOCKDOC_BENCH_OPS"); env != nullptr) {
    uint64_t parsed = 0;
    if (ParseUint64(env, &parsed) && parsed > 0) {
      ops = parsed;
    }
  }
  return ops;
}

ServeServiceOptions ServiceOptions() {
  ServeServiceOptions options;
  options.pipeline.filter = VfsKernel::MakeFilterConfig();
  options.documented_rules_text = VfsKernel::DocumentedRulesText();
  return options;
}

// One spool with four ingested snapshots ("a".."d"): warm runs keep their
// input resident, cold runs cap the store at one so every alternating
// request pays a full disk reload + context rebuild, and the batch sweep
// cycles all four against --max-resident 2 (half the set hot, half cold).
struct Fixture {
  SimulationResult sim;
  std::string root;
  SpoolLayout layout;

  Fixture() {
    MixOptions mix;
    mix.ops = BenchOps();
    mix.seed = 9;
    sim = SimulateKernelRun(mix, FaultPlan{});

    char pattern[] = "/tmp/lockdoc_micro_serve_XXXXXX";
    LOCKDOC_CHECK(::mkdtemp(pattern) != nullptr);
    root = pattern;
    layout = MakeSpoolLayout(root, "");
    LOCKDOC_CHECK(EnsureSpoolLayout(layout).ok());
    for (const char* name : {"a", "b", "c", "d"}) {
      LOCKDOC_CHECK(
          WriteTraceToFile(sim.trace, layout.incoming_dir + "/" + name + ".trace").ok());
    }
    ServeService service(layout, sim.registry.get(), ServiceOptions());
    LOCKDOC_CHECK(service.Recover().ok());
    LOCKDOC_CHECK(service.ProcessOnce().ok());
  }
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

// Drops a request, drains it, asserts it was answered ok, and clears the
// response so the next iteration starts from the same spool state.
void RoundTrip(const Fixture& fixture, ServeService& service, const std::string& input,
               uint64_t iteration) {
  std::string id = "r" + std::to_string(iteration);
  LOCKDOC_CHECK(WriteFileAtomic(fixture.layout.requests_dir + "/" + id + ".req",
                                "pass=check\ninput=" + input + "\n")
                    .ok());
  auto handled = service.ProcessOnce();
  LOCKDOC_CHECK(handled.ok() && handled.value() == 1);
  auto meta = ReadFileToString(fixture.layout.responses_dir + "/" + id + ".meta");
  LOCKDOC_CHECK(meta.ok() && meta.value().find("status=ok\n") != std::string::npos);
  LOCKDOC_CHECK(RemoveFileIfExists(fixture.layout.responses_dir + "/" + id + ".meta").ok());
  LOCKDOC_CHECK(RemoveFileIfExists(fixture.layout.responses_dir + "/" + id + ".out").ok());
}

// Warm: the snapshot stays resident, so a request is spool I/O plus a pass
// over memoized indexes.
void BM_ServeRequestWarmResident(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  ServeService service(fixture.layout, fixture.sim.registry.get(), ServiceOptions());
  LOCKDOC_CHECK(service.Recover().ok());
  uint64_t iteration = 0;
  RoundTrip(fixture, service, "a", iteration++);  // Prime the resident store.
  for (auto _ : state) {
    RoundTrip(fixture, service, "a", iteration++);
  }
}
BENCHMARK(BM_ServeRequestWarmResident)->Unit(benchmark::kMillisecond);

// Cold: --max-resident 1 with alternating inputs evicts on every request,
// so each answer pays DeserializeSnapshot + a fresh AnalysisContext.
void BM_ServeRequestColdReload(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  ServeServiceOptions options = ServiceOptions();
  options.max_resident = 1;
  ServeService service(fixture.layout, fixture.sim.registry.get(), options);
  LOCKDOC_CHECK(service.Recover().ok());
  uint64_t iteration = 0;
  for (auto _ : state) {
    RoundTrip(fixture, service, iteration % 2 == 0 ? "a" : "b", iteration);
    ++iteration;
  }
}
BENCHMARK(BM_ServeRequestColdReload)->Unit(benchmark::kMillisecond);

// Batch throughput at --workers N: one scan answers 8 requests cycling the
// four snapshots with only two resident, so each batch mixes memoized-index
// hits with evict-and-reload misses — the steady state of a busy spool.
void BM_ServeBatchMixed(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  ServeServiceOptions options = ServiceOptions();
  options.workers = static_cast<size_t>(state.range(0));
  options.max_resident = 2;
  ServeService service(fixture.layout, fixture.sim.registry.get(), options);
  LOCKDOC_CHECK(service.Recover().ok());
  static const char* kInputs[] = {"a", "b", "c", "d"};
  uint64_t iteration = 0;
  for (auto _ : state) {
    for (int i = 0; i < 8; ++i) {
      std::string id = StrFormat("b%llu_%d", static_cast<unsigned long long>(iteration), i);
      LOCKDOC_CHECK(WriteFileAtomic(fixture.layout.requests_dir + "/" + id + ".req",
                                    std::string("pass=check\ninput=") + kInputs[i % 4] + "\n")
                        .ok());
    }
    auto handled = service.ProcessOnce();
    LOCKDOC_CHECK(handled.ok() && handled.value() == 8);
    state.PauseTiming();
    for (int i = 0; i < 8; ++i) {
      std::string id = StrFormat("b%llu_%d", static_cast<unsigned long long>(iteration), i);
      LOCKDOC_CHECK(RemoveFileIfExists(fixture.layout.responses_dir + "/" + id + ".meta").ok());
      LOCKDOC_CHECK(RemoveFileIfExists(fixture.layout.responses_dir + "/" + id + ".out").ok());
    }
    state.ResumeTiming();
    ++iteration;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 8);
}
BENCHMARK(BM_ServeBatchMixed)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Socket round-trip: one request/response exchange over a live TCP
// connection against a warm resident. The delta over the warm spool
// round-trip is the framing + connection-handling tax.
void BM_ServeSocketRoundTrip(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  ServeServiceOptions options = ServiceOptions();
  options.workers = 2;
  ServeService service(fixture.layout, fixture.sim.registry.get(), options);
  LOCKDOC_CHECK(service.Recover().ok());
  ServeSocketOptions socket_options;
  socket_options.port = 0;
  ServeSocketServer server(&service, socket_options);
  LOCKDOC_CHECK(server.Start().ok());
  auto conn = ConnectTcp("127.0.0.1", server.port());
  LOCKDOC_CHECK(conn.ok());
  const int fd = conn.value().get();
  for (auto _ : state) {
    LOCKDOC_CHECK(WriteFrame(fd, "pass=check\ninput=a\n").ok());
    FrameRead meta = ReadFrame(fd, 60000, 60000, 0);
    LOCKDOC_CHECK(meta.status == FrameStatus::kOk &&
                  meta.payload.find("status=ok\n") != std::string::npos);
    FrameRead out = ReadFrame(fd, 60000, 60000, 0);
    LOCKDOC_CHECK(out.status == FrameStatus::kOk && !out.payload.empty());
  }
  server.Stop();
}
BENCHMARK(BM_ServeSocketRoundTrip)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
