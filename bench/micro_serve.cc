// Micro-benchmark for the serve resident store: one full request round-trip
// through the spool (request file in, ProcessOnce, response bytes out)
// against a warm resident AnalysisContext vs a cold one that must reload
// the .lockdb from disk and rebuild the context. The gap is what
// --max-resident buys a long-lived service — and what every LRU eviction
// costs.
#include <benchmark/benchmark.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/serve/service.h"
#include "src/serve/spool.h"
#include "src/trace/trace_io.h"
#include "src/util/file_io.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

uint64_t BenchOps() {
  uint64_t ops = 100000;
  if (const char* env = std::getenv("LOCKDOC_BENCH_OPS"); env != nullptr) {
    uint64_t parsed = 0;
    if (ParseUint64(env, &parsed) && parsed > 0) {
      ops = parsed;
    }
  }
  return ops;
}

ServeServiceOptions ServiceOptions() {
  ServeServiceOptions options;
  options.pipeline.filter = VfsKernel::MakeFilterConfig();
  options.documented_rules_text = VfsKernel::DocumentedRulesText();
  return options;
}

// One spool with two ingested snapshots ("a" and "b"): warm runs keep both
// resident, cold runs cap the store at one so every alternating request
// pays a full disk reload + context rebuild.
struct Fixture {
  SimulationResult sim;
  std::string root;
  SpoolLayout layout;

  Fixture() {
    MixOptions mix;
    mix.ops = BenchOps();
    mix.seed = 9;
    sim = SimulateKernelRun(mix, FaultPlan{});

    char pattern[] = "/tmp/lockdoc_micro_serve_XXXXXX";
    LOCKDOC_CHECK(::mkdtemp(pattern) != nullptr);
    root = pattern;
    layout = MakeSpoolLayout(root, "");
    LOCKDOC_CHECK(EnsureSpoolLayout(layout).ok());
    LOCKDOC_CHECK(WriteTraceToFile(sim.trace, layout.incoming_dir + "/a.trace").ok());
    LOCKDOC_CHECK(WriteTraceToFile(sim.trace, layout.incoming_dir + "/b.trace").ok());
    ServeService service(layout, sim.registry.get(), ServiceOptions());
    LOCKDOC_CHECK(service.Recover().ok());
    LOCKDOC_CHECK(service.ProcessOnce().ok());
  }
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

// Drops a request, drains it, asserts it was answered ok, and clears the
// response so the next iteration starts from the same spool state.
void RoundTrip(const Fixture& fixture, ServeService& service, const std::string& input,
               uint64_t iteration) {
  std::string id = "r" + std::to_string(iteration);
  LOCKDOC_CHECK(WriteFileAtomic(fixture.layout.requests_dir + "/" + id + ".req",
                                "pass=check\ninput=" + input + "\n")
                    .ok());
  auto handled = service.ProcessOnce();
  LOCKDOC_CHECK(handled.ok() && handled.value() == 1);
  auto meta = ReadFileToString(fixture.layout.responses_dir + "/" + id + ".meta");
  LOCKDOC_CHECK(meta.ok() && meta.value().find("status=ok\n") != std::string::npos);
  LOCKDOC_CHECK(RemoveFileIfExists(fixture.layout.responses_dir + "/" + id + ".meta").ok());
  LOCKDOC_CHECK(RemoveFileIfExists(fixture.layout.responses_dir + "/" + id + ".out").ok());
}

// Warm: the snapshot stays resident, so a request is spool I/O plus a pass
// over memoized indexes.
void BM_ServeRequestWarmResident(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  ServeService service(fixture.layout, fixture.sim.registry.get(), ServiceOptions());
  LOCKDOC_CHECK(service.Recover().ok());
  uint64_t iteration = 0;
  RoundTrip(fixture, service, "a", iteration++);  // Prime the resident store.
  for (auto _ : state) {
    RoundTrip(fixture, service, "a", iteration++);
  }
}
BENCHMARK(BM_ServeRequestWarmResident)->Unit(benchmark::kMillisecond);

// Cold: --max-resident 1 with alternating inputs evicts on every request,
// so each answer pays DeserializeSnapshot + a fresh AnalysisContext.
void BM_ServeRequestColdReload(benchmark::State& state) {
  Fixture& fixture = SharedFixture();
  ServeServiceOptions options = ServiceOptions();
  options.max_resident = 1;
  ServeService service(fixture.layout, fixture.sim.registry.get(), options);
  LOCKDOC_CHECK(service.Recover().ok());
  uint64_t iteration = 0;
  for (auto _ : state) {
    RoundTrip(fixture, service, iteration % 2 == 0 ? "a" : "b", iteration);
    ++iteration;
  }
}
BENCHMARK(BM_ServeRequestColdReload)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
