// Ablation micro-benchmarks for the locking-rule derivator: hypothesis
// enumeration cost against combination size and observation count. Validates
// the paper's design decision (Sec. 5.4) to enumerate subsets of *observed*
// lock combinations instead of the powerset of all locks in the system, and
// quantifies the cost of the optional order-permutation enumeration.
#include <benchmark/benchmark.h>

#include "src/core/derivator.h"
#include "src/core/observations.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace lockdoc {
namespace {

// Builds an observation store with `distinct` lock combinations of length
// `depth`, `observations` folded observations total.
ObservationStore BuildStore(size_t depth, size_t distinct, size_t observations,
                            MemberObsKey* key_out) {
  ObservationStore store;
  MemberObsKey key;
  key.type = 0;
  key.subclass = kNoSubclass;
  key.member = 0;
  *key_out = key;

  Rng rng(99);
  std::vector<uint32_t> seq_ids;
  for (size_t d = 0; d < distinct; ++d) {
    LockSeq seq;
    for (size_t i = 0; i < depth; ++i) {
      seq.push_back(LockClass::Global(StrFormat("lock_%zu_%zu", d, i)));
    }
    seq_ids.push_back(store.InternSeq(seq));
  }
  auto& groups = store.MutableGroups(key);
  for (size_t i = 0; i < observations; ++i) {
    ObservationGroup group;
    group.lockseq_id = seq_ids[rng.Below(seq_ids.size())];
    group.txn_id = i;
    group.alloc_id = 1;
    group.n_writes = 1;
    group.seqs.push_back(i);
    groups.push_back(std::move(group));
  }
  return store;
}

// Like BuildStore, but spreads observations over `members` populations so
// DeriveAll has enough independent work items to distribute across threads.
ObservationStore BuildWideStore(size_t members, size_t depth, size_t distinct,
                                size_t observations_per_member) {
  ObservationStore store;
  Rng rng(99);
  std::vector<uint32_t> seq_ids;
  for (size_t d = 0; d < distinct; ++d) {
    LockSeq seq;
    for (size_t i = 0; i < depth; ++i) {
      seq.push_back(LockClass::Global(StrFormat("lock_%zu_%zu", d, i)));
    }
    seq_ids.push_back(store.InternSeq(seq));
  }
  for (size_t m = 0; m < members; ++m) {
    MemberObsKey key;
    key.type = static_cast<TypeId>(m % 7);
    key.subclass = kNoSubclass;
    key.member = static_cast<MemberIndex>(m);
    auto& groups = store.MutableGroups(key);
    for (size_t i = 0; i < observations_per_member; ++i) {
      ObservationGroup group;
      group.lockseq_id = seq_ids[rng.Below(seq_ids.size())];
      group.txn_id = m * observations_per_member + i;
      group.alloc_id = 1;
      if (i % 3 == 0) {
        group.n_reads = 1;
      } else {
        group.n_writes = 1;
      }
      group.seqs.push_back(i);
      groups.push_back(std::move(group));
    }
  }
  return store;
}

// The tentpole scaling benchmark: DeriveAll over a wide store at 1/2/4/8
// threads. Real time (not CPU time) is the interesting axis; the "jobs"
// counter records the sweep point in the benchmark JSON.
void BM_DeriveAllJobs(benchmark::State& state) {
  size_t jobs = static_cast<size_t>(state.range(0));
  ObservationStore store = BuildWideStore(64, 4, 6, 512);
  RuleDerivator derivator;
  ThreadPool pool(jobs);
  for (auto _ : state) {
    std::vector<DerivationResult> results = derivator.DeriveAll(store, &pool);
    benchmark::DoNotOptimize(results);
  }
  state.counters["jobs"] = static_cast<double>(pool.thread_count());
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 64 * 2);
}
BENCHMARK(BM_DeriveAllJobs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_DeriveByDepth(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  MemberObsKey key;
  ObservationStore store = BuildStore(depth, 4, 2048, &key);
  RuleDerivator derivator;
  for (auto _ : state) {
    DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2048);
}
BENCHMARK(BM_DeriveByDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Arg(8);

void BM_DeriveByObservations(benchmark::State& state) {
  size_t observations = static_cast<size_t>(state.range(0));
  MemberObsKey key;
  ObservationStore store = BuildStore(3, 4, observations, &key);
  RuleDerivator derivator;
  for (auto _ : state) {
    DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(observations));
}
BENCHMARK(BM_DeriveByObservations)->Range(64, 65536);

void BM_DeriveWithPermutations(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  MemberObsKey key;
  ObservationStore store = BuildStore(depth, 4, 2048, &key);
  DerivatorOptions options;
  options.enumerate_permutations = true;
  options.max_permutation_size = depth;
  RuleDerivator derivator(options);
  for (auto _ : state) {
    DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_DeriveWithPermutations)->Arg(2)->Arg(3)->Arg(4);

void BM_EnumerateSubsequences(benchmark::State& state) {
  size_t depth = static_cast<size_t>(state.range(0));
  LockSeq seq;
  for (size_t i = 0; i < depth; ++i) {
    seq.push_back(LockClass::Global(StrFormat("lock_%zu", i)));
  }
  for (auto _ : state) {
    auto subsequences = EnumerateSubsequences(seq, 10);
    benchmark::DoNotOptimize(subsequences);
  }
}
BENCHMARK(BM_EnumerateSubsequences)->DenseRange(2, 10, 2);

}  // namespace
}  // namespace lockdoc

BENCHMARK_MAIN();
