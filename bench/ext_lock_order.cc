// Extension bench (beyond the paper's tables): the lock-ordering graph of
// the standard run — dominant orderings, same-class nesting conventions,
// ABBA conflicts, and potential deadlock cycles, including the injected
// inode_lru_lock <-> i_lock inversion. This is the ex-post equivalent of
// the lockdep analysis the paper cites as in-situ related work (Sec. 3.2).
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "src/core/lock_order.h"

using namespace lockdoc;

int main(int argc, char** argv) {
  StandardRun run = RunStandardEvaluation(argc, argv);

  auto t0 = std::chrono::steady_clock::now();
  LockOrderGraph graph =
      LockOrderGraph::Build(run.pipeline.snapshot.db, *run.sim.registry);
  auto t1 = std::chrono::steady_clock::now();
  auto cycles = graph.FindCycles();
  auto t2 = std::chrono::steady_clock::now();

  std::printf("lock-order analysis (extension; lockdep-style, ex post)\n\n");
  std::printf("%s\n", graph.Report(run.pipeline.snapshot.db, 25).c_str());

  std::printf("same-class nesting conventions:\n");
  for (const LockOrderEdge& edge : graph.SelfNesting()) {
    std::printf("  %s nests (n=%llu)\n", edge.from.ToString().c_str(),
                static_cast<unsigned long long>(edge.support));
  }

  std::printf("\npotential deadlock cycles (%zu):\n", cycles.size());
  for (const LockOrderCycle& cycle : cycles) {
    std::printf("  %s\n", cycle.ToString().c_str());
  }

  bool found_lru_inversion = false;
  for (const auto& [rare, common] : graph.ConflictingPairs()) {
    if (rare.from.ToString() == "inode_lru_lock" &&
        rare.to.ToString() == "EO(i_lock in inode)") {
      found_lru_inversion = true;
    }
    if (common.from.ToString() == "inode_lru_lock" &&
        common.to.ToString() == "EO(i_lock in inode)") {
      found_lru_inversion = true;
    }
  }
  std::printf("\ninjected inode_lru_lock <-> i_lock inversion detected: %s\n",
              found_lru_inversion ? "yes" : "NO (unexpected)");
  std::printf("graph build: %.3f s, cycle search: %.3f s\n",
              std::chrono::duration<double>(t1 - t0).count(),
              std::chrono::duration<double>(t2 - t1).count());
  return 0;
}
