// Fig. 1 reproduction: "Increase of lock usage and lines of code (LoC) from
// Linux 3.0 to 4.18". Generates the synthetic source corpus for every
// release and counts lock-initialization idioms the way grep would.
//
// Expected shape (paper Sec. 2.1): mutex usage +~81 %, spinlock usage
// +~45 % with a dip over the last releases, LoC +~73 %, RCU rising steadily.
#include <cstdio>

#include "src/corpus/corpus_model.h"
#include "src/corpus/scanner.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"

using namespace lockdoc;

int main() {
  KernelCorpusModel model;
  LockUsageScanner scanner;

  std::vector<LockUsageCounts> series;
  series.reserve(model.release_count());
  for (size_t i = 0; i < model.release_count(); ++i) {
    series.push_back(scanner.Scan(model.Generate(i)));
  }

  std::printf("Fig. 1 — lock usage and LoC across kernel releases\n");
  std::printf("(synthetic corpus calibrated to the paper's endpoints; LoC model\n");
  std::printf(" scale 1:%llu)\n\n", static_cast<unsigned long long>(kLocScale));

  TextTable table({"Version", "Spinlock", "Mutex", "RCU", "LoC"});
  for (size_t i = 0; i < series.size(); ++i) {
    // The figure ticks every fifth release; print those plus the endpoints.
    if (i % 5 != 0 && i + 1 != series.size()) {
      continue;
    }
    const LockUsageCounts& row = series[i];
    table.AddRow({row.version, std::to_string(row.spinlock), std::to_string(row.mutex),
                  std::to_string(row.rcu), FormatWithCommas(row.loc)});
  }
  std::printf("%s", table.ToString().c_str());

  const LockUsageCounts& first = series.front();
  const LockUsageCounts& last = series.back();
  auto growth = [](uint64_t from, uint64_t to) {
    return 100.0 * (static_cast<double>(to) - static_cast<double>(from)) /
           static_cast<double>(from);
  };
  std::printf("\ngrowth %s -> %s:\n", first.version.c_str(), last.version.c_str());
  std::printf("  spinlock: %+.1f%%   (paper: ~+45%%)\n", growth(first.spinlock, last.spinlock));
  std::printf("  mutex:    %+.1f%%   (paper: ~+81%%)\n", growth(first.mutex, last.mutex));
  std::printf("  LoC:      %+.1f%%   (paper: ~+73%%)\n", growth(first.loc, last.loc));
  std::printf("  rcu:      %+.1f%%\n", growth(first.rcu, last.rcu));

  // The late-series spinlock dip the paper calls out.
  uint64_t peak = 0;
  for (const LockUsageCounts& row : series) {
    peak = std::max(peak, row.spinlock);
  }
  std::printf("  spinlock peak %llu vs final %llu (dip: %s)\n",
              static_cast<unsigned long long>(peak),
              static_cast<unsigned long long>(last.spinlock),
              peak > last.spinlock ? "yes" : "no");
  return 0;
}
