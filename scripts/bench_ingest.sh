#!/usr/bin/env bash
# Ingest benchmark harness: runs micro_ingest (overlapped parallel import at
# jobs 1/2/8, v2 mmap load vs v1 deserialize vs rebuild-from-trace) and
# writes one BENCH_ingest.json with the headline ratios. Numbers depend
# hard on the host's core count — the JSON records num_cpus so a jobs sweep
# from a single-core box is not mistaken for a scaling regression.
#
# Usage: scripts/bench_ingest.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to "build", OUT_JSON to "BENCH_ingest.json".
#
# Environment:
#   LOCKDOC_BENCH_OPS         op count for the simulated-kernel trace
#                             (default 100000; smoke CI uses 2500).
#   LOCKDOC_BENCH_MIN_TIME    --benchmark_min_time for micro_ingest, as a
#                             plain double in seconds (unset = library default).
#   LOCKDOC_BENCH_ALLOW_DEBUG set to 1 to benchmark an unoptimized build
#                             anyway (the JSON is annotated).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_ingest.json}"

# shellcheck source=scripts/bench_common.sh
source "$(dirname "$0")/bench_common.sh"
lockdoc_bench_require_release "$BUILD_DIR" bench_ingest

MICRO="$BUILD_DIR/bench/micro_ingest"
if [[ ! -x "$MICRO" ]]; then
  echo "bench_ingest: missing $MICRO (build the 'micro_ingest' target first)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

MICRO_ARGS=(
  "--benchmark_out=$TMP_DIR/ingest.json"
  "--benchmark_out_format=json"
)
if [[ -n "${LOCKDOC_BENCH_MIN_TIME:-}" ]]; then
  MICRO_ARGS+=("--benchmark_min_time=$LOCKDOC_BENCH_MIN_TIME")
fi
echo "bench_ingest: micro_ingest ${MICRO_ARGS[*]}" >&2
"$MICRO" "${MICRO_ARGS[@]}"

python3 - "$TMP_DIR" "$OUT_JSON" <<'PY'
import json
import os
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]
with open(os.path.join(tmp_dir, "ingest.json")) as f:
    raw = json.load(f)

times = {}
for bench in raw.get("benchmarks", []):
    times[bench["name"]] = bench["real_time"]

def ratio(slow, fast):
    if slow in times and fast in times and times[fast] > 0:
        return round(times[slow] / times[fast], 2)
    return None

build_type = os.environ.get("LOCKDOC_BENCH_BUILD_TYPE", "unknown")
merged = {
    "generated_by": "scripts/bench_ingest.sh",
    "build_type": build_type,
    "ops": os.environ.get("LOCKDOC_BENCH_OPS", "100000 (default)"),
    "context": raw.get("context", {}),
    "benchmarks": raw.get("benchmarks", []),
    # Headline ratios. The load comparisons are single-threaded and
    # host-independent; the import jobs sweep is bounded by num_cpus above
    # (on one core it measures scheduling overhead, not scaling).
    "v2_mmap_vs_v1_deserialize": ratio("BM_LoadV1Deserialize", "BM_LoadV2Mmap"),
    "v2_mmap_nocrc_vs_v1_deserialize": ratio("BM_LoadV1Deserialize", "BM_LoadV2MmapNoCrc"),
    "v2_mmap_vs_rebuild": ratio("BM_RebuildFromTrace", "BM_LoadV2Mmap"),
    "import_jobs8_vs_jobs1": ratio("BM_ImportAndSave/1", "BM_ImportAndSave/8"),
}
if build_type not in ("Release", "RelWithDebInfo", "MinSizeRel"):
    merged["warning"] = "unoptimized build; numbers are not comparable"
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"bench_ingest: wrote {out_path} "
      f"(v2 mmap vs v1 deserialize {merged['v2_mmap_vs_v1_deserialize']}x, "
      f"jobs8 vs jobs1 import {merged['import_jobs8_vs_jobs1']}x)")
PY
