#!/usr/bin/env bash
# Mining benchmark harness: runs the derivator ablation microbenchmarks and
# the Tab. 6 end-to-end rule-mining bench (fixed seed, jobs 1/2/8) and
# merges everything into one BENCH_mining.json.
#
# Usage: scripts/bench_mining.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to "build", OUT_JSON to "BENCH_mining.json".
#
# Environment:
#   LOCKDOC_BENCH_OPS       op count for the tab6 simulated-kernel run
#                           (bench/common.h; smoke CI uses 2500).
#   LOCKDOC_BENCH_MIN_TIME  --benchmark_min_time for micro_derivator, as a
#                           plain double in seconds (unset = library default).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_mining.json}"

# shellcheck source=scripts/bench_common.sh
source "$(dirname "$0")/bench_common.sh"
lockdoc_bench_require_release "$BUILD_DIR" bench_mining

MICRO="$BUILD_DIR/bench/micro_derivator"
TAB6="$BUILD_DIR/bench/tab6_rule_mining"
for bin in "$MICRO" "$TAB6"; do
  if [[ ! -x "$bin" ]]; then
    echo "bench_mining: missing $bin (build the 'micro_derivator' and" \
         "'tab6_rule_mining' targets first)" >&2
    exit 1
  fi
done

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

MICRO_ARGS=(
  "--benchmark_filter=BM_Derive|BM_Enumerate"
  "--benchmark_out=$TMP_DIR/micro.json"
  "--benchmark_out_format=json"
)
if [[ -n "${LOCKDOC_BENCH_MIN_TIME:-}" ]]; then
  MICRO_ARGS+=("--benchmark_min_time=$LOCKDOC_BENCH_MIN_TIME")
fi
echo "bench_mining: micro_derivator ${MICRO_ARGS[*]}" >&2
"$MICRO" "${MICRO_ARGS[@]}"

JOBS_SWEEP=(1 2 8)
for jobs in "${JOBS_SWEEP[@]}"; do
  echo "bench_mining: tab6_rule_mining --seed 1 --jobs $jobs" >&2
  "$TAB6" --seed 1 --jobs "$jobs" --timings-json "$TMP_DIR/tab6_j$jobs.json" \
    > "$TMP_DIR/tab6_j$jobs.txt"
done

python3 - "$TMP_DIR" "$OUT_JSON" <<'PY'
import json
import os
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]
with open(os.path.join(tmp_dir, "micro.json")) as f:
    micro = json.load(f)

tab6 = {}
for jobs in (1, 2, 8):
    with open(os.path.join(tmp_dir, f"tab6_j{jobs}.json")) as f:
        tab6[f"jobs{jobs}"] = json.load(f)

build_type = os.environ.get("LOCKDOC_BENCH_BUILD_TYPE", "unknown")
merged = {
    "generated_by": "scripts/bench_mining.sh",
    "build_type": build_type,
    "seed": 1,
    "ops": os.environ.get("LOCKDOC_BENCH_OPS", "30000 (default)"),
    "micro_derivator": {
        "context": micro.get("context", {}),
        "benchmarks": micro.get("benchmarks", []),
    },
    "tab6_rule_mining": tab6,
}
if build_type not in ("Release", "RelWithDebInfo", "MinSizeRel"):
    merged["warning"] = "unoptimized build; numbers are not comparable"
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"bench_mining: wrote {out_path}")
PY
