#!/usr/bin/env bash
# Serve benchmark harness: runs micro_serve (warm resident vs cold reload,
# batch throughput over a mixed hot/cold set at --workers 1/2/4, socket
# round-trip latency) and writes one BENCH_serve.json with the headline
# ratios. The workers sweep is bounded hard by the host's core count — the
# JSON records num_cpus so a sweep from a single-core box is not mistaken
# for a scheduler regression.
#
# Usage: scripts/bench_serve.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to "build", OUT_JSON to "BENCH_serve.json".
#
# Environment:
#   LOCKDOC_BENCH_OPS         op count for the simulated-kernel trace
#                             (default 100000; smoke CI uses 2500).
#   LOCKDOC_BENCH_MIN_TIME    --benchmark_min_time for micro_serve, as a
#                             plain double in seconds (unset = library default).
#   LOCKDOC_BENCH_ALLOW_DEBUG set to 1 to benchmark an unoptimized build
#                             anyway (the JSON is annotated).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_serve.json}"

# shellcheck source=scripts/bench_common.sh
source "$(dirname "$0")/bench_common.sh"
lockdoc_bench_require_release "$BUILD_DIR" bench_serve

MICRO="$BUILD_DIR/bench/micro_serve"
if [[ ! -x "$MICRO" ]]; then
  echo "bench_serve: missing $MICRO (build the 'micro_serve' target first)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

MICRO_ARGS=(
  "--benchmark_out=$TMP_DIR/serve.json"
  "--benchmark_out_format=json"
)
if [[ -n "${LOCKDOC_BENCH_MIN_TIME:-}" ]]; then
  MICRO_ARGS+=("--benchmark_min_time=$LOCKDOC_BENCH_MIN_TIME")
fi
echo "bench_serve: micro_serve ${MICRO_ARGS[*]}" >&2
"$MICRO" "${MICRO_ARGS[@]}"

python3 - "$TMP_DIR" "$OUT_JSON" <<'PY'
import json
import os
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]
with open(os.path.join(tmp_dir, "serve.json")) as f:
    raw = json.load(f)

times = {}
for bench in raw.get("benchmarks", []):
    times[bench["name"]] = bench["real_time"]

def ratio(slow, fast):
    if slow in times and fast in times and times[fast] > 0:
        return round(times[slow] / times[fast], 2)
    return None

build_type = os.environ.get("LOCKDOC_BENCH_BUILD_TYPE", "unknown")
num_cpus = raw.get("context", {}).get("num_cpus")
merged = {
    "generated_by": "scripts/bench_serve.sh",
    "build_type": build_type,
    "ops": os.environ.get("LOCKDOC_BENCH_OPS", "100000 (default)"),
    "context": raw.get("context", {}),
    "benchmarks": raw.get("benchmarks", []),
    # Headline ratios. warm_vs_cold is single-threaded and host-independent.
    # The workers sweep cannot beat num_cpus: on one core a parallel batch
    # measures pure scheduling overhead (expect ~1.0x, not a regression);
    # the >=2x scheduler win needs >=4 cores to show.
    "warm_vs_cold": ratio("BM_ServeRequestColdReload", "BM_ServeRequestWarmResident"),
    "batch_workers2_vs_workers1": ratio("BM_ServeBatchMixed/1", "BM_ServeBatchMixed/2"),
    "batch_workers4_vs_workers1": ratio("BM_ServeBatchMixed/1", "BM_ServeBatchMixed/4"),
    "socket_rtt_vs_warm_spool": ratio("BM_ServeSocketRoundTrip", "BM_ServeRequestWarmResident"),
    "num_cpus": num_cpus,
}
if build_type not in ("Release", "RelWithDebInfo", "MinSizeRel"):
    merged["warning"] = "unoptimized build; numbers are not comparable"
if isinstance(num_cpus, int) and num_cpus < 4:
    merged["note"] = (
        f"host has {num_cpus} cpu(s): the --workers sweep is core-bound and "
        "cannot exhibit parallel speedup here; ratios near 1.0 are expected"
    )
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"bench_serve: wrote {out_path} "
      f"(warm vs cold {merged['warm_vs_cold']}x, "
      f"workers4 vs workers1 batch {merged['batch_workers4_vs_workers1']}x, "
      f"num_cpus {num_cpus})")
PY
