# Shared helpers for the bench_*.sh harnesses. Sourced, not executed.
#
# The one job of this file: refuse to record benchmark numbers from an
# unoptimized build. Committed BENCH_*.json files have been polluted by
# debug-build runs before; the guard makes that an explicit opt-in
# (LOCKDOC_BENCH_ALLOW_DEBUG=1) and stamps the build type into the output
# JSON either way so a polluted file is at least self-describing.

# Prints the CMAKE_BUILD_TYPE of the build tree at $1 ("unknown" when the
# cache is missing or the variable is unset).
lockdoc_bench_build_type() {
  local cache="$1/CMakeCache.txt"
  local build_type=""
  if [[ -f "$cache" ]]; then
    build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache" | head -n 1)"
  fi
  echo "${build_type:-unknown}"
}

# Exports LOCKDOC_BENCH_BUILD_TYPE and exits unless the build tree at $1 is
# an optimized build (Release / RelWithDebInfo / MinSizeRel) or the caller
# set LOCKDOC_BENCH_ALLOW_DEBUG=1. $2 names the harness for the error text.
lockdoc_bench_require_release() {
  LOCKDOC_BENCH_BUILD_TYPE="$(lockdoc_bench_build_type "$1")"
  export LOCKDOC_BENCH_BUILD_TYPE
  case "$LOCKDOC_BENCH_BUILD_TYPE" in
    Release|RelWithDebInfo|MinSizeRel) ;;
    *)
      if [[ "${LOCKDOC_BENCH_ALLOW_DEBUG:-0}" != "1" ]]; then
        echo "$2: refusing to benchmark a '$LOCKDOC_BENCH_BUILD_TYPE' build tree ($1);" \
             "reconfigure with -DCMAKE_BUILD_TYPE=Release (or RelWithDebInfo)," \
             "or set LOCKDOC_BENCH_ALLOW_DEBUG=1 to record annotated debug numbers" >&2
        exit 1
      fi
      echo "$2: WARNING benchmarking a '$LOCKDOC_BENCH_BUILD_TYPE' build" \
           "(LOCKDOC_BENCH_ALLOW_DEBUG=1); numbers are not comparable" >&2
      ;;
  esac
}
