#!/usr/bin/env bash
# Pass-framework benchmark harness: runs the micro_passes suite (full suite
# through one AnalysisContext vs N separate commands, plus the cold/warm
# context ablation) and writes one BENCH_passes.json including the headline
# full-suite speedup.
#
# Usage: scripts/bench_passes.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to "build", OUT_JSON to "BENCH_passes.json".
#
# Environment:
#   LOCKDOC_BENCH_OPS       op count for the simulated-kernel snapshot
#                           (default 100000; smoke CI uses 2500).
#   LOCKDOC_BENCH_MIN_TIME  --benchmark_min_time for micro_passes, as a
#                           plain double in seconds (unset = library default).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_passes.json}"

# shellcheck source=scripts/bench_common.sh
source "$(dirname "$0")/bench_common.sh"
lockdoc_bench_require_release "$BUILD_DIR" bench_passes

MICRO="$BUILD_DIR/bench/micro_passes"
if [[ ! -x "$MICRO" ]]; then
  echo "bench_passes: missing $MICRO (build the 'micro_passes' target first)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

MICRO_ARGS=(
  "--benchmark_out=$TMP_DIR/passes.json"
  "--benchmark_out_format=json"
)
if [[ -n "${LOCKDOC_BENCH_MIN_TIME:-}" ]]; then
  MICRO_ARGS+=("--benchmark_min_time=$LOCKDOC_BENCH_MIN_TIME")
fi
echo "bench_passes: micro_passes ${MICRO_ARGS[*]}" >&2
"$MICRO" "${MICRO_ARGS[@]}"

python3 - "$TMP_DIR" "$OUT_JSON" <<'PY'
import json
import os
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]
with open(os.path.join(tmp_dir, "passes.json")) as f:
    raw = json.load(f)

times = {}
for bench in raw.get("benchmarks", []):
    times[bench["name"]] = bench["real_time"]

def speedup(slow, fast):
    if slow in times and fast in times and times[fast] > 0:
        return round(times[slow] / times[fast], 2)
    return None

build_type = os.environ.get("LOCKDOC_BENCH_BUILD_TYPE", "unknown")
merged = {
    "generated_by": "scripts/bench_passes.sh",
    "build_type": build_type,
    "ops": os.environ.get("LOCKDOC_BENCH_OPS", "100000 (default)"),
    "context": raw.get("context", {}),
    "benchmarks": raw.get("benchmarks", []),
    # Headline numbers: how much one shared AnalysisContext saves over
    # running every analysis as its own command.
    "full_suite_speedup": speedup("BM_SeparateCommands", "BM_FullSuiteAnalyze"),
    "warm_context_speedup": speedup("BM_PassesColdContext", "BM_PassesWarmContext"),
}
if build_type not in ("Release", "RelWithDebInfo", "MinSizeRel"):
    merged["warning"] = "unoptimized build; numbers are not comparable"
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"bench_passes: wrote {out_path} "
      f"(full-suite speedup {merged['full_suite_speedup']}x)")
PY
