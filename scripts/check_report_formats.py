#!/usr/bin/env python3
"""Validate lockdoc report renderings using only the standard library.

Usage:
    check_report_formats.py json FILE...   # parses + schema-shape check
    check_report_formats.py html FILE...   # tag-balance well-formedness check

Exit 0 when every file passes, 1 with a diagnostic on the first failure.
Used by tests/cli/report_format_test.sh and the CI workflow.
"""

import json
import sys
from html.parser import HTMLParser

SCHEMA = "lockdoc-report-v1"
NODE_TYPES = {"text", "table", "counterexample-group"}

# Elements that never take a closing tag (the renderer emits a few of these).
VOID_ELEMENTS = {"br", "hr", "meta", "link", "img", "input", "col", "base"}


def check_json(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != SCHEMA:
        raise ValueError(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("pass"), str) or not doc["pass"]:
        raise ValueError("missing or empty 'pass'")
    sections = doc.get("sections")
    if not isinstance(sections, list):
        raise ValueError("'sections' is not a list")
    for section in sections:
        if not isinstance(section.get("id"), str):
            raise ValueError("section without string 'id'")
        nodes = section.get("nodes")
        if not isinstance(nodes, list):
            raise ValueError(f"section {section['id']}: 'nodes' is not a list")
        for node in nodes:
            kind = node.get("type")
            if kind not in NODE_TYPES:
                raise ValueError(f"section {section['id']}: bad node type {kind!r}")
            if kind == "table":
                if not isinstance(node.get("columns"), list):
                    raise ValueError("table node without 'columns'")
                width = len(node["columns"])
                for row in node.get("rows", []):
                    if len(row) != width:
                        raise ValueError(
                            f"table {node.get('id')}: row width {len(row)} != {width}")
            elif kind == "counterexample-group":
                for key in ("rank", "member", "access", "rule", "events"):
                    if key not in node:
                        raise ValueError(f"counterexample-group missing {key!r}")
                nearest = node.get("nearest_complying", "absent")
                if nearest == "absent":
                    raise ValueError("counterexample-group missing 'nearest_complying'")
                if nearest is not None and "distance" not in nearest:
                    raise ValueError("nearest_complying without 'distance'")


class TagBalanceChecker(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []

    def handle_starttag(self, tag, attrs):
        if tag not in VOID_ELEMENTS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if not self.stack:
            raise ValueError(f"closing </{tag}> with no open element")
        top = self.stack.pop()
        if top != tag:
            raise ValueError(f"mismatched </{tag}>, open element is <{top}>")


def check_html(path):
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if not text.startswith("<!DOCTYPE html>"):
        raise ValueError("missing <!DOCTYPE html> preamble")
    checker = TagBalanceChecker()
    checker.feed(text)
    checker.close()
    if checker.stack:
        raise ValueError(f"unclosed elements at EOF: {checker.stack}")


def main(argv):
    if len(argv) < 3 or argv[1] not in ("json", "html"):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    check = check_json if argv[1] == "json" else check_html
    for path in argv[2:]:
        try:
            check(path)
        except Exception as error:  # diagnostic + fail; any defect is fatal
            print(f"FAIL {path}: {error}", file=sys.stderr)
            return 1
        print(f"ok {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
