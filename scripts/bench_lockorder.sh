#!/usr/bin/env bash
# Lock-order benchmark harness: runs micro_lockorder (graph build, Tarjan
# SCC condensation, bounded cycle-path enumeration, full report) on an mm
# workload with the seeded lock-order inversion, and writes one
# BENCH_lockorder.json with the headline ratios. The interesting number is
# how little the SCC + bounded-path machinery adds on top of building the
# graph — the condensation is what keeps cycle search off the acyclic bulk.
#
# Usage: scripts/bench_lockorder.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to "build", OUT_JSON to "BENCH_lockorder.json".
#
# Environment:
#   LOCKDOC_BENCH_OPS         op count for the simulated mm trace
#                             (default 100000; smoke CI uses 2500).
#   LOCKDOC_BENCH_MIN_TIME    --benchmark_min_time for micro_lockorder, as a
#                             plain double in seconds (unset = library default).
#   LOCKDOC_BENCH_ALLOW_DEBUG set to 1 to benchmark an unoptimized build
#                             anyway (the JSON is annotated).
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_lockorder.json}"

# shellcheck source=scripts/bench_common.sh
source "$(dirname "$0")/bench_common.sh"
lockdoc_bench_require_release "$BUILD_DIR" bench_lockorder

MICRO="$BUILD_DIR/bench/micro_lockorder"
if [[ ! -x "$MICRO" ]]; then
  echo "bench_lockorder: missing $MICRO (build the 'micro_lockorder' target first)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT

MICRO_ARGS=(
  "--benchmark_out=$TMP_DIR/lockorder.json"
  "--benchmark_out_format=json"
)
if [[ -n "${LOCKDOC_BENCH_MIN_TIME:-}" ]]; then
  MICRO_ARGS+=("--benchmark_min_time=$LOCKDOC_BENCH_MIN_TIME")
fi
echo "bench_lockorder: micro_lockorder ${MICRO_ARGS[*]}" >&2
"$MICRO" "${MICRO_ARGS[@]}"

python3 - "$TMP_DIR" "$OUT_JSON" <<'PY'
import json
import os
import sys

tmp_dir, out_path = sys.argv[1], sys.argv[2]
with open(os.path.join(tmp_dir, "lockorder.json")) as f:
    raw = json.load(f)

times = {}
for bench in raw.get("benchmarks", []):
    # Normalize everything to nanoseconds; micro_lockorder mixes ms and us
    # units across benchmarks.
    scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[bench.get("time_unit", "ns")]
    times[bench["name"]] = bench["real_time"] * scale

def ratio(slow, fast):
    if slow in times and fast in times and times[fast] > 0:
        return round(times[slow] / times[fast], 2)
    return None

build_type = os.environ.get("LOCKDOC_BENCH_BUILD_TYPE", "unknown")
merged = {
    "generated_by": "scripts/bench_lockorder.sh",
    "build_type": build_type,
    "ops": os.environ.get("LOCKDOC_BENCH_OPS", "100000 (default)"),
    "context": raw.get("context", {}),
    "benchmarks": raw.get("benchmarks", []),
    # Headline ratios. Build dominates; the condensation and the bounded
    # path search should be small fractions of it (large values here mean
    # the cycle search escaped the SCC bound).
    "build_vs_scc": ratio("BM_BuildGraph", "BM_Scc"),
    "build_vs_cycle_paths": ratio("BM_BuildGraph", "BM_FindCyclePaths"),
    "report_vs_build": ratio("BM_FullReport", "BM_BuildGraph"),
}
if build_type not in ("Release", "RelWithDebInfo", "MinSizeRel"):
    merged["warning"] = "unoptimized build; numbers are not comparable"
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"bench_lockorder: wrote {out_path} "
      f"(build vs cycle paths {merged['build_vs_cycle_paths']}x, "
      f"full report vs build {merged['report_vs_build']}x)")
PY
