# Empty dependencies file for lockdoc_trace.
# This may be replaced when dependencies are built.
