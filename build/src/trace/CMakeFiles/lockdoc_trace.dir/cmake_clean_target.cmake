file(REMOVE_RECURSE
  "liblockdoc_trace.a"
)
