
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/event.cc" "src/trace/CMakeFiles/lockdoc_trace.dir/event.cc.o" "gcc" "src/trace/CMakeFiles/lockdoc_trace.dir/event.cc.o.d"
  "/root/repo/src/trace/string_pool.cc" "src/trace/CMakeFiles/lockdoc_trace.dir/string_pool.cc.o" "gcc" "src/trace/CMakeFiles/lockdoc_trace.dir/string_pool.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/trace/CMakeFiles/lockdoc_trace.dir/trace.cc.o" "gcc" "src/trace/CMakeFiles/lockdoc_trace.dir/trace.cc.o.d"
  "/root/repo/src/trace/trace_csv.cc" "src/trace/CMakeFiles/lockdoc_trace.dir/trace_csv.cc.o" "gcc" "src/trace/CMakeFiles/lockdoc_trace.dir/trace_csv.cc.o.d"
  "/root/repo/src/trace/trace_io.cc" "src/trace/CMakeFiles/lockdoc_trace.dir/trace_io.cc.o" "gcc" "src/trace/CMakeFiles/lockdoc_trace.dir/trace_io.cc.o.d"
  "/root/repo/src/trace/trace_stats.cc" "src/trace/CMakeFiles/lockdoc_trace.dir/trace_stats.cc.o" "gcc" "src/trace/CMakeFiles/lockdoc_trace.dir/trace_stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/lockdoc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
