file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_trace.dir/event.cc.o"
  "CMakeFiles/lockdoc_trace.dir/event.cc.o.d"
  "CMakeFiles/lockdoc_trace.dir/string_pool.cc.o"
  "CMakeFiles/lockdoc_trace.dir/string_pool.cc.o.d"
  "CMakeFiles/lockdoc_trace.dir/trace.cc.o"
  "CMakeFiles/lockdoc_trace.dir/trace.cc.o.d"
  "CMakeFiles/lockdoc_trace.dir/trace_csv.cc.o"
  "CMakeFiles/lockdoc_trace.dir/trace_csv.cc.o.d"
  "CMakeFiles/lockdoc_trace.dir/trace_io.cc.o"
  "CMakeFiles/lockdoc_trace.dir/trace_io.cc.o.d"
  "CMakeFiles/lockdoc_trace.dir/trace_stats.cc.o"
  "CMakeFiles/lockdoc_trace.dir/trace_stats.cc.o.d"
  "liblockdoc_trace.a"
  "liblockdoc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
