file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_workload.dir/script.cc.o"
  "CMakeFiles/lockdoc_workload.dir/script.cc.o.d"
  "CMakeFiles/lockdoc_workload.dir/workloads.cc.o"
  "CMakeFiles/lockdoc_workload.dir/workloads.cc.o.d"
  "liblockdoc_workload.a"
  "liblockdoc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
