# Empty compiler generated dependencies file for lockdoc_workload.
# This may be replaced when dependencies are built.
