file(REMOVE_RECURSE
  "liblockdoc_workload.a"
)
