file(REMOVE_RECURSE
  "liblockdoc_sim.a"
)
