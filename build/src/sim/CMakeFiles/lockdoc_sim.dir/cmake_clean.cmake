file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_sim.dir/kernel.cc.o"
  "CMakeFiles/lockdoc_sim.dir/kernel.cc.o.d"
  "liblockdoc_sim.a"
  "liblockdoc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
