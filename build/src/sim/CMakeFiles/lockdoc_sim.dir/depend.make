# Empty dependencies file for lockdoc_sim.
# This may be replaced when dependencies are built.
