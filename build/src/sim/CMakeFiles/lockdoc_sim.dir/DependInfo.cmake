
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/lockdoc_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/lockdoc_sim.dir/kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lockdoc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lockdoc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
