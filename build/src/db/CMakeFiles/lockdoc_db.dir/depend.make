# Empty dependencies file for lockdoc_db.
# This may be replaced when dependencies are built.
