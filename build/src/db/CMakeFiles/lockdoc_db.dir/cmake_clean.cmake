file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_db.dir/database.cc.o"
  "CMakeFiles/lockdoc_db.dir/database.cc.o.d"
  "CMakeFiles/lockdoc_db.dir/schema.cc.o"
  "CMakeFiles/lockdoc_db.dir/schema.cc.o.d"
  "CMakeFiles/lockdoc_db.dir/table.cc.o"
  "CMakeFiles/lockdoc_db.dir/table.cc.o.d"
  "liblockdoc_db.a"
  "liblockdoc_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
