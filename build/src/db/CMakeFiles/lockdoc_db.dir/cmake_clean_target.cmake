file(REMOVE_RECURSE
  "liblockdoc_db.a"
)
