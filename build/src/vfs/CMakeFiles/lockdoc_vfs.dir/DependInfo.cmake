
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfs/coverage_table.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/coverage_table.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/coverage_table.cc.o.d"
  "/root/repo/src/vfs/dentry_ops.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/dentry_ops.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/dentry_ops.cc.o.d"
  "/root/repo/src/vfs/device_ops.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/device_ops.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/device_ops.cc.o.d"
  "/root/repo/src/vfs/documented_rules.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/documented_rules.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/documented_rules.cc.o.d"
  "/root/repo/src/vfs/inode_ops.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/inode_ops.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/inode_ops.cc.o.d"
  "/root/repo/src/vfs/journal_ops.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/journal_ops.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/journal_ops.cc.o.d"
  "/root/repo/src/vfs/misc_ops.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/misc_ops.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/misc_ops.cc.o.d"
  "/root/repo/src/vfs/types.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/types.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/types.cc.o.d"
  "/root/repo/src/vfs/vfs_kernel.cc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/vfs_kernel.cc.o" "gcc" "src/vfs/CMakeFiles/lockdoc_vfs.dir/vfs_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lockdoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/lockdoc_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lockdoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lockdoc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/lockdoc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/lockdoc_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lockdoc_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
