# Empty compiler generated dependencies file for lockdoc_vfs.
# This may be replaced when dependencies are built.
