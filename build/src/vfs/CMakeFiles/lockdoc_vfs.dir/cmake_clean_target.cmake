file(REMOVE_RECURSE
  "liblockdoc_vfs.a"
)
