file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_vfs.dir/coverage_table.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/coverage_table.cc.o.d"
  "CMakeFiles/lockdoc_vfs.dir/dentry_ops.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/dentry_ops.cc.o.d"
  "CMakeFiles/lockdoc_vfs.dir/device_ops.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/device_ops.cc.o.d"
  "CMakeFiles/lockdoc_vfs.dir/documented_rules.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/documented_rules.cc.o.d"
  "CMakeFiles/lockdoc_vfs.dir/inode_ops.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/inode_ops.cc.o.d"
  "CMakeFiles/lockdoc_vfs.dir/journal_ops.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/journal_ops.cc.o.d"
  "CMakeFiles/lockdoc_vfs.dir/misc_ops.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/misc_ops.cc.o.d"
  "CMakeFiles/lockdoc_vfs.dir/types.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/types.cc.o.d"
  "CMakeFiles/lockdoc_vfs.dir/vfs_kernel.cc.o"
  "CMakeFiles/lockdoc_vfs.dir/vfs_kernel.cc.o.d"
  "liblockdoc_vfs.a"
  "liblockdoc_vfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_vfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
