file(REMOVE_RECURSE
  "liblockdoc_coverage.a"
)
