# Empty compiler generated dependencies file for lockdoc_coverage.
# This may be replaced when dependencies are built.
