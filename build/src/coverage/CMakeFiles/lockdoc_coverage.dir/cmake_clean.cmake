file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_coverage.dir/coverage.cc.o"
  "CMakeFiles/lockdoc_coverage.dir/coverage.cc.o.d"
  "liblockdoc_coverage.a"
  "liblockdoc_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
