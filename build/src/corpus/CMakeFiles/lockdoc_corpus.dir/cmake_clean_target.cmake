file(REMOVE_RECURSE
  "liblockdoc_corpus.a"
)
