# Empty compiler generated dependencies file for lockdoc_corpus.
# This may be replaced when dependencies are built.
