file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_corpus.dir/corpus_model.cc.o"
  "CMakeFiles/lockdoc_corpus.dir/corpus_model.cc.o.d"
  "CMakeFiles/lockdoc_corpus.dir/scanner.cc.o"
  "CMakeFiles/lockdoc_corpus.dir/scanner.cc.o.d"
  "liblockdoc_corpus.a"
  "liblockdoc_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
