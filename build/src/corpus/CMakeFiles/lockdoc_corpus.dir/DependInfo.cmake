
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus_model.cc" "src/corpus/CMakeFiles/lockdoc_corpus.dir/corpus_model.cc.o" "gcc" "src/corpus/CMakeFiles/lockdoc_corpus.dir/corpus_model.cc.o.d"
  "/root/repo/src/corpus/scanner.cc" "src/corpus/CMakeFiles/lockdoc_corpus.dir/scanner.cc.o" "gcc" "src/corpus/CMakeFiles/lockdoc_corpus.dir/scanner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
