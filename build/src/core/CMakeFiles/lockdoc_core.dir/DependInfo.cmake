
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/clock_example.cc" "src/core/CMakeFiles/lockdoc_core.dir/clock_example.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/clock_example.cc.o.d"
  "/root/repo/src/core/derivator.cc" "src/core/CMakeFiles/lockdoc_core.dir/derivator.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/derivator.cc.o.d"
  "/root/repo/src/core/doc_generator.cc" "src/core/CMakeFiles/lockdoc_core.dir/doc_generator.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/doc_generator.cc.o.d"
  "/root/repo/src/core/filter_config.cc" "src/core/CMakeFiles/lockdoc_core.dir/filter_config.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/filter_config.cc.o.d"
  "/root/repo/src/core/importer.cc" "src/core/CMakeFiles/lockdoc_core.dir/importer.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/importer.cc.o.d"
  "/root/repo/src/core/lock_order.cc" "src/core/CMakeFiles/lockdoc_core.dir/lock_order.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/lock_order.cc.o.d"
  "/root/repo/src/core/mode_analysis.cc" "src/core/CMakeFiles/lockdoc_core.dir/mode_analysis.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/mode_analysis.cc.o.d"
  "/root/repo/src/core/observations.cc" "src/core/CMakeFiles/lockdoc_core.dir/observations.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/observations.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/lockdoc_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/lockdoc_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/report.cc.o.d"
  "/root/repo/src/core/rule.cc" "src/core/CMakeFiles/lockdoc_core.dir/rule.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/rule.cc.o.d"
  "/root/repo/src/core/rule_checker.cc" "src/core/CMakeFiles/lockdoc_core.dir/rule_checker.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/rule_checker.cc.o.d"
  "/root/repo/src/core/rule_diff.cc" "src/core/CMakeFiles/lockdoc_core.dir/rule_diff.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/rule_diff.cc.o.d"
  "/root/repo/src/core/violation_finder.cc" "src/core/CMakeFiles/lockdoc_core.dir/violation_finder.cc.o" "gcc" "src/core/CMakeFiles/lockdoc_core.dir/violation_finder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/db/CMakeFiles/lockdoc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/lockdoc_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lockdoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lockdoc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lockdoc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
