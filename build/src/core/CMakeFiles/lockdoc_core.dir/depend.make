# Empty dependencies file for lockdoc_core.
# This may be replaced when dependencies are built.
