file(REMOVE_RECURSE
  "liblockdoc_core.a"
)
