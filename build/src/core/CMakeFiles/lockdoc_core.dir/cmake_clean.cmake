file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_core.dir/clock_example.cc.o"
  "CMakeFiles/lockdoc_core.dir/clock_example.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/derivator.cc.o"
  "CMakeFiles/lockdoc_core.dir/derivator.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/doc_generator.cc.o"
  "CMakeFiles/lockdoc_core.dir/doc_generator.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/filter_config.cc.o"
  "CMakeFiles/lockdoc_core.dir/filter_config.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/importer.cc.o"
  "CMakeFiles/lockdoc_core.dir/importer.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/lock_order.cc.o"
  "CMakeFiles/lockdoc_core.dir/lock_order.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/mode_analysis.cc.o"
  "CMakeFiles/lockdoc_core.dir/mode_analysis.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/observations.cc.o"
  "CMakeFiles/lockdoc_core.dir/observations.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/pipeline.cc.o"
  "CMakeFiles/lockdoc_core.dir/pipeline.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/report.cc.o"
  "CMakeFiles/lockdoc_core.dir/report.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/rule.cc.o"
  "CMakeFiles/lockdoc_core.dir/rule.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/rule_checker.cc.o"
  "CMakeFiles/lockdoc_core.dir/rule_checker.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/rule_diff.cc.o"
  "CMakeFiles/lockdoc_core.dir/rule_diff.cc.o.d"
  "CMakeFiles/lockdoc_core.dir/violation_finder.cc.o"
  "CMakeFiles/lockdoc_core.dir/violation_finder.cc.o.d"
  "liblockdoc_core.a"
  "liblockdoc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
