# Empty dependencies file for lockdoc_monitor.
# This may be replaced when dependencies are built.
