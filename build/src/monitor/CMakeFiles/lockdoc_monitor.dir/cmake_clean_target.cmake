file(REMOVE_RECURSE
  "liblockdoc_monitor.a"
)
