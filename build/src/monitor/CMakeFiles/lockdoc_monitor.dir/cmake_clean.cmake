file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_monitor.dir/allocation_tracker.cc.o"
  "CMakeFiles/lockdoc_monitor.dir/allocation_tracker.cc.o.d"
  "CMakeFiles/lockdoc_monitor.dir/lock_resolver.cc.o"
  "CMakeFiles/lockdoc_monitor.dir/lock_resolver.cc.o.d"
  "liblockdoc_monitor.a"
  "liblockdoc_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
