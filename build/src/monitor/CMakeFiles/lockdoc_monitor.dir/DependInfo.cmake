
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/allocation_tracker.cc" "src/monitor/CMakeFiles/lockdoc_monitor.dir/allocation_tracker.cc.o" "gcc" "src/monitor/CMakeFiles/lockdoc_monitor.dir/allocation_tracker.cc.o.d"
  "/root/repo/src/monitor/lock_resolver.cc" "src/monitor/CMakeFiles/lockdoc_monitor.dir/lock_resolver.cc.o" "gcc" "src/monitor/CMakeFiles/lockdoc_monitor.dir/lock_resolver.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/lockdoc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lockdoc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
