file(REMOVE_RECURSE
  "liblockdoc_util.a"
)
