file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_util.dir/csv.cc.o"
  "CMakeFiles/lockdoc_util.dir/csv.cc.o.d"
  "CMakeFiles/lockdoc_util.dir/flags.cc.o"
  "CMakeFiles/lockdoc_util.dir/flags.cc.o.d"
  "CMakeFiles/lockdoc_util.dir/logging.cc.o"
  "CMakeFiles/lockdoc_util.dir/logging.cc.o.d"
  "CMakeFiles/lockdoc_util.dir/stats.cc.o"
  "CMakeFiles/lockdoc_util.dir/stats.cc.o.d"
  "CMakeFiles/lockdoc_util.dir/status.cc.o"
  "CMakeFiles/lockdoc_util.dir/status.cc.o.d"
  "CMakeFiles/lockdoc_util.dir/string_util.cc.o"
  "CMakeFiles/lockdoc_util.dir/string_util.cc.o.d"
  "liblockdoc_util.a"
  "liblockdoc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
