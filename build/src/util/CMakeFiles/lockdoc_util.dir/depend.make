# Empty dependencies file for lockdoc_util.
# This may be replaced when dependencies are built.
