file(REMOVE_RECURSE
  "liblockdoc_model.a"
)
