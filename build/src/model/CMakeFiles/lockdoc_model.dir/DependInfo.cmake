
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/lock_class.cc" "src/model/CMakeFiles/lockdoc_model.dir/lock_class.cc.o" "gcc" "src/model/CMakeFiles/lockdoc_model.dir/lock_class.cc.o.d"
  "/root/repo/src/model/lock_type.cc" "src/model/CMakeFiles/lockdoc_model.dir/lock_type.cc.o" "gcc" "src/model/CMakeFiles/lockdoc_model.dir/lock_type.cc.o.d"
  "/root/repo/src/model/type_layout.cc" "src/model/CMakeFiles/lockdoc_model.dir/type_layout.cc.o" "gcc" "src/model/CMakeFiles/lockdoc_model.dir/type_layout.cc.o.d"
  "/root/repo/src/model/type_registry.cc" "src/model/CMakeFiles/lockdoc_model.dir/type_registry.cc.o" "gcc" "src/model/CMakeFiles/lockdoc_model.dir/type_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
