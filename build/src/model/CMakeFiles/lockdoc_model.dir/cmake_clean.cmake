file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_model.dir/lock_class.cc.o"
  "CMakeFiles/lockdoc_model.dir/lock_class.cc.o.d"
  "CMakeFiles/lockdoc_model.dir/lock_type.cc.o"
  "CMakeFiles/lockdoc_model.dir/lock_type.cc.o.d"
  "CMakeFiles/lockdoc_model.dir/type_layout.cc.o"
  "CMakeFiles/lockdoc_model.dir/type_layout.cc.o.d"
  "CMakeFiles/lockdoc_model.dir/type_registry.cc.o"
  "CMakeFiles/lockdoc_model.dir/type_registry.cc.o.d"
  "liblockdoc_model.a"
  "liblockdoc_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
