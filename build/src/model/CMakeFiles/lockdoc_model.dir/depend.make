# Empty dependencies file for lockdoc_model.
# This may be replaced when dependencies are built.
