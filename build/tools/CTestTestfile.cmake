# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_end_to_end "sh" "-c" "    /root/repo/build/tools/lockdoc simulate --out /root/repo/build/cli_test.trace --ops 1500 --seed 3 &&     /root/repo/build/tools/lockdoc stats /root/repo/build/cli_test.trace &&     /root/repo/build/tools/lockdoc derive /root/repo/build/cli_test.trace --type cdev &&     /root/repo/build/tools/lockdoc check /root/repo/build/cli_test.trace > /dev/null &&     /root/repo/build/tools/lockdoc violations /root/repo/build/cli_test.trace --limit 2 &&     /root/repo/build/tools/lockdoc lock-order /root/repo/build/cli_test.trace > /dev/null &&     /root/repo/build/tools/lockdoc modes /root/repo/build/cli_test.trace     /root/repo/build/tools/lockdoc modes /root/repo/build/cli_test.trace &&     /root/repo/build/tools/lockdoc modes /root/repo/build/cli_test.trace &&      /root/repo/build/tools/lockdoc report /root/repo/build/cli_test.trace > /dev/null &&     /root/repo/build/tools/lockdoc export-csv /root/repo/build/cli_test.trace --dir /root/repo/build/cli_test_csv")
set_tests_properties(cli_end_to_end PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_diff "sh" "-c" "    /root/repo/build/tools/lockdoc simulate --out /root/repo/build/cli_clean.trace --ops 1500 --seed 3 --clean &&     /root/repo/build/tools/lockdoc diff /root/repo/build/cli_clean.trace /root/repo/build/cli_test.trace")
set_tests_properties(cli_diff PROPERTIES  DEPENDS "cli_end_to_end" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/lockdoc")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_trace "/root/repo/build/tools/lockdoc" "stats" "/nonexistent.trace")
set_tests_properties(cli_missing_trace PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;25;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_script "sh" "-c" "    printf 'create ext4\\nwrite ext4 0\\nmkdir ext4\\nlink ext4 0\\nunlink ext4 0\\nread ext4 2\\ncommit\\n' > /root/repo/build/cli_script.lds &&     /root/repo/build/tools/lockdoc simulate --out /root/repo/build/cli_script.trace --script /root/repo/build/cli_script.lds &&     /root/repo/build/tools/lockdoc violations /root/repo/build/cli_script.trace --limit 2 > /dev/null")
set_tests_properties(cli_script PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;27;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_script_error "sh" "-c" "    printf 'write ext4 0\\n' > /root/repo/build/cli_bad.lds &&     /root/repo/build/tools/lockdoc simulate --out /root/repo/build/cli_bad.trace --script /root/repo/build/cli_bad.lds")
set_tests_properties(cli_script_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;32;add_test;/root/repo/tools/CMakeLists.txt;0;")
