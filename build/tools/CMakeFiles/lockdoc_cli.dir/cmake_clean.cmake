file(REMOVE_RECURSE
  "CMakeFiles/lockdoc_cli.dir/lockdoc.cc.o"
  "CMakeFiles/lockdoc_cli.dir/lockdoc.cc.o.d"
  "lockdoc"
  "lockdoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdoc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
