# Empty compiler generated dependencies file for lockdoc_cli.
# This may be replaced when dependencies are built.
