file(REMOVE_RECURSE
  "../bench/tab6_rule_mining"
  "../bench/tab6_rule_mining.pdb"
  "CMakeFiles/tab6_rule_mining.dir/tab6_rule_mining.cc.o"
  "CMakeFiles/tab6_rule_mining.dir/tab6_rule_mining.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_rule_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
