# Empty dependencies file for tab6_rule_mining.
# This may be replaced when dependencies are built.
