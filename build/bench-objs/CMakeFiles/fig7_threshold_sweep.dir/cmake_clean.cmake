file(REMOVE_RECURSE
  "../bench/fig7_threshold_sweep"
  "../bench/fig7_threshold_sweep.pdb"
  "CMakeFiles/fig7_threshold_sweep.dir/fig7_threshold_sweep.cc.o"
  "CMakeFiles/fig7_threshold_sweep.dir/fig7_threshold_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
