# Empty dependencies file for fig7_threshold_sweep.
# This may be replaced when dependencies are built.
