# Empty compiler generated dependencies file for fig8_doc_generation.
# This may be replaced when dependencies are built.
