file(REMOVE_RECURSE
  "../bench/fig8_doc_generation"
  "../bench/fig8_doc_generation.pdb"
  "CMakeFiles/fig8_doc_generation.dir/fig8_doc_generation.cc.o"
  "CMakeFiles/fig8_doc_generation.dir/fig8_doc_generation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_doc_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
