file(REMOVE_RECURSE
  "../bench/tab4_rule_checking"
  "../bench/tab4_rule_checking.pdb"
  "CMakeFiles/tab4_rule_checking.dir/tab4_rule_checking.cc.o"
  "CMakeFiles/tab4_rule_checking.dir/tab4_rule_checking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_rule_checking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
