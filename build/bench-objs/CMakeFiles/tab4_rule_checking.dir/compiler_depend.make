# Empty compiler generated dependencies file for tab4_rule_checking.
# This may be replaced when dependencies are built.
