file(REMOVE_RECURSE
  "../bench/micro_txn_builder"
  "../bench/micro_txn_builder.pdb"
  "CMakeFiles/micro_txn_builder.dir/micro_txn_builder.cc.o"
  "CMakeFiles/micro_txn_builder.dir/micro_txn_builder.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_txn_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
