# Empty dependencies file for micro_txn_builder.
# This may be replaced when dependencies are built.
