file(REMOVE_RECURSE
  "../bench/tab8_violation_examples"
  "../bench/tab8_violation_examples.pdb"
  "CMakeFiles/tab8_violation_examples.dir/tab8_violation_examples.cc.o"
  "CMakeFiles/tab8_violation_examples.dir/tab8_violation_examples.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab8_violation_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
