# Empty compiler generated dependencies file for tab8_violation_examples.
# This may be replaced when dependencies are built.
