file(REMOVE_RECURSE
  "../bench/micro_derivator"
  "../bench/micro_derivator.pdb"
  "CMakeFiles/micro_derivator.dir/micro_derivator.cc.o"
  "CMakeFiles/micro_derivator.dir/micro_derivator.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_derivator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
