# Empty compiler generated dependencies file for micro_derivator.
# This may be replaced when dependencies are built.
