# Empty compiler generated dependencies file for tab7_violations.
# This may be replaced when dependencies are built.
