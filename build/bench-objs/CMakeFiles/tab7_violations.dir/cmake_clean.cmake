file(REMOVE_RECURSE
  "../bench/tab7_violations"
  "../bench/tab7_violations.pdb"
  "CMakeFiles/tab7_violations.dir/tab7_violations.cc.o"
  "CMakeFiles/tab7_violations.dir/tab7_violations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab7_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
