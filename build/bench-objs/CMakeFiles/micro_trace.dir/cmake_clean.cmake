file(REMOVE_RECURSE
  "../bench/micro_trace"
  "../bench/micro_trace.pdb"
  "CMakeFiles/micro_trace.dir/micro_trace.cc.o"
  "CMakeFiles/micro_trace.dir/micro_trace.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
