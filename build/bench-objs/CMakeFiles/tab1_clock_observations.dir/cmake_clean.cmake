file(REMOVE_RECURSE
  "../bench/tab1_clock_observations"
  "../bench/tab1_clock_observations.pdb"
  "CMakeFiles/tab1_clock_observations.dir/tab1_clock_observations.cc.o"
  "CMakeFiles/tab1_clock_observations.dir/tab1_clock_observations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab1_clock_observations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
