# Empty dependencies file for tab1_clock_observations.
# This may be replaced when dependencies are built.
