file(REMOVE_RECURSE
  "../bench/ext_lock_order"
  "../bench/ext_lock_order.pdb"
  "CMakeFiles/ext_lock_order.dir/ext_lock_order.cc.o"
  "CMakeFiles/ext_lock_order.dir/ext_lock_order.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_lock_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
