# Empty compiler generated dependencies file for ext_lock_order.
# This may be replaced when dependencies are built.
