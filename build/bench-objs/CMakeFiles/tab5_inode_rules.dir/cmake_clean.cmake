file(REMOVE_RECURSE
  "../bench/tab5_inode_rules"
  "../bench/tab5_inode_rules.pdb"
  "CMakeFiles/tab5_inode_rules.dir/tab5_inode_rules.cc.o"
  "CMakeFiles/tab5_inode_rules.dir/tab5_inode_rules.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_inode_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
