# Empty compiler generated dependencies file for tab5_inode_rules.
# This may be replaced when dependencies are built.
