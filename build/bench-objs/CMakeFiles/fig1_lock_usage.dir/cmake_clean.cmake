file(REMOVE_RECURSE
  "../bench/fig1_lock_usage"
  "../bench/fig1_lock_usage.pdb"
  "CMakeFiles/fig1_lock_usage.dir/fig1_lock_usage.cc.o"
  "CMakeFiles/fig1_lock_usage.dir/fig1_lock_usage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_lock_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
