# Empty compiler generated dependencies file for fig1_lock_usage.
# This may be replaced when dependencies are built.
