# Empty dependencies file for sec72_pipeline_stats.
# This may be replaced when dependencies are built.
