file(REMOVE_RECURSE
  "../bench/sec72_pipeline_stats"
  "../bench/sec72_pipeline_stats.pdb"
  "CMakeFiles/sec72_pipeline_stats.dir/sec72_pipeline_stats.cc.o"
  "CMakeFiles/sec72_pipeline_stats.dir/sec72_pipeline_stats.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec72_pipeline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
