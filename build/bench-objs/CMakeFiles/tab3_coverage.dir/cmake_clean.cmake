file(REMOVE_RECURSE
  "../bench/tab3_coverage"
  "../bench/tab3_coverage.pdb"
  "CMakeFiles/tab3_coverage.dir/tab3_coverage.cc.o"
  "CMakeFiles/tab3_coverage.dir/tab3_coverage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
