# Empty compiler generated dependencies file for tab3_coverage.
# This may be replaced when dependencies are built.
