# Empty compiler generated dependencies file for tab2_clock_hypotheses.
# This may be replaced when dependencies are built.
