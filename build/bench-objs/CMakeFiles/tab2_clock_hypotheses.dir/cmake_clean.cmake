file(REMOVE_RECURSE
  "../bench/tab2_clock_hypotheses"
  "../bench/tab2_clock_hypotheses.pdb"
  "CMakeFiles/tab2_clock_hypotheses.dir/tab2_clock_hypotheses.cc.o"
  "CMakeFiles/tab2_clock_hypotheses.dir/tab2_clock_hypotheses.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_clock_hypotheses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
