# CMake generated Testfile for 
# Source directory: /root/repo/bench
# Build directory: /root/repo/build/bench-objs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(bench_smoke_fig1_lock_usage "/root/repo/build/bench/fig1_lock_usage")
set_tests_properties(bench_smoke_fig1_lock_usage PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab1_clock_observations "/root/repo/build/bench/tab1_clock_observations")
set_tests_properties(bench_smoke_tab1_clock_observations PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab2_clock_hypotheses "/root/repo/build/bench/tab2_clock_hypotheses")
set_tests_properties(bench_smoke_tab2_clock_hypotheses PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab3_coverage "/root/repo/build/bench/tab3_coverage")
set_tests_properties(bench_smoke_tab3_coverage PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab4_rule_checking "/root/repo/build/bench/tab4_rule_checking")
set_tests_properties(bench_smoke_tab4_rule_checking PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab5_inode_rules "/root/repo/build/bench/tab5_inode_rules")
set_tests_properties(bench_smoke_tab5_inode_rules PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab6_rule_mining "/root/repo/build/bench/tab6_rule_mining")
set_tests_properties(bench_smoke_tab6_rule_mining PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig7_threshold_sweep "/root/repo/build/bench/fig7_threshold_sweep")
set_tests_properties(bench_smoke_fig7_threshold_sweep PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_fig8_doc_generation "/root/repo/build/bench/fig8_doc_generation")
set_tests_properties(bench_smoke_fig8_doc_generation PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab7_violations "/root/repo/build/bench/tab7_violations")
set_tests_properties(bench_smoke_tab7_violations PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_tab8_violation_examples "/root/repo/build/bench/tab8_violation_examples")
set_tests_properties(bench_smoke_tab8_violation_examples PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_sec72_pipeline_stats "/root/repo/build/bench/sec72_pipeline_stats")
set_tests_properties(bench_smoke_sec72_pipeline_stats PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
add_test(bench_smoke_ext_lock_order "/root/repo/build/bench/ext_lock_order")
set_tests_properties(bench_smoke_ext_lock_order PROPERTIES  ENVIRONMENT "LOCKDOC_BENCH_OPS=2500" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/bench/CMakeLists.txt;44;add_test;/root/repo/bench/CMakeLists.txt;0;")
