file(REMOVE_RECURSE
  "CMakeFiles/corpus_tests.dir/corpus/corpus_test.cc.o"
  "CMakeFiles/corpus_tests.dir/corpus/corpus_test.cc.o.d"
  "corpus_tests"
  "corpus_tests.pdb"
  "corpus_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/corpus_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
