
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/integration_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/integration_tests.dir/integration/end_to_end_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lockdoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lockdoc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/lockdoc_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/lockdoc_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/lockdoc_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/lockdoc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/lockdoc_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lockdoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lockdoc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lockdoc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
