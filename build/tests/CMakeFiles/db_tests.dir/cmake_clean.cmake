file(REMOVE_RECURSE
  "CMakeFiles/db_tests.dir/db/database_test.cc.o"
  "CMakeFiles/db_tests.dir/db/database_test.cc.o.d"
  "CMakeFiles/db_tests.dir/db/schema_test.cc.o"
  "CMakeFiles/db_tests.dir/db/schema_test.cc.o.d"
  "CMakeFiles/db_tests.dir/db/table_test.cc.o"
  "CMakeFiles/db_tests.dir/db/table_test.cc.o.d"
  "db_tests"
  "db_tests.pdb"
  "db_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
