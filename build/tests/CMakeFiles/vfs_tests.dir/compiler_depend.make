# Empty compiler generated dependencies file for vfs_tests.
# This may be replaced when dependencies are built.
