# Empty dependencies file for vfs_tests.
# This may be replaced when dependencies are built.
