file(REMOVE_RECURSE
  "CMakeFiles/vfs_tests.dir/vfs/documented_rules_test.cc.o"
  "CMakeFiles/vfs_tests.dir/vfs/documented_rules_test.cc.o.d"
  "CMakeFiles/vfs_tests.dir/vfs/ground_truth_test.cc.o"
  "CMakeFiles/vfs_tests.dir/vfs/ground_truth_test.cc.o.d"
  "CMakeFiles/vfs_tests.dir/vfs/op_shape_test.cc.o"
  "CMakeFiles/vfs_tests.dir/vfs/op_shape_test.cc.o.d"
  "CMakeFiles/vfs_tests.dir/vfs/stability_test.cc.o"
  "CMakeFiles/vfs_tests.dir/vfs/stability_test.cc.o.d"
  "CMakeFiles/vfs_tests.dir/vfs/types_test.cc.o"
  "CMakeFiles/vfs_tests.dir/vfs/types_test.cc.o.d"
  "CMakeFiles/vfs_tests.dir/vfs/vfs_kernel_test.cc.o"
  "CMakeFiles/vfs_tests.dir/vfs/vfs_kernel_test.cc.o.d"
  "vfs_tests"
  "vfs_tests.pdb"
  "vfs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
