# Empty compiler generated dependencies file for monitor_tests.
# This may be replaced when dependencies are built.
