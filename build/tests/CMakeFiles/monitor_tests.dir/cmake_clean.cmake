file(REMOVE_RECURSE
  "CMakeFiles/monitor_tests.dir/monitor/allocation_tracker_test.cc.o"
  "CMakeFiles/monitor_tests.dir/monitor/allocation_tracker_test.cc.o.d"
  "CMakeFiles/monitor_tests.dir/monitor/lock_resolver_test.cc.o"
  "CMakeFiles/monitor_tests.dir/monitor/lock_resolver_test.cc.o.d"
  "monitor_tests"
  "monitor_tests.pdb"
  "monitor_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
