
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/clock_example_test.cc" "tests/CMakeFiles/core_tests.dir/core/clock_example_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/clock_example_test.cc.o.d"
  "/root/repo/tests/core/derivator_property_test.cc" "tests/CMakeFiles/core_tests.dir/core/derivator_property_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/derivator_property_test.cc.o.d"
  "/root/repo/tests/core/derivator_test.cc" "tests/CMakeFiles/core_tests.dir/core/derivator_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/derivator_test.cc.o.d"
  "/root/repo/tests/core/doc_generator_test.cc" "tests/CMakeFiles/core_tests.dir/core/doc_generator_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/doc_generator_test.cc.o.d"
  "/root/repo/tests/core/docgen_roundtrip_test.cc" "tests/CMakeFiles/core_tests.dir/core/docgen_roundtrip_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/docgen_roundtrip_test.cc.o.d"
  "/root/repo/tests/core/importer_fuzz_test.cc" "tests/CMakeFiles/core_tests.dir/core/importer_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/importer_fuzz_test.cc.o.d"
  "/root/repo/tests/core/importer_test.cc" "tests/CMakeFiles/core_tests.dir/core/importer_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/importer_test.cc.o.d"
  "/root/repo/tests/core/lock_order_test.cc" "tests/CMakeFiles/core_tests.dir/core/lock_order_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/lock_order_test.cc.o.d"
  "/root/repo/tests/core/mode_analysis_test.cc" "tests/CMakeFiles/core_tests.dir/core/mode_analysis_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/mode_analysis_test.cc.o.d"
  "/root/repo/tests/core/observations_test.cc" "tests/CMakeFiles/core_tests.dir/core/observations_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/observations_test.cc.o.d"
  "/root/repo/tests/core/report_test.cc" "tests/CMakeFiles/core_tests.dir/core/report_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/report_test.cc.o.d"
  "/root/repo/tests/core/rule_checker_test.cc" "tests/CMakeFiles/core_tests.dir/core/rule_checker_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rule_checker_test.cc.o.d"
  "/root/repo/tests/core/rule_diff_test.cc" "tests/CMakeFiles/core_tests.dir/core/rule_diff_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rule_diff_test.cc.o.d"
  "/root/repo/tests/core/rule_test.cc" "tests/CMakeFiles/core_tests.dir/core/rule_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/rule_test.cc.o.d"
  "/root/repo/tests/core/violation_finder_test.cc" "tests/CMakeFiles/core_tests.dir/core/violation_finder_test.cc.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/violation_finder_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lockdoc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lockdoc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/vfs/CMakeFiles/lockdoc_vfs.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/lockdoc_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/coverage/CMakeFiles/lockdoc_coverage.dir/DependInfo.cmake"
  "/root/repo/build/src/db/CMakeFiles/lockdoc_db.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/lockdoc_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lockdoc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/lockdoc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/lockdoc_model.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdoc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
