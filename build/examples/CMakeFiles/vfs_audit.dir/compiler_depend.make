# Empty compiler generated dependencies file for vfs_audit.
# This may be replaced when dependencies are built.
