# Empty dependencies file for vfs_audit.
# This may be replaced when dependencies are built.
