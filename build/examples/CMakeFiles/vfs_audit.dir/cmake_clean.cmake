file(REMOVE_RECURSE
  "CMakeFiles/vfs_audit.dir/vfs_audit.cpp.o"
  "CMakeFiles/vfs_audit.dir/vfs_audit.cpp.o.d"
  "vfs_audit"
  "vfs_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfs_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
