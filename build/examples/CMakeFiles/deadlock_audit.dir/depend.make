# Empty dependencies file for deadlock_audit.
# This may be replaced when dependencies are built.
