file(REMOVE_RECURSE
  "CMakeFiles/deadlock_audit.dir/deadlock_audit.cpp.o"
  "CMakeFiles/deadlock_audit.dir/deadlock_audit.cpp.o.d"
  "deadlock_audit"
  "deadlock_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
