file(REMOVE_RECURSE
  "CMakeFiles/check_docs.dir/check_docs.cpp.o"
  "CMakeFiles/check_docs.dir/check_docs.cpp.o.d"
  "check_docs"
  "check_docs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_docs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
