# Empty dependencies file for check_docs.
# This may be replaced when dependencies are built.
