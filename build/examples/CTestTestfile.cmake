# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--iterations" "300")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vfs_audit "/root/repo/build/examples/vfs_audit" "--ops" "2000")
set_tests_properties(example_vfs_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bug_hunt "/root/repo/build/examples/bug_hunt" "--ops" "2000" "--examples" "3")
set_tests_properties(example_bug_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_check_docs "/root/repo/build/examples/check_docs" "--ops" "2000")
set_tests_properties(example_check_docs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_deadlock_audit "/root/repo/build/examples/deadlock_audit" "--ops" "2000")
set_tests_properties(example_deadlock_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
