#include "src/db/database.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(DatabaseTest, CreateAndAccessTables) {
  Database db;
  db.CreateTable("a", {{"x", ColumnType::kUint64}});
  db.CreateTable("b", {{"y", ColumnType::kString}});
  EXPECT_TRUE(db.HasTable("a"));
  EXPECT_FALSE(db.HasTable("c"));
  EXPECT_EQ(db.TableNames(), (std::vector<std::string>{"a", "b"}));
  db.table("a").Insert({uint64_t{1}});
  EXPECT_EQ(db.table("a").row_count(), 1u);
}

TEST(DatabaseTest, DirectoryExportImportRoundTrip) {
  Database db;
  Table& t = db.CreateTable("events", {{"id", ColumnType::kUint64},
                                       {"label", ColumnType::kString}});
  t.Insert({uint64_t{1}, std::string("alpha")});
  t.Insert({uint64_t{2}, std::string("beta,comma")});

  std::string dir = ::testing::TempDir() + "/lockdoc_db_test";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(db.ExportDirectory(dir).ok());

  Database restored;
  restored.CreateTable("events", {{"id", ColumnType::kUint64},
                                  {"label", ColumnType::kString}});
  ASSERT_TRUE(restored.ImportDirectory(dir).ok());
  EXPECT_EQ(restored.table("events").row_count(), 2u);
  EXPECT_EQ(restored.table("events").GetString(1, 1), "beta,comma");
}

TEST(DatabaseTest, ImportFromMissingDirectoryFails) {
  Database db;
  db.CreateTable("t", {{"x", ColumnType::kUint64}});
  EXPECT_FALSE(db.ImportDirectory("/nonexistent/lockdoc").ok());
}

}  // namespace
}  // namespace lockdoc
