// Container-level snapshot repair: RepairSnapshotBytes must keep every
// CRC-verified section, drop the damaged ones with a diagnostic line, and
// always emit a structurally clean container (fresh seqs, CRCs, end
// section) — the engine behind `lockdoc doctor FILE.lockdb --repair OUT`.
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "src/db/snapshot.h"

namespace lockdoc {
namespace {

// A small hand-built container with recognizable payloads. Not a loadable
// analysis snapshot — repair is purely structural, which is exactly what
// these tests pin.
std::string BuildContainer() {
  SnapshotWriter writer;
  writer.AddSection(kSnapshotSectionMeta, "meta-payload");
  writer.AddSection(kSnapshotSectionStrings, std::string(300, 's'));
  writer.AddSection(kSnapshotSectionTable, std::string(500, 't'));
  writer.AddSection(kSnapshotSectionPool, "pool");
  return writer.Finish().value();
}

// Offset of the n-th (0-based) frame marker.
size_t MarkerOffset(const std::string& bytes, size_t n) {
  const char marker[] = {static_cast<char>(0xAB), 'L', 'D', static_cast<char>(0xF3)};
  size_t pos = 0;
  for (;;) {
    pos = bytes.find(std::string(marker, 4), pos);
    EXPECT_NE(pos, std::string::npos);
    if (n == 0) {
      return pos;
    }
    --n;
    ++pos;
  }
}

TEST(SnapshotRepairTest, CleanContainerRepairsToIdenticalBytes) {
  std::string bytes = BuildContainer();
  SnapshotRepairResult repaired = RepairSnapshotBytes(bytes);
  ASSERT_TRUE(repaired.salvageable());
  EXPECT_EQ(repaired.sections_kept, 4u);
  EXPECT_TRUE(repaired.dropped.empty());
  // Nothing was damaged, so nothing should change.
  EXPECT_EQ(repaired.bytes, bytes);
}

TEST(SnapshotRepairTest, DamagedSectionIsDroppedAndRestIsKept)  {
  std::string bytes = BuildContainer();
  // Flip payload bytes inside the table section (section index 2).
  size_t table_at = MarkerOffset(bytes, 2);
  bytes[table_at + kSnapshotFrameHeaderSize + 10] ^= 0x5A;
  ASSERT_FALSE(InspectSnapshot(bytes).clean());
  ASSERT_FALSE(ScanSnapshotSections(bytes).ok());

  SnapshotRepairResult repaired = RepairSnapshotBytes(bytes);
  ASSERT_TRUE(repaired.salvageable());
  EXPECT_EQ(repaired.sections_kept, 3u);
  ASSERT_EQ(repaired.dropped.size(), 1u);
  EXPECT_NE(repaired.dropped[0].find("table"), std::string::npos);

  // The repaired container is structurally clean and strictly loadable.
  EXPECT_TRUE(InspectSnapshot(repaired.bytes).clean());
  auto sections = ScanSnapshotSections(repaired.bytes);
  ASSERT_TRUE(sections.ok());
  ASSERT_EQ(sections.value().size(), 3u);
  EXPECT_EQ(sections.value()[0].payload, "meta-payload");
  EXPECT_EQ(sections.value()[2].payload, "pool");
  // Sequence numbers re-issued contiguously despite the dropped section.
  EXPECT_EQ(sections.value()[1].seq, 1u);
  EXPECT_EQ(sections.value()[2].seq, 2u);
}

TEST(SnapshotRepairTest, TruncatedTailKeepsThePrefix) {
  std::string bytes = BuildContainer();
  // Cut mid-way through the table section.
  bytes.resize(MarkerOffset(bytes, 2) + kSnapshotFrameHeaderSize + 100);

  SnapshotRepairResult repaired = RepairSnapshotBytes(bytes);
  ASSERT_TRUE(repaired.salvageable());
  EXPECT_EQ(repaired.sections_kept, 2u);
  EXPECT_TRUE(InspectSnapshot(repaired.bytes).clean());
  auto sections = ScanSnapshotSections(repaired.bytes);
  ASSERT_TRUE(sections.ok());
  EXPECT_EQ(sections.value()[0].payload, "meta-payload");
}

TEST(SnapshotRepairTest, DestroyedMagicIsNotSalvageable) {
  std::string bytes = BuildContainer();
  bytes[0] ^= 0xFF;
  SnapshotRepairResult repaired = RepairSnapshotBytes(bytes);
  EXPECT_FALSE(repaired.salvageable());
  EXPECT_TRUE(repaired.bytes.empty());
}

TEST(SnapshotRepairTest, EveryThingDamagedButMagicYieldsEmptyContainer) {
  std::string bytes = BuildContainer();
  // Zero everything after the magic: no section survives.
  for (size_t i = sizeof(kSnapshotMagic); i < bytes.size(); ++i) {
    bytes[i] = 0;
  }
  SnapshotRepairResult repaired = RepairSnapshotBytes(bytes);
  EXPECT_EQ(repaired.sections_kept, 0u);
  EXPECT_FALSE(repaired.salvageable());
}

}  // namespace
}  // namespace lockdoc
