// The .lockdb container layer: framing, CRC verification, strict scan vs
// lenient inspection, magic sniffing, and the db-level section codecs
// (string pool, tables). Corruption here must surface as Status errors and
// per-section damage reports, never as aborts.
#include "src/db/snapshot.h"

#include <gtest/gtest.h>

#include "src/db/database.h"
#include "src/util/crc32.h"
#include "src/util/varint.h"

namespace lockdoc {
namespace {

std::string TinySnapshot() {
  SnapshotWriter writer;
  writer.AddSection(kSnapshotSectionMeta, "meta-payload");
  writer.AddSection(kSnapshotSectionStrings, "strings-payload");
  writer.AddSection(kSnapshotSectionTable, "");  // Empty payloads are legal.
  return writer.Finish().value();
}

TEST(SnapshotContainerTest, WriterScanRoundTrip) {
  std::string bytes = TinySnapshot();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok()) << sections.status().message();
  ASSERT_EQ(sections.value().size(), 3u);
  EXPECT_EQ(sections.value()[0].type, kSnapshotSectionMeta);
  EXPECT_EQ(sections.value()[0].seq, 0u);
  EXPECT_EQ(sections.value()[0].payload, "meta-payload");
  EXPECT_EQ(sections.value()[1].type, kSnapshotSectionStrings);
  EXPECT_EQ(sections.value()[1].seq, 1u);
  EXPECT_EQ(sections.value()[2].payload, "");
}

TEST(SnapshotContainerTest, EmptySnapshotIsCleanWithZeroSections) {
  SnapshotWriter writer;
  std::string bytes = writer.Finish().value();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  EXPECT_TRUE(sections.value().empty());
  EXPECT_TRUE(InspectSnapshot(bytes).clean());
}

TEST(SnapshotContainerTest, MagicSniffing) {
  std::string bytes = TinySnapshot();
  EXPECT_TRUE(LooksLikeSnapshot(bytes));
  EXPECT_FALSE(LooksLikeSnapshot("LDTRACE2 something"));
  EXPECT_FALSE(LooksLikeSnapshot(""));
  EXPECT_FALSE(LooksLikeSnapshot(bytes.substr(1)));
}

TEST(SnapshotContainerTest, UnknownSectionTypeIsUnrecognizedNotDamage) {
  SnapshotWriter writer;
  writer.AddSection(kSnapshotSectionMeta, "meta-payload");
  writer.AddSection(static_cast<SnapshotSectionType>(9), "future-payload");
  writer.AddSection(kSnapshotSectionStrings, "strings-payload");
  std::string bytes = writer.Finish().value();

  // The strict scan keeps the unknown section (its CRC is intact).
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok()) << sections.status().message();
  ASSERT_EQ(sections.value().size(), 3u);
  EXPECT_EQ(static_cast<uint32_t>(sections.value()[1].type), 9u);
  EXPECT_EQ(sections.value()[1].payload, "future-payload");

  // doctor reports it as forward compatibility, not as damage.
  SnapshotInspection inspection = InspectSnapshot(bytes);
  EXPECT_TRUE(inspection.clean());
  ASSERT_EQ(inspection.sections.size(), 3u);
  EXPECT_FALSE(inspection.sections[0].unrecognized);
  EXPECT_TRUE(inspection.sections[1].unrecognized);
  EXPECT_TRUE(inspection.sections[1].ok());
  EXPECT_FALSE(inspection.sections[2].unrecognized);
  std::string text = inspection.ToString();
  EXPECT_NE(text.find("unrecognized (skipped)"), std::string::npos);
  EXPECT_NE(text.find("type 9"), std::string::npos);
}

TEST(SnapshotContainerTest, V2UnknownSectionTypeIsUnrecognizedNotDamage) {
  SnapshotWriter writer(/*container_version=*/2);
  writer.AddSection(kSnapshotSectionMeta, "meta-payload");
  writer.AddSection(static_cast<SnapshotSectionType>(11), "future-payload");
  writer.AddSection(kSnapshotSectionStrings, "strings-payload");
  std::string bytes = writer.Finish().value();
  SnapshotInspection inspection = InspectSnapshot(bytes);
  EXPECT_TRUE(inspection.clean());
  ASSERT_EQ(inspection.sections.size(), 3u);
  EXPECT_TRUE(inspection.sections[1].unrecognized);
  EXPECT_TRUE(inspection.sections[1].ok());
  std::string text = inspection.ToString();
  EXPECT_NE(text.find("unrecognized (skipped)"), std::string::npos);
  EXPECT_NE(text.find("type 11"), std::string::npos);
}

TEST(SnapshotContainerTest, CorruptUnknownSectionIsStillDamage) {
  SnapshotWriter writer;
  writer.AddSection(kSnapshotSectionMeta, "meta-payload");
  writer.AddSection(static_cast<SnapshotSectionType>(9), "future-payload");
  writer.AddSection(kSnapshotSectionStrings, "strings-payload");
  std::string bytes = writer.Finish().value();
  // Flip a byte inside the unknown section's payload: "unrecognized" is
  // only for intact sections — a bad CRC is damage like anywhere else.
  size_t pos = bytes.find("future-payload");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x40;
  SnapshotInspection inspection = InspectSnapshot(bytes);
  EXPECT_FALSE(inspection.clean());
}

TEST(SnapshotContainerTest, BadMagicFailsScan) {
  std::string bytes = TinySnapshot();
  bytes[0] ^= 0x01;
  EXPECT_FALSE(ScanSnapshotSections(bytes).ok());
  EXPECT_FALSE(InspectSnapshot(bytes).magic_ok);
  EXPECT_FALSE(InspectSnapshot(bytes).clean());
}

TEST(SnapshotContainerTest, EveryByteFlipIsDetected) {
  std::string pristine = TinySnapshot();
  // Flip each byte after the magic in turn; the strict scan must fail every
  // time (CRC, marker, or structural check) and never crash.
  for (size_t i = sizeof(kSnapshotMagic); i < pristine.size(); ++i) {
    std::string bytes = pristine;
    bytes[i] ^= 0x40;
    auto sections = ScanSnapshotSections(bytes);
    EXPECT_FALSE(sections.ok()) << "undetected flip at offset " << i;
  }
}

void PatchU32(std::string* bytes, size_t pos, uint32_t value) {
  std::string le;
  AppendUint32LE(le, value);
  bytes->replace(pos, le.size(), le);
}

void PatchU64(std::string* bytes, size_t pos, uint64_t value) {
  std::string le;
  AppendUint64LE(le, value);
  bytes->replace(pos, le.size(), le);
}

std::string TinySnapshotV2() {
  SnapshotWriter writer(/*container_version=*/2);
  writer.AddSection(kSnapshotSectionMeta, "meta-payload");
  writer.AddSection(kSnapshotSectionStrings, "strings-payload");
  writer.AddSection(kSnapshotSectionTable, "table-bytes");
  return writer.Finish().value();
}

TEST(SnapshotContainerTest, V2WriterScanRoundTripIsAligned) {
  std::string bytes = TinySnapshotV2();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok()) << sections.status().message();
  ASSERT_EQ(sections.value().size(), 3u);
  EXPECT_EQ(sections.value()[0].payload, "meta-payload");
  EXPECT_EQ(sections.value()[1].payload, "strings-payload");
  EXPECT_EQ(sections.value()[2].payload, "table-bytes");
  for (const SnapshotSection& section : sections.value()) {
    // The zero-copy contract: every frame (and therefore every payload,
    // after the fixed 32-byte header) sits on an 8-byte boundary, and the
    // CRC domain is the payload padded out to the next boundary.
    EXPECT_EQ(section.offset % 8, 0u);
    EXPECT_EQ((section.offset + kSnapshotV2FrameHeaderSize) % 8, 0u);
    EXPECT_EQ(section.padded_payload.size() % 8, 0u);
    EXPECT_GE(section.padded_payload.size(), section.payload.size());
  }
}

TEST(SnapshotContainerTest, V2EveryByteFlipIsDetected) {
  std::string pristine = TinySnapshotV2();
  // Padding bytes included: header pads are covered by the header CRC and
  // payload pads by the padded-payload CRC, so no flipped byte may pass.
  for (size_t i = sizeof(kSnapshotMagicV2); i < pristine.size(); ++i) {
    std::string bytes = pristine;
    bytes[i] ^= 0x40;
    EXPECT_FALSE(ScanSnapshotSections(bytes).ok()) << "undetected flip at offset " << i;
  }
}

TEST(SnapshotContainerTest, V2HeaderModeDefersTablePayloadCrcOnly) {
  std::string bytes = TinySnapshotV2();
  auto pristine = ScanSnapshotSections(bytes, SnapshotScanMode::kVerifyHeaders);
  ASSERT_TRUE(pristine.ok());
  EXPECT_TRUE(pristine.value()[0].crc_checked);   // meta
  EXPECT_TRUE(pristine.value()[1].crc_checked);   // strings
  EXPECT_FALSE(pristine.value()[2].crc_checked);  // table: deferred
  EXPECT_TRUE(VerifySectionPayloadCrc(pristine.value()[2]).ok());

  // A flip inside the table payload passes the header-only scan but is
  // caught by the deferred verification (and by the full scan).
  size_t victim = pristine.value()[2].payload.data() - bytes.data();
  bytes[victim] ^= 0xFF;
  EXPECT_FALSE(ScanSnapshotSections(bytes, SnapshotScanMode::kVerifyAll).ok());
  auto lazy = ScanSnapshotSections(bytes, SnapshotScanMode::kVerifyHeaders);
  ASSERT_TRUE(lazy.ok()) << lazy.status().message();
  Status deferred = VerifySectionPayloadCrc(lazy.value()[2]);
  EXPECT_FALSE(deferred.ok());
  EXPECT_NE(deferred.message().find("crc mismatch"), std::string::npos);
}

TEST(SnapshotContainerTest, OversizedSectionFailsWithTypedError) {
  // The guard against the 32-bit v1 length field: an oversized payload must
  // poison the writer with a typed error, never truncate silently. The cap
  // is injected tiny so the test does not materialize gigabytes.
  SnapshotWriter writer(/*container_version=*/1, /*max_section_payload=*/16);
  writer.AddSection(kSnapshotSectionMeta, "fits");
  writer.AddSection(kSnapshotSectionTable, std::string(17, 'x'));
  EXPECT_FALSE(writer.status().ok());
  writer.AddSection(kSnapshotSectionPool, "ignored after the failure");
  auto finished = writer.Finish();
  ASSERT_FALSE(finished.ok());
  EXPECT_NE(finished.status().message().find("table"), std::string::npos);
  EXPECT_NE(finished.status().message().find("exceeds the v1 container cap"),
            std::string::npos);

  // v2 honors an injected cap the same way (its default cap is the 64-bit
  // length itself, which a test cannot reach).
  SnapshotWriter v2(/*container_version=*/2, /*max_section_payload=*/8);
  v2.AddSection(kSnapshotSectionMeta, std::string(9, 'y'));
  EXPECT_FALSE(v2.Finish().ok());
}

TEST(SnapshotContainerTest, CorruptV1LengthIsClampedAndLaterFramesSurvive) {
  std::string bytes = TinySnapshot();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // Forge the strings section's length field to point far past the next
  // frame. The strict scan must reject the file, and the lenient inspection
  // must clamp the reported size to the bytes before the next marker
  // instead of swallowing the frames the length pretends to cover.
  size_t frame = sections.value()[1].offset;
  PatchU32(&bytes, frame + 9, 0x7FFFFFFF);

  EXPECT_FALSE(ScanSnapshotSections(bytes).ok());
  SnapshotInspection inspection = InspectSnapshot(bytes);
  EXPECT_FALSE(inspection.clean());
  ASSERT_EQ(inspection.sections.size(), 3u);
  EXPECT_TRUE(inspection.sections[0].ok());
  EXPECT_FALSE(inspection.sections[1].ok());
  EXPECT_NE(inspection.sections[1].problem.find("implausible length"), std::string::npos);
  EXPECT_NE(inspection.sections[1].problem.find("clamped"), std::string::npos);
  EXPECT_LT(inspection.sections[1].payload_size, uint64_t{0x7FFFFFFF});
  // The table section after the damage is still found and verifies.
  EXPECT_TRUE(inspection.sections[2].ok());
  EXPECT_EQ(inspection.sections[2].type, kSnapshotSectionTable);
  EXPECT_TRUE(inspection.end_ok);
}

TEST(SnapshotContainerTest, CorruptV2LengthIsClampedAndLaterFramesSurvive) {
  std::string bytes = TinySnapshotV2();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // v2 lengths are covered by the header CRC, so a blind flip reports
  // "header crc mismatch". Forging the CRC along with the length exercises
  // the deeper failure mode: a self-consistent header whose length points
  // past later valid frames.
  size_t frame = sections.value()[1].offset;
  PatchU64(&bytes, frame + kSnapshotV2LengthOffset, uint64_t{1} << 40);
  uint32_t forged_crc = Crc32(bytes.data() + frame + kSnapshotV2TypeOffset,
                              kSnapshotV2HeaderCrcOffset - kSnapshotV2TypeOffset);
  PatchU32(&bytes, frame + kSnapshotV2HeaderCrcOffset, forged_crc);

  EXPECT_FALSE(ScanSnapshotSections(bytes).ok());
  SnapshotInspection inspection = InspectSnapshot(bytes);
  EXPECT_FALSE(inspection.clean());
  ASSERT_EQ(inspection.sections.size(), 3u);
  EXPECT_FALSE(inspection.sections[1].ok());
  EXPECT_NE(inspection.sections[1].problem.find("implausible length"), std::string::npos);
  EXPECT_NE(inspection.sections[1].problem.find("clamped"), std::string::npos);
  EXPECT_LT(inspection.sections[1].payload_size, uint64_t{1} << 40);
  EXPECT_TRUE(inspection.sections[2].ok());
  EXPECT_EQ(inspection.sections[2].type, kSnapshotSectionTable);
  EXPECT_TRUE(inspection.end_ok);
}

TEST(SnapshotContainerTest, InspectionLocalizesDamage) {
  std::string bytes = TinySnapshot();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // Corrupt the middle section's payload: its CRC breaks, neighbours stay ok.
  size_t victim = sections.value()[1].payload.data() - bytes.data();
  bytes[victim] ^= 0xFF;

  SnapshotInspection inspection = InspectSnapshot(bytes);
  EXPECT_TRUE(inspection.magic_ok);
  EXPECT_FALSE(inspection.clean());
  EXPECT_EQ(inspection.sections_bad(), 1u);
  EXPECT_EQ(inspection.sections_ok(), 2u);
  EXPECT_TRUE(inspection.end_ok);
  ASSERT_EQ(inspection.sections.size(), 3u);
  EXPECT_TRUE(inspection.sections[0].ok());
  EXPECT_FALSE(inspection.sections[1].ok());
  EXPECT_TRUE(inspection.sections[2].ok());
  std::string text = inspection.ToString();
  EXPECT_NE(text.find("strings"), std::string::npos);
  EXPECT_NE(text.find("crc mismatch"), std::string::npos);
}

TEST(SnapshotContainerTest, TruncationAtEveryOffsetFailsCleanly) {
  std::string pristine = TinySnapshot();
  for (size_t keep = 0; keep < pristine.size(); ++keep) {
    std::string bytes = pristine.substr(0, keep);
    EXPECT_FALSE(ScanSnapshotSections(bytes).ok()) << "truncated to " << keep;
    InspectSnapshot(bytes);  // Must not crash.
  }
}

TEST(SnapshotContainerTest, TrailingGarbageAfterEndIsRejected) {
  std::string bytes = TinySnapshot() + "extra";
  EXPECT_FALSE(ScanSnapshotSections(bytes).ok());
  EXPECT_FALSE(InspectSnapshot(bytes).clean());
}

TEST(SnapshotContainerTest, StringsSectionRoundTrip) {
  StringPool pool;
  pool.Intern("fs/inode.c");
  pool.Intern("comma,quote\"newline\n");
  pool.Intern("i_lock");
  std::string payload = EncodeStringsSection(pool);

  StringPool restored;
  ASSERT_TRUE(DecodeStringsSection(payload, &restored).ok());
  ASSERT_EQ(restored.size(), pool.size());
  for (StringId id = 0; id < pool.size(); ++id) {
    EXPECT_EQ(restored.Lookup(id), pool.Lookup(id));
  }
  EXPECT_EQ(restored.Find("fs/inode.c"), pool.Find("fs/inode.c"));
}

TEST(SnapshotContainerTest, StringsSectionRejectsTrailingBytes) {
  StringPool pool;
  pool.Intern("x");
  std::string payload = EncodeStringsSection(pool) + "junk";
  StringPool restored;
  EXPECT_FALSE(DecodeStringsSection(payload, &restored).ok());
}

Table& MakeSampleTable(Database* db) {
  Table& table = db->CreateTable("sample", {{"id", ColumnType::kUint64},
                                            {"score", ColumnType::kDouble},
                                            {"label", ColumnType::kString}});
  table.Insert({uint64_t{0}, 1.5, std::string("alpha")});
  table.Insert({uint64_t{7}, -2.25, std::string("beta,\"quoted\"")});
  table.Insert({kDbNull, 0.0, std::string()});
  table.CreateIndex(0);
  return table;
}

TEST(SnapshotContainerTest, TableSectionRoundTrip) {
  Database db;
  Table& table = MakeSampleTable(&db);
  std::string payload = EncodeTableSection(table);

  Database restored_db;
  ASSERT_TRUE(DecodeTableSection(payload, &restored_db).ok());
  ASSERT_TRUE(restored_db.HasTable("sample"));
  const Table& restored = restored_db.table("sample");
  ASSERT_EQ(restored.row_count(), table.row_count());
  ASSERT_EQ(restored.column_count(), table.column_count());
  EXPECT_EQ(restored.GetUint64(1, 0), 7u);
  EXPECT_EQ(restored.GetUint64(2, 0), kDbNull);
  EXPECT_DOUBLE_EQ(restored.GetDouble(1, 1), -2.25);
  EXPECT_EQ(restored.GetString(1, 2), "beta,\"quoted\"");
  // The hash index came back with the data.
  EXPECT_TRUE(restored.HasIndex(0));
  EXPECT_EQ(restored.LookupEqual(0, 7).size(), 1u);
}

TEST(SnapshotContainerTest, TableSectionRejectsDuplicateTable) {
  Database db;
  std::string payload = EncodeTableSection(MakeSampleTable(&db));
  Database restored;
  ASSERT_TRUE(DecodeTableSection(payload, &restored).ok());
  EXPECT_FALSE(DecodeTableSection(payload, &restored).ok());
}

TEST(SnapshotContainerTest, TableSectionRejectsTruncatedPayload) {
  Database db;
  std::string payload = EncodeTableSection(MakeSampleTable(&db));
  for (size_t keep : {size_t{0}, size_t{1}, payload.size() / 2, payload.size() - 1}) {
    Database restored;
    EXPECT_FALSE(DecodeTableSection(payload.substr(0, keep), &restored).ok())
        << "truncated to " << keep;
  }
}

}  // namespace
}  // namespace lockdoc
