// The .lockdb container layer: framing, CRC verification, strict scan vs
// lenient inspection, magic sniffing, and the db-level section codecs
// (string pool, tables). Corruption here must surface as Status errors and
// per-section damage reports, never as aborts.
#include "src/db/snapshot.h"

#include <gtest/gtest.h>

#include "src/db/database.h"

namespace lockdoc {
namespace {

std::string TinySnapshot() {
  SnapshotWriter writer;
  writer.AddSection(kSnapshotSectionMeta, "meta-payload");
  writer.AddSection(kSnapshotSectionStrings, "strings-payload");
  writer.AddSection(kSnapshotSectionTable, "");  // Empty payloads are legal.
  return writer.Finish();
}

TEST(SnapshotContainerTest, WriterScanRoundTrip) {
  std::string bytes = TinySnapshot();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok()) << sections.status().message();
  ASSERT_EQ(sections.value().size(), 3u);
  EXPECT_EQ(sections.value()[0].type, kSnapshotSectionMeta);
  EXPECT_EQ(sections.value()[0].seq, 0u);
  EXPECT_EQ(sections.value()[0].payload, "meta-payload");
  EXPECT_EQ(sections.value()[1].type, kSnapshotSectionStrings);
  EXPECT_EQ(sections.value()[1].seq, 1u);
  EXPECT_EQ(sections.value()[2].payload, "");
}

TEST(SnapshotContainerTest, EmptySnapshotIsCleanWithZeroSections) {
  SnapshotWriter writer;
  std::string bytes = writer.Finish();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  EXPECT_TRUE(sections.value().empty());
  EXPECT_TRUE(InspectSnapshot(bytes).clean());
}

TEST(SnapshotContainerTest, MagicSniffing) {
  std::string bytes = TinySnapshot();
  EXPECT_TRUE(LooksLikeSnapshot(bytes));
  EXPECT_FALSE(LooksLikeSnapshot("LDTRACE2 something"));
  EXPECT_FALSE(LooksLikeSnapshot(""));
  EXPECT_FALSE(LooksLikeSnapshot(bytes.substr(1)));
}

TEST(SnapshotContainerTest, BadMagicFailsScan) {
  std::string bytes = TinySnapshot();
  bytes[0] ^= 0x01;
  EXPECT_FALSE(ScanSnapshotSections(bytes).ok());
  EXPECT_FALSE(InspectSnapshot(bytes).magic_ok);
  EXPECT_FALSE(InspectSnapshot(bytes).clean());
}

TEST(SnapshotContainerTest, EveryByteFlipIsDetected) {
  std::string pristine = TinySnapshot();
  // Flip each byte after the magic in turn; the strict scan must fail every
  // time (CRC, marker, or structural check) and never crash.
  for (size_t i = sizeof(kSnapshotMagic); i < pristine.size(); ++i) {
    std::string bytes = pristine;
    bytes[i] ^= 0x40;
    auto sections = ScanSnapshotSections(bytes);
    EXPECT_FALSE(sections.ok()) << "undetected flip at offset " << i;
  }
}

TEST(SnapshotContainerTest, InspectionLocalizesDamage) {
  std::string bytes = TinySnapshot();
  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  // Corrupt the middle section's payload: its CRC breaks, neighbours stay ok.
  size_t victim = sections.value()[1].payload.data() - bytes.data();
  bytes[victim] ^= 0xFF;

  SnapshotInspection inspection = InspectSnapshot(bytes);
  EXPECT_TRUE(inspection.magic_ok);
  EXPECT_FALSE(inspection.clean());
  EXPECT_EQ(inspection.sections_bad(), 1u);
  EXPECT_EQ(inspection.sections_ok(), 2u);
  EXPECT_TRUE(inspection.end_ok);
  ASSERT_EQ(inspection.sections.size(), 3u);
  EXPECT_TRUE(inspection.sections[0].ok());
  EXPECT_FALSE(inspection.sections[1].ok());
  EXPECT_TRUE(inspection.sections[2].ok());
  std::string text = inspection.ToString();
  EXPECT_NE(text.find("strings"), std::string::npos);
  EXPECT_NE(text.find("crc mismatch"), std::string::npos);
}

TEST(SnapshotContainerTest, TruncationAtEveryOffsetFailsCleanly) {
  std::string pristine = TinySnapshot();
  for (size_t keep = 0; keep < pristine.size(); ++keep) {
    std::string bytes = pristine.substr(0, keep);
    EXPECT_FALSE(ScanSnapshotSections(bytes).ok()) << "truncated to " << keep;
    InspectSnapshot(bytes);  // Must not crash.
  }
}

TEST(SnapshotContainerTest, TrailingGarbageAfterEndIsRejected) {
  std::string bytes = TinySnapshot() + "extra";
  EXPECT_FALSE(ScanSnapshotSections(bytes).ok());
  EXPECT_FALSE(InspectSnapshot(bytes).clean());
}

TEST(SnapshotContainerTest, StringsSectionRoundTrip) {
  StringPool pool;
  pool.Intern("fs/inode.c");
  pool.Intern("comma,quote\"newline\n");
  pool.Intern("i_lock");
  std::string payload = EncodeStringsSection(pool);

  StringPool restored;
  ASSERT_TRUE(DecodeStringsSection(payload, &restored).ok());
  ASSERT_EQ(restored.size(), pool.size());
  for (StringId id = 0; id < pool.size(); ++id) {
    EXPECT_EQ(restored.Lookup(id), pool.Lookup(id));
  }
  EXPECT_EQ(restored.Find("fs/inode.c"), pool.Find("fs/inode.c"));
}

TEST(SnapshotContainerTest, StringsSectionRejectsTrailingBytes) {
  StringPool pool;
  pool.Intern("x");
  std::string payload = EncodeStringsSection(pool) + "junk";
  StringPool restored;
  EXPECT_FALSE(DecodeStringsSection(payload, &restored).ok());
}

Table& MakeSampleTable(Database* db) {
  Table& table = db->CreateTable("sample", {{"id", ColumnType::kUint64},
                                            {"score", ColumnType::kDouble},
                                            {"label", ColumnType::kString}});
  table.Insert({uint64_t{0}, 1.5, std::string("alpha")});
  table.Insert({uint64_t{7}, -2.25, std::string("beta,\"quoted\"")});
  table.Insert({kDbNull, 0.0, std::string()});
  table.CreateIndex(0);
  return table;
}

TEST(SnapshotContainerTest, TableSectionRoundTrip) {
  Database db;
  Table& table = MakeSampleTable(&db);
  std::string payload = EncodeTableSection(table);

  Database restored_db;
  ASSERT_TRUE(DecodeTableSection(payload, &restored_db).ok());
  ASSERT_TRUE(restored_db.HasTable("sample"));
  const Table& restored = restored_db.table("sample");
  ASSERT_EQ(restored.row_count(), table.row_count());
  ASSERT_EQ(restored.column_count(), table.column_count());
  EXPECT_EQ(restored.GetUint64(1, 0), 7u);
  EXPECT_EQ(restored.GetUint64(2, 0), kDbNull);
  EXPECT_DOUBLE_EQ(restored.GetDouble(1, 1), -2.25);
  EXPECT_EQ(restored.GetString(1, 2), "beta,\"quoted\"");
  // The hash index came back with the data.
  EXPECT_TRUE(restored.HasIndex(0));
  EXPECT_EQ(restored.LookupEqual(0, 7).size(), 1u);
}

TEST(SnapshotContainerTest, TableSectionRejectsDuplicateTable) {
  Database db;
  std::string payload = EncodeTableSection(MakeSampleTable(&db));
  Database restored;
  ASSERT_TRUE(DecodeTableSection(payload, &restored).ok());
  EXPECT_FALSE(DecodeTableSection(payload, &restored).ok());
}

TEST(SnapshotContainerTest, TableSectionRejectsTruncatedPayload) {
  Database db;
  std::string payload = EncodeTableSection(MakeSampleTable(&db));
  for (size_t keep : {size_t{0}, size_t{1}, payload.size() / 2, payload.size() - 1}) {
    Database restored;
    EXPECT_FALSE(DecodeTableSection(payload.substr(0, keep), &restored).ok())
        << "truncated to " << keep;
  }
}

}  // namespace
}  // namespace lockdoc
