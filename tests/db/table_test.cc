#include "src/db/table.h"

#include <sstream>

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

Table MakeTable() {
  return Table("t", {{"id", ColumnType::kUint64},
                     {"name", ColumnType::kString},
                     {"score", ColumnType::kDouble}});
}

TEST(TableTest, InsertAndTypedGet) {
  Table table = MakeTable();
  RowId row = table.Insert({uint64_t{7}, std::string("x"), 2.5});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.GetUint64(row, 0), 7u);
  EXPECT_EQ(table.GetString(row, 1), "x");
  EXPECT_DOUBLE_EQ(table.GetDouble(row, 2), 2.5);
}

TEST(TableTest, ColumnIndexByName) {
  Table table = MakeTable();
  EXPECT_EQ(table.ColumnIndex("id"), 0u);
  EXPECT_EQ(table.ColumnIndex("score"), 2u);
}

TEST(TableTest, LookupEqualWithoutIndexScans) {
  Table table = MakeTable();
  table.Insert({uint64_t{1}, std::string("a"), 0.0});
  table.Insert({uint64_t{2}, std::string("b"), 0.0});
  table.Insert({uint64_t{1}, std::string("c"), 0.0});
  EXPECT_EQ(table.LookupEqual(0, 1), (std::vector<RowId>{0, 2}));
  EXPECT_TRUE(table.LookupEqual(0, 99).empty());
}

TEST(TableTest, IndexedLookupMatchesScan) {
  Table table = MakeTable();
  for (uint64_t i = 0; i < 100; ++i) {
    table.Insert({i % 10, std::string("r"), 0.0});
  }
  std::vector<RowId> scanned = table.LookupEqual(0, 3);
  table.CreateIndex(0);
  EXPECT_TRUE(table.HasIndex(0));
  EXPECT_EQ(table.LookupEqual(0, 3), scanned);
}

TEST(TableTest, IndexMaintainedAcrossInsert) {
  Table table = MakeTable();
  table.CreateIndex(0);
  table.Insert({uint64_t{5}, std::string("a"), 0.0});
  table.Insert({uint64_t{5}, std::string("b"), 0.0});
  EXPECT_EQ(table.LookupEqual(0, 5).size(), 2u);
}

TEST(TableTest, SetUint64UpdatesIndex) {
  Table table = MakeTable();
  table.CreateIndex(0);
  RowId row = table.Insert({uint64_t{5}, std::string("a"), 0.0});
  table.SetUint64(row, 0, 9);
  EXPECT_TRUE(table.LookupEqual(0, 5).empty());
  EXPECT_EQ(table.LookupEqual(0, 9), (std::vector<RowId>{row}));
  EXPECT_EQ(table.GetUint64(row, 0), 9u);
}

TEST(TableTest, ScanEarlyExit) {
  Table table = MakeTable();
  for (uint64_t i = 0; i < 10; ++i) {
    table.Insert({i, std::string(), 0.0});
  }
  size_t visited = 0;
  table.Scan([&](RowId) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3u);
}

TEST(TableTest, CsvRoundTrip) {
  Table table = MakeTable();
  table.Insert({uint64_t{1}, std::string("plain"), 1.25});
  table.Insert({uint64_t{2}, std::string("with,comma"), -0.5});
  table.CreateIndex(0);

  std::ostringstream out;
  table.ExportCsv(out);

  Table restored = MakeTable();
  ASSERT_TRUE(restored.ImportCsv(out.str()).ok());
  EXPECT_EQ(restored.row_count(), 2u);
  EXPECT_EQ(restored.GetString(1, 1), "with,comma");
  EXPECT_DOUBLE_EQ(restored.GetDouble(0, 2), 1.25);
}

TEST(TableTest, ImportRejectsHeaderMismatch) {
  Table table = MakeTable();
  EXPECT_FALSE(table.ImportCsv("wrong,header,row\n1,a,0.5\n").ok());
}

TEST(TableTest, ImportRejectsArityMismatch) {
  Table table = MakeTable();
  EXPECT_FALSE(table.ImportCsv("id,name,score\n1,a\n").ok());
}

TEST(TableTest, ImportRejectsBadNumbers) {
  Table table = MakeTable();
  EXPECT_FALSE(table.ImportCsv("id,name,score\nxyz,a,0.5\n").ok());
  EXPECT_FALSE(table.ImportCsv("id,name,score\n1,a,notadouble\n").ok());
}

TEST(TableTest, ImportReplacesExistingRows) {
  Table table = MakeTable();
  table.Insert({uint64_t{1}, std::string("old"), 0.0});
  ASSERT_TRUE(table.ImportCsv("id,name,score\n2,new,1.0\n").ok());
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_EQ(table.GetString(0, 1), "new");
}

}  // namespace
}  // namespace lockdoc
