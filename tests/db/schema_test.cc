#include "src/db/schema.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(SchemaTest, CreatesAllTables) {
  Database db;
  CreateLockDocSchema(&db);
  for (const char* name :
       {LockDocSchema::kDataTypes, LockDocSchema::kSubclasses, LockDocSchema::kMembers,
        LockDocSchema::kAllocations, LockDocSchema::kLocks, LockDocSchema::kTxns,
        LockDocSchema::kTxnLocks, LockDocSchema::kStackFrames, LockDocSchema::kAccesses}) {
    EXPECT_TRUE(db.HasTable(name)) << name;
  }
}

TEST(SchemaTest, JoinColumnsAreIndexed) {
  Database db;
  CreateLockDocSchema(&db);
  Table& accesses = db.table(LockDocSchema::kAccesses);
  EXPECT_TRUE(accesses.HasIndex(accesses.ColumnIndex("txn_id")));
  EXPECT_TRUE(accesses.HasIndex(accesses.ColumnIndex("member_id")));
  Table& txn_locks = db.table(LockDocSchema::kTxnLocks);
  EXPECT_TRUE(txn_locks.HasIndex(txn_locks.ColumnIndex("txn_id")));
}

TEST(SchemaTest, AccessesSchemaMatchesImporterContract) {
  Database db;
  CreateLockDocSchema(&db);
  Table& accesses = db.table(LockDocSchema::kAccesses);
  EXPECT_EQ(accesses.column_count(), 12u);
  // Spot-check the column order the importer relies on.
  EXPECT_EQ(accesses.ColumnIndex("seq"), 0u);
  EXPECT_EQ(accesses.ColumnIndex("filter_reason"), 11u);
}

}  // namespace
}  // namespace lockdoc
