// Shared helpers for the core-analysis tests: a tiny two-object world with
// embedded and global locks, driven through the real SimKernel so traces are
// well-formed by construction.
#ifndef TESTS_CORE_TEST_HELPERS_H_
#define TESTS_CORE_TEST_HELPERS_H_

#include <memory>

#include "src/core/importer.h"
#include "src/core/observations.h"
#include "src/db/database.h"
#include "src/sim/kernel.h"

namespace lockdoc {

struct TestWorld {
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
  std::unique_ptr<SimKernel> sim;

  TypeId type = kInvalidTypeId;
  MemberIndex data = kInvalidMember;     // Plain member.
  MemberIndex extra = kInvalidMember;    // Second plain member.
  MemberIndex atomic = kInvalidMember;   // atomic_t member.
  MemberIndex banned = kInvalidMember;   // Blacklisted member.
  MemberIndex spin = kInvalidMember;     // Embedded spinlock.
  MemberIndex mutex = kInvalidMember;    // Embedded mutex.
  GlobalLock global_a;
  GlobalLock global_b;

  TestWorld() {
    registry = std::make_unique<TypeRegistry>();
    auto layout = std::make_unique<TypeLayout>("widget");
    data = layout->AddMember("data", 8);
    extra = layout->AddMember("extra", 8);
    atomic = layout->AddAtomicMember("refs", 4);
    banned = layout->AddBlacklistedMember("foreign", 8);
    spin = layout->AddLockMember("w_lock", LockType::kSpinlock);
    mutex = layout->AddLockMember("w_mutex", LockType::kMutex);
    type = registry->Register(std::move(layout));
    sim = std::make_unique<SimKernel>(&trace, registry.get());
    global_a = sim->DefineStaticLock("global_a", LockType::kSpinlock);
    global_b = sim->DefineStaticLock("global_b", LockType::kMutex);
  }

  // Imports the recorded trace.
  ImportStats Import(Database* db, FilterConfig filter = FilterConfig::Defaults()) {
    TraceImporter importer(registry.get(), std::move(filter));
    return importer.Import(trace, db);
  }

  // Full import + observation extraction.
  ObservationStore Extract(FilterConfig filter = FilterConfig::Defaults()) {
    Database db;
    Import(&db, std::move(filter));
    return ExtractObservations(db, *registry);
  }

  MemberObsKey Key(MemberIndex member) const {
    MemberObsKey key;
    key.type = type;
    key.subclass = kNoSubclass;
    key.member = member;
    return key;
  }
};

}  // namespace lockdoc

#endif  // TESTS_CORE_TEST_HELPERS_H_
