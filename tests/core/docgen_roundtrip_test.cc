// Closing the loop: documentation regenerated from mined rules must
// validate against the very trace it was mined from — every generated rule,
// fed back through the rule-spec parser and the checker, has to come out
// with sr >= t_ac (and "no lock" rules as plainly correct). This is the
// consistency contract between the documentation generator (phase 3) and
// the checker (phase 3) the paper's workflow implies but never states.
#include <gtest/gtest.h>

#include "src/core/doc_generator.h"
#include "src/core/pipeline.h"
#include "src/core/rule_checker.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

TEST(DocgenRoundtripTest, GeneratedRulesValidateAgainstTheirOwnTrace) {
  MixOptions mix;
  mix.ops = 6000;
  mix.seed = 21;
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  PipelineResult result = RunPipeline(sim.trace, *sim.registry, options);

  DocGenerator generator(sim.registry.get());
  RuleChecker checker(sim.registry.get(), &result.snapshot.observations);

  size_t checked = 0;
  for (TypeId type = 0; type < sim.registry->type_count(); ++type) {
    std::vector<SubclassId> subclasses = {kNoSubclass};
    for (SubclassId sub : sim.registry->SubclassesOf(type)) {
      subclasses.push_back(sub);
    }
    for (SubclassId sub : subclasses) {
      std::string spec = generator.GenerateRuleSpec(type, sub, result.rules);
      if (spec.empty()) {
        continue;
      }
      auto rules = RuleSet::ParseText(spec);
      ASSERT_TRUE(rules.ok()) << rules.status().ToString() << "\n" << spec;
      for (const RuleCheckResult& check : checker.CheckAll(rules.value())) {
        ++checked;
        EXPECT_NE(check.verdict, RuleVerdict::kUnobserved) << check.rule.ToString();
        EXPECT_NE(check.verdict, RuleVerdict::kIncorrect) << check.rule.ToString();
        EXPECT_GE(check.sr + 1e-12, options.derivator.accept_threshold)
            << check.rule.ToString();
      }
    }
  }
  // The mining produced hundreds of rules; all of them round-tripped.
  EXPECT_GT(checked, 200u);
  EXPECT_EQ(checked, result.rules.size());
}

TEST(DocgenRoundtripTest, CleanKernelGeneratedRulesArePerfect) {
  MixOptions mix;
  mix.ops = 5000;
  mix.seed = 22;
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan::Clean());
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  PipelineResult result = RunPipeline(sim.trace, *sim.registry, options);

  // In the clean kernel every winner has full support.
  for (const DerivationResult& rule : result.rules) {
    ASSERT_TRUE(rule.winner.has_value());
    EXPECT_DOUBLE_EQ(rule.winner->sr, 1.0)
        << sim.registry->QualifiedName(rule.key.type, rule.key.subclass) << "."
        << sim.registry->layout(rule.key.type).member(rule.key.member).name << " "
        << AccessTypeName(rule.access) << ": " << LockSeqToString(rule.winner->locks);
  }
}

}  // namespace
}  // namespace lockdoc
