// Tests for the filter-config file format (--filter-config): one name per
// line under [section] headers, '#' comments, typed parse errors carrying
// line numbers — and the compiled-in Defaults() staying exactly as before.
#include "src/core/filter_config.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(FilterConfigTest, DefaultsUnchanged) {
  FilterConfig config = FilterConfig::Defaults();
  // The compiled-in defaults predate the file format; a parser must never
  // change them (they guard the importer's byte-compat).
  EXPECT_EQ(config.ignored_functions.size(), 23u);
  EXPECT_TRUE(config.ignored_functions.count("atomic_read"));
  EXPECT_TRUE(config.ignored_functions.count("WRITE_ONCE"));
  EXPECT_TRUE(config.ignored_functions.count("test_and_clear_bit"));
  EXPECT_TRUE(config.init_teardown_functions.empty());
  EXPECT_TRUE(config.blacklisted_members.empty());
}

TEST(FilterConfigTest, ParsesAllThreeSections) {
  auto parsed = ParseFilterConfigText(
      "# a comment\n"
      "[ignored-functions]\n"
      "vfs_write  # trailing comment\n"
      "vfs_read\n"
      "\n"
      "[init-teardown-functions]\n"
      "inode_init_once\n"
      "[blacklisted-members]\n"
      "inode.i_state\n"
      "inode:ext4.i_hash\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const FilterConfig& config = parsed.value();
  EXPECT_EQ(config.ignored_functions,
            (std::set<std::string>{"vfs_read", "vfs_write"}));
  EXPECT_EQ(config.init_teardown_functions, (std::set<std::string>{"inode_init_once"}));
  EXPECT_EQ(config.blacklisted_members,
            (std::set<std::string>{"inode.i_state", "inode:ext4.i_hash"}));
}

TEST(FilterConfigTest, StartsEmptyNotFromDefaults) {
  auto parsed = ParseFilterConfigText("[ignored-functions]\nonly_this\n");
  ASSERT_TRUE(parsed.ok());
  // A parsed file REPLACES the defaults; it does not extend them.
  EXPECT_EQ(parsed.value().ignored_functions, (std::set<std::string>{"only_this"}));
}

TEST(FilterConfigTest, EmptyAndCommentOnlyTextIsValid) {
  ASSERT_TRUE(ParseFilterConfigText("").ok());
  auto parsed = ParseFilterConfigText("# nothing here\n\n  # still nothing\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().ignored_functions.empty());
}

TEST(FilterConfigTest, NameBeforeSectionIsError) {
  auto parsed = ParseFilterConfigText("orphan\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("before any section header"),
            std::string::npos);
}

TEST(FilterConfigTest, UnknownSectionIsError) {
  auto parsed = ParseFilterConfigText("[ignored-functions]\nx\n[no-such-thing]\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 3"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("no-such-thing"), std::string::npos);
}

TEST(FilterConfigTest, UnterminatedSectionHeaderIsError) {
  auto parsed = ParseFilterConfigText("[ignored-functions\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("unterminated"), std::string::npos);
}

TEST(FilterConfigTest, MultiWordLineIsError) {
  auto parsed = ParseFilterConfigText("[ignored-functions]\ntwo words\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("one name per line"), std::string::npos);
  EXPECT_FALSE(ParseFilterConfigText("[ignored-functions]\nkey=value\n").ok());
}

TEST(FilterConfigTest, MissingFileIsTypedError) {
  auto loaded = LoadFilterConfigFile("/nonexistent/filter.conf");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("/nonexistent/filter.conf"),
            std::string::npos);
}

}  // namespace
}  // namespace lockdoc
