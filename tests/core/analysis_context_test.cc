// AnalysisContext and the analysis-pass framework: lazy shared indexes are
// memoized (built at most once, timed at most once), index-backed analyzers
// agree exactly with the index-free originals, and pass outputs are
// invariant across thread counts.
#include "src/core/analysis_context.h"

#include <gtest/gtest.h>

#include <thread>

#include "src/core/analysis_pass.h"
#include "src/core/mode_analysis.h"
#include "src/core/report.h"
#include "src/core/rule_checker.h"
#include "src/core/violation_finder.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

class AnalysisContextTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MixOptions mix;
    mix.ops = 2500;
    mix.seed = 11;
    sim_ = new SimulationResult(SimulateKernelRun(mix, FaultPlan{}));
    snapshot_ = new AnalysisSnapshot(
        BuildSnapshot(sim_->trace, *sim_->registry, DefaultOptions().pipeline));
  }
  static void TearDownTestSuite() {
    delete snapshot_;
    delete sim_;
    snapshot_ = nullptr;
    sim_ = nullptr;
  }

  static AnalysisOptions DefaultOptions() {
    AnalysisOptions options;
    options.pipeline.filter = VfsKernel::MakeFilterConfig();
    options.pass.documented_rules_text = VfsKernel::DocumentedRulesText();
    return options;
  }

  static size_t CountPhase(const PipelineTimings& timings, const std::string& name) {
    size_t count = 0;
    for (const PhaseTiming& phase : timings.phases) {
      count += phase.phase == name ? 1 : 0;
    }
    return count;
  }

  static SimulationResult* sim_;
  static AnalysisSnapshot* snapshot_;
};

SimulationResult* AnalysisContextTest::sim_ = nullptr;
AnalysisSnapshot* AnalysisContextTest::snapshot_ = nullptr;

TEST_F(AnalysisContextTest, RulesAreMemoizedAndTimedOnce) {
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  const std::vector<DerivationResult>& first = context.rules();
  const std::vector<DerivationResult>& second = context.rules();
  EXPECT_EQ(&first, &second);
  EXPECT_FALSE(first.empty());
  // Touch every other index; none of them re-derives.
  context.member_access_index();
  context.lock_postings();
  context.lock_order_graph();
  context.rules();
  EXPECT_EQ(CountPhase(context.timings(), "rule derivation (interned)"), 1u);
}

TEST_F(AnalysisContextTest, RulesMatchAnalyzeSnapshot) {
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  std::vector<DerivationResult> direct =
      AnalyzeSnapshot(*snapshot_, DefaultOptions().pipeline);
  const std::vector<DerivationResult>& via = context.rules();
  ASSERT_EQ(via.size(), direct.size());
  for (size_t i = 0; i < via.size(); ++i) {
    EXPECT_EQ(via[i].key.type, direct[i].key.type);
    EXPECT_EQ(via[i].key.member, direct[i].key.member);
    EXPECT_EQ(via[i].access, direct[i].access);
    ASSERT_EQ(via[i].winner.has_value(), direct[i].winner.has_value());
    if (via[i].winner.has_value()) {
      EXPECT_EQ(LockSeqToString(via[i].winner->locks),
                LockSeqToString(direct[i].winner->locks));
      EXPECT_DOUBLE_EQ(via[i].winner->sr, direct[i].winner->sr);
    }
  }
}

TEST_F(AnalysisContextTest, ConcurrentFirstUseBuildsOnce) {
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  const std::vector<DerivationResult>* seen[4] = {};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < 4; ++i) {
    threads.emplace_back([&context, &seen, i] { seen[i] = &context.rules(); });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(seen[i], seen[0]);
  }
  EXPECT_EQ(CountPhase(context.timings(), "rule derivation (interned)"), 1u);
}

TEST_F(AnalysisContextTest, SeedRulesShortCircuitsDerivation) {
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  context.SeedRules({});
  EXPECT_TRUE(context.rules().empty());
  EXPECT_EQ(CountPhase(context.timings(), "rule derivation (interned)"), 0u);
}

TEST_F(AnalysisContextTest, TakeRulesMovesTheMemoizedSet) {
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  size_t derived = context.rules().size();
  std::vector<DerivationResult> taken = context.TakeRules();
  EXPECT_EQ(taken.size(), derived);
}

TEST_F(AnalysisContextTest, MemberAccessIndexMatchesEffectiveScan) {
  const ObservationStore& store = snapshot_->observations;
  MemberAccessIndex index = MemberAccessIndex::Build(store);
  for (const auto& [key, groups] : store.groups()) {
    const MemberAccessIndex::Entry* entry = index.Find(key);
    ASSERT_NE(entry, nullptr);
    for (AccessType access : {AccessType::kRead, AccessType::kWrite}) {
      std::vector<uint32_t> expected;
      for (size_t i = 0; i < groups.size(); ++i) {
        if (groups[i].effective() == access) {
          expected.push_back(static_cast<uint32_t>(i));
        }
      }
      EXPECT_EQ(entry->For(access), expected);
      EXPECT_EQ(index.Count(key, access), store.CountObservations(key, access));
    }
  }
}

TEST_F(AnalysisContextTest, ComplyingSeqsMatchesBruteForce) {
  const ObservationStore& store = snapshot_->observations;
  LockPostingIndex postings = LockPostingIndex::Build(store);
  // The empty rule complies with every distinct sequence.
  EXPECT_EQ(postings.ComplyingSeqs(store, IdSeq{}).size(), store.distinct_seqs());
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  size_t rules_checked = 0;
  for (const DerivationResult& result : context.rules()) {
    if (!result.winner.has_value() || result.winner->is_no_lock()) {
      continue;
    }
    std::optional<IdSeq> rule_ids = store.pool().FindSeq(result.winner->locks);
    ASSERT_TRUE(rule_ids.has_value());
    std::vector<uint32_t> expected;
    for (uint32_t seq = 0; seq < store.distinct_seqs(); ++seq) {
      if (IsSubsequenceIds(*rule_ids, store.id_seq(seq))) {
        expected.push_back(seq);
      }
    }
    EXPECT_EQ(postings.ComplyingSeqs(store, *rule_ids), expected);
    ++rules_checked;
  }
  EXPECT_GT(rules_checked, 0u);
}

TEST_F(AnalysisContextTest, IndexedCheckerMatchesPlain) {
  auto rules = RuleSet::ParseText(VfsKernel::DocumentedRulesText());
  ASSERT_TRUE(rules.ok());
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  RuleChecker plain(sim_->registry.get(), &snapshot_->observations);
  RuleChecker indexed(sim_->registry.get(), &snapshot_->observations,
                      &context.member_access_index(), &context.lock_postings());
  std::vector<RuleCheckResult> a = plain.CheckAll(rules.value());
  std::vector<RuleCheckResult> b = indexed.CheckAll(rules.value());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].verdict, b[i].verdict);
    EXPECT_EQ(a[i].sa, b[i].sa);
    EXPECT_EQ(a[i].total, b[i].total);
    EXPECT_DOUBLE_EQ(a[i].sr, b[i].sr);
  }
}

TEST_F(AnalysisContextTest, IndexedFinderMatchesPlain) {
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  const std::vector<DerivationResult>& rules = context.rules();
  ViolationFinder plain(&snapshot_->db, sim_->registry.get(), &snapshot_->observations);
  ViolationFinder indexed(&snapshot_->db, sim_->registry.get(), &snapshot_->observations,
                          &context.member_access_index(), &context.lock_postings());
  std::vector<Violation> a = plain.FindAll(rules);
  std::vector<Violation> b = indexed.FindAll(rules);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(LockSeqToString(a[i].rule), LockSeqToString(b[i].rule));
    EXPECT_EQ(LockSeqToString(a[i].held), LockSeqToString(b[i].held));
    EXPECT_EQ(a[i].seqs, b[i].seqs);
  }
}

TEST_F(AnalysisContextTest, IndexedModesMatchPlain) {
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  const std::vector<DerivationResult>& rules = context.rules();
  ModeAnalyzer plain(&snapshot_->db, sim_->registry.get(), &snapshot_->observations);
  ModeAnalyzer indexed(&snapshot_->db, sim_->registry.get(), &snapshot_->observations,
                       &context.member_access_index(), &context.lock_postings());
  EXPECT_EQ(plain.Render(plain.Analyze(rules)), indexed.Render(indexed.Analyze(rules)));
}

TEST_F(AnalysisContextTest, ReportOverloadsAgree) {
  PipelineResult result;
  result.snapshot = BuildSnapshot(sim_->trace, *sim_->registry, DefaultOptions().pipeline);
  result.rules = AnalyzeSnapshot(result.snapshot, DefaultOptions().pipeline);
  ReportOptions options;
  options.documented_rules_text = VfsKernel::DocumentedRulesText();
  options.full_documentation = true;
  std::string legacy = RenderReport(*sim_->registry, result, options);
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  EXPECT_EQ(RenderReport(context, options), legacy);
}

TEST_F(AnalysisContextTest, RegistryHasCanonicalPassOrder) {
  const PassRegistry& registry = PassRegistry::Default();
  EXPECT_EQ(registry.JoinedNames(),
            "check, derive, violations, lock-order, modes, report, diff");
  EXPECT_NE(registry.Find("check"), nullptr);
  EXPECT_NE(registry.Find("report"), nullptr);
  EXPECT_EQ(registry.Find("bogus"), nullptr);
  EXPECT_EQ(registry.Find("check")->name(), "check");
}

TEST_F(AnalysisContextTest, PassOutputsAreThreadCountInvariant) {
  auto run_all = [&](size_t jobs) {
    AnalysisOptions options = DefaultOptions();
    options.pipeline.jobs = jobs;
    AnalysisOptions baseline_options = DefaultOptions();
    baseline_options.pipeline.jobs = jobs;
    AnalysisContext baseline(snapshot_, sim_->registry.get(), std::move(baseline_options));
    AnalysisContext context(snapshot_, sim_->registry.get(), std::move(options));
    context.pass_options().baseline = &baseline;
    std::string all;
    for (const auto& pass : PassRegistry::Default().passes()) {
      PassOutput out;
      Status status = pass->Run(context, out);
      EXPECT_TRUE(status.ok()) << pass->name() << ": " << status.ToString();
      all += out.text;
    }
    return all;
  };
  std::string serial = run_all(1);
  std::string parallel = run_all(3);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Diffing an input against itself reports no drift.
  EXPECT_NE(serial.find("no rule drift"), std::string::npos);
}

TEST_F(AnalysisContextTest, DiffPassWithoutBaselineIsAnError) {
  AnalysisContext context(snapshot_, sim_->registry.get(), DefaultOptions());
  const AnalysisPass* diff = PassRegistry::Default().Find("diff");
  ASSERT_NE(diff, nullptr);
  PassOutput out;
  Status status = diff->Run(context, out);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(out.text.empty());
}

}  // namespace
}  // namespace lockdoc
