#include "src/core/lock_order.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

LockOrderGraph BuildGraph(TestWorld& world) {
  Database db;
  world.Import(&db);
  return LockOrderGraph::Build(db, *world.registry);
}

const LockOrderEdge* FindEdge(const LockOrderGraph& graph, const std::string& from,
                              const std::string& to) {
  for (const LockOrderEdge& edge : graph.edges()) {
    if (edge.from.ToString() == from && edge.to.ToString() == to) {
      return &edge;
    }
  }
  return nullptr;
}

TEST(LockOrderTest, RecordsNestingEdgeWithSupport) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    for (int i = 0; i < 3; ++i) {
      world.sim->LockGlobal(world.global_a, 2);
      world.sim->Lock(obj, world.spin, 3);
      world.sim->Unlock(obj, world.spin, 4);
      world.sim->UnlockGlobal(world.global_a, 5);
    }
    world.sim->Destroy(obj, 6);
  }
  LockOrderGraph graph = BuildGraph(world);
  const LockOrderEdge* edge = FindEdge(graph, "global_a", "EO(w_lock in widget)");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->support, 3u);
  EXPECT_EQ(FindEdge(graph, "EO(w_lock in widget)", "global_a"), nullptr);
  EXPECT_TRUE(graph.ConflictingPairs().empty());
  EXPECT_TRUE(graph.FindCycles().empty());
}

TEST(LockOrderTest, DeepNestingRecordsAllPrefixEdges) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->LockGlobal(world.global_b, 3);
    world.sim->Lock(obj, world.spin, 4);
    world.sim->Unlock(obj, world.spin, 5);
    world.sim->UnlockGlobal(world.global_b, 6);
    world.sim->UnlockGlobal(world.global_a, 7);
    world.sim->Destroy(obj, 8);
  }
  LockOrderGraph graph = BuildGraph(world);
  EXPECT_NE(FindEdge(graph, "global_a", "global_b"), nullptr);
  EXPECT_NE(FindEdge(graph, "global_a", "EO(w_lock in widget)"), nullptr);
  EXPECT_NE(FindEdge(graph, "global_b", "EO(w_lock in widget)"), nullptr);
  EXPECT_EQ(graph.edges().size(), 3u);
}

TEST(LockOrderTest, AbbaConflictDetected) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    // Common order 5x, inverted order once.
    for (int i = 0; i < 5; ++i) {
      world.sim->LockGlobal(world.global_a, 2);
      world.sim->LockGlobal(world.global_b, 3);
      world.sim->UnlockGlobal(world.global_b, 4);
      world.sim->UnlockGlobal(world.global_a, 5);
    }
    world.sim->LockGlobal(world.global_b, 10);
    world.sim->LockGlobal(world.global_a, 11);
    world.sim->UnlockGlobal(world.global_a, 12);
    world.sim->UnlockGlobal(world.global_b, 13);
  }
  LockOrderGraph graph = BuildGraph(world);
  auto conflicts = graph.ConflictingPairs();
  ASSERT_EQ(conflicts.size(), 1u);
  // The rarer (buggy) direction is reported first.
  EXPECT_EQ(conflicts[0].first.from.ToString(), "global_b");
  EXPECT_EQ(conflicts[0].first.support, 1u);
  EXPECT_EQ(conflicts[0].second.support, 5u);

  auto cycles = graph.FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].classes.size(), 2u);
  EXPECT_EQ(cycles[0].min_support, 1u);
}

TEST(LockOrderTest, ThreeLockCycleDetected) {
  TestWorld world;
  GlobalLock c = world.sim->DefineStaticLock("global_c", LockType::kSpinlock);
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    auto pair = [&](const GlobalLock& x, const GlobalLock& y) {
      world.sim->LockGlobal(x, 2);
      world.sim->LockGlobal(y, 3);
      world.sim->UnlockGlobal(y, 4);
      world.sim->UnlockGlobal(x, 5);
    };
    pair(world.global_a, world.global_b);
    pair(world.global_b, c);
    pair(c, world.global_a);
  }
  LockOrderGraph graph = BuildGraph(world);
  EXPECT_TRUE(graph.ConflictingPairs().empty());  // No 2-cycles.
  auto cycles = graph.FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].classes.size(), 3u);
}

TEST(LockOrderTest, SameClassNestingIsSelfLoopNotCycle) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef a = world.sim->Create(world.type, kNoSubclass, 1);
    ObjectRef b = world.sim->Create(world.type, kNoSubclass, 2);
    world.sim->Lock(a, world.spin, 3);
    world.sim->Lock(b, world.spin, 4);  // Parent-before-child style nesting.
    world.sim->Unlock(b, world.spin, 5);
    world.sim->Unlock(a, world.spin, 6);
    world.sim->Destroy(a, 7);
    world.sim->Destroy(b, 8);
  }
  LockOrderGraph graph = BuildGraph(world);
  auto self = graph.SelfNesting();
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0].from.ToString(), "EO(w_lock in widget)");
  EXPECT_TRUE(graph.FindCycles().empty());
  EXPECT_TRUE(graph.ConflictingPairs().empty());
}

TEST(LockOrderTest, OutOfOrderReleaseDoesNotDoubleCount) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->LockGlobal(world.global_b, 3);
    world.sim->UnlockGlobal(world.global_a, 4);  // Out of order.
    world.sim->UnlockGlobal(world.global_b, 5);
  }
  LockOrderGraph graph = BuildGraph(world);
  const LockOrderEdge* edge = FindEdge(graph, "global_a", "global_b");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->support, 1u);  // The re-minted [b] txn must not add edges.
  EXPECT_EQ(FindEdge(graph, "global_b", "global_a"), nullptr);
}

TEST(LockOrderTest, SccCondensationIsolatesTheCycle) {
  TestWorld world;
  GlobalLock c = world.sim->DefineStaticLock("global_c", LockType::kSpinlock);
  GlobalLock d = world.sim->DefineStaticLock("global_d", LockType::kSpinlock);
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    auto pair = [&](const GlobalLock& x, const GlobalLock& y) {
      world.sim->LockGlobal(x, 2);
      world.sim->LockGlobal(y, 3);
      world.sim->UnlockGlobal(y, 4);
      world.sim->UnlockGlobal(x, 5);
    };
    pair(world.global_a, world.global_b);
    pair(world.global_b, c);
    pair(c, world.global_a);
    pair(c, d);  // d hangs off the cycle, acyclically.
  }
  LockOrderGraph graph = BuildGraph(world);
  auto sccs = graph.StronglyConnectedComponents();
  // Only the nontrivial component is reported: {a, b, c}, not {d}.
  ASSERT_EQ(sccs.size(), 1u);
  EXPECT_EQ(sccs[0].size(), 3u);
  EXPECT_TRUE(std::is_sorted(sccs[0].begin(), sccs[0].end()));
}

TEST(LockOrderTest, CyclePathsCarryFullEdges) {
  TestWorld world;
  GlobalLock c = world.sim->DefineStaticLock("global_c", LockType::kSpinlock);
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    auto pair = [&](const GlobalLock& x, const GlobalLock& y, uint32_t line) {
      world.sim->LockGlobal(x, line);
      world.sim->LockGlobal(y, line + 1);
      world.sim->UnlockGlobal(y, line + 2);
      world.sim->UnlockGlobal(x, line + 3);
    };
    for (int i = 0; i < 4; ++i) {
      pair(world.global_a, world.global_b, 10);
    }
    pair(world.global_b, c, 20);
    pair(c, world.global_a, 30);
  }
  LockOrderGraph graph = BuildGraph(world);
  auto paths = graph.FindCyclePaths();
  ASSERT_EQ(paths.size(), 1u);
  const LockOrderCyclePath& path = paths[0];
  ASSERT_EQ(path.edges.size(), 3u);
  EXPECT_EQ(path.min_support, 1u);  // The rare direction bounds the path.
  for (size_t i = 0; i < path.edges.size(); ++i) {
    const LockOrderEdge& edge = path.edges[i];
    const LockOrderEdge& next = path.edges[(i + 1) % path.edges.size()];
    EXPECT_EQ(edge.to.ToString(), next.from.ToString());
    EXPECT_GT(edge.example_line, 0u);       // Example acquisition site.
    EXPECT_NE(edge.witness_from.addr, 0u);  // Instance witnesses resolve.
    EXPECT_NE(edge.witness_to.addr, 0u);
  }
  // The a->b edge kept its first-observation support.
  const LockOrderEdge* ab = FindEdge(graph, "global_a", "global_b");
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->support, 4u);
  // FindCycles (class-level view) agrees with the path enumeration.
  auto cycles = graph.FindCycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].classes.size(), 3u);
  EXPECT_EQ(cycles[0].min_support, path.min_support);
}

TEST(LockOrderTest, CyclePathBoundsRespected) {
  // Two independent 2-cycles: max_paths = 1 must cap the enumeration.
  TestWorld world;
  GlobalLock c = world.sim->DefineStaticLock("global_c", LockType::kSpinlock);
  GlobalLock d = world.sim->DefineStaticLock("global_d", LockType::kSpinlock);
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    auto pair = [&](const GlobalLock& x, const GlobalLock& y) {
      world.sim->LockGlobal(x, 2);
      world.sim->LockGlobal(y, 3);
      world.sim->UnlockGlobal(y, 4);
      world.sim->UnlockGlobal(x, 5);
    };
    pair(world.global_a, world.global_b);
    pair(world.global_b, world.global_a);
    pair(c, d);
    pair(d, c);
  }
  LockOrderGraph graph = BuildGraph(world);
  EXPECT_EQ(graph.FindCyclePaths(6, 64).size(), 2u);
  EXPECT_EQ(graph.FindCyclePaths(6, 1).size(), 1u);
}

TEST(LockOrderTest, WitnessToStringFormatsRanges) {
  LockWitness plain;
  plain.addr = 0x1234;
  EXPECT_EQ(plain.ToString(), "0x1234");
  LockWitness ranged;
  ranged.addr = 0x1234;
  ranged.has_range = true;
  ranged.range_start = 0x10000;
  ranged.range_end = 0x14000;
  EXPECT_EQ(ranged.ToString(), "0x1234[0x10000,0x14000)");
}

TEST(LockOrderTest, ReportMentionsEdgesAndConflicts) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->LockGlobal(world.global_b, 3);
    world.sim->UnlockGlobal(world.global_b, 4);
    world.sim->UnlockGlobal(world.global_a, 5);
  }
  Database db;
  world.Import(&db);
  LockOrderGraph graph = LockOrderGraph::Build(db, *world.registry);
  std::string report = graph.Report(db);
  EXPECT_NE(report.find("global_a"), std::string::npos);
  EXPECT_NE(report.find("ordering conflicts"), std::string::npos);
  EXPECT_NE(report.find("t.c:3"), std::string::npos);  // Example location.
}

}  // namespace
}  // namespace lockdoc
