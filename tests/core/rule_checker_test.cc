#include "src/core/rule_checker.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

// World where `data` is written 9 times under the spinlock and once without.
TestWorld MakeMostlyLockedWorld() {
  TestWorld world;
  FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
  ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
  for (int i = 0; i < 9; ++i) {
    world.sim->Lock(obj, world.spin, 2);
    world.sim->Write(obj, world.data, 3);
    world.sim->Unlock(obj, world.spin, 4);
  }
  world.sim->Write(obj, world.data, 5);  // One lockless write.
  world.sim->Destroy(obj, 6);
  return world;
}

LockingRule MakeRule(const std::string& member, AccessType access, const std::string& locks) {
  LockingRule rule;
  rule.member = {"widget", "", member};
  rule.access = access;
  rule.locks = ParseLockSeq(locks).value();
  return rule;
}

TEST(RuleCheckerTest, AmbivalentRule) {
  TestWorld world = MakeMostlyLockedWorld();
  ObservationStore store = world.Extract();
  RuleChecker checker(world.registry.get(), &store);
  RuleCheckResult result =
      checker.Check(MakeRule("data", AccessType::kWrite, "ES(w_lock in widget)"));
  EXPECT_EQ(result.verdict, RuleVerdict::kAmbivalent);
  EXPECT_EQ(result.total, 10u);
  EXPECT_EQ(result.sa, 9u);
  EXPECT_DOUBLE_EQ(result.sr, 0.9);
}

TEST(RuleCheckerTest, CorrectRule) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Lock(obj, world.spin, 2);
    world.sim->Write(obj, world.extra, 3);
    world.sim->Unlock(obj, world.spin, 4);
    world.sim->Destroy(obj, 5);
  }
  ObservationStore store = world.Extract();
  RuleChecker checker(world.registry.get(), &store);
  RuleCheckResult result =
      checker.Check(MakeRule("extra", AccessType::kWrite, "ES(w_lock in widget)"));
  EXPECT_EQ(result.verdict, RuleVerdict::kCorrect);
  EXPECT_DOUBLE_EQ(result.sr, 1.0);
}

TEST(RuleCheckerTest, IncorrectRule) {
  TestWorld world = MakeMostlyLockedWorld();
  ObservationStore store = world.Extract();
  RuleChecker checker(world.registry.get(), &store);
  RuleCheckResult result =
      checker.Check(MakeRule("data", AccessType::kWrite, "global_b"));
  EXPECT_EQ(result.verdict, RuleVerdict::kIncorrect);
  EXPECT_EQ(result.sa, 0u);
}

TEST(RuleCheckerTest, UnobservedCases) {
  TestWorld world = MakeMostlyLockedWorld();
  ObservationStore store = world.Extract();
  RuleChecker checker(world.registry.get(), &store);
  // Never-read member.
  EXPECT_EQ(checker.Check(MakeRule("data", AccessType::kRead, "global_a")).verdict,
            RuleVerdict::kUnobserved);
  // Unknown member / type names degrade to unobserved, not a crash.
  LockingRule unknown_member = MakeRule("no_such_member", AccessType::kWrite, "global_a");
  EXPECT_EQ(checker.Check(unknown_member).verdict, RuleVerdict::kUnobserved);
  LockingRule unknown_type = unknown_member;
  unknown_type.member.type_name = "no_such_type";
  EXPECT_EQ(checker.Check(unknown_type).verdict, RuleVerdict::kUnobserved);
}

TEST(RuleCheckerTest, NoLockRuleIsTriviallyCorrectWhenObserved) {
  TestWorld world = MakeMostlyLockedWorld();
  ObservationStore store = world.Extract();
  RuleChecker checker(world.registry.get(), &store);
  RuleCheckResult result = checker.Check(MakeRule("data", AccessType::kWrite, "no lock"));
  EXPECT_EQ(result.verdict, RuleVerdict::kCorrect);
}

TEST(RuleCheckerTest, SubclassScoping) {
  TestWorld world;
  SubclassId red = world.registry->RegisterSubclass(world.type, "red");
  SubclassId blue = world.registry->RegisterSubclass(world.type, "blue");
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef r = world.sim->Create(world.type, red, 1);
    ObjectRef b = world.sim->Create(world.type, blue, 2);
    // red instances are locked, blue are not.
    world.sim->Lock(r, world.spin, 3);
    world.sim->Write(r, world.data, 4);
    world.sim->Unlock(r, world.spin, 5);
    world.sim->Write(b, world.data, 6);
    world.sim->Destroy(r, 7);
    world.sim->Destroy(b, 8);
  }
  ObservationStore store = world.Extract();
  RuleChecker checker(world.registry.get(), &store);

  LockingRule rule = MakeRule("data", AccessType::kWrite, "ES(w_lock in widget)");
  rule.member.subclass = "red";
  EXPECT_EQ(checker.Check(rule).verdict, RuleVerdict::kCorrect);
  rule.member.subclass = "blue";
  EXPECT_EQ(checker.Check(rule).verdict, RuleVerdict::kIncorrect);
  rule.member.subclass = "";  // Union of all subclasses: ambivalent.
  EXPECT_EQ(checker.Check(rule).verdict, RuleVerdict::kAmbivalent);
}

TEST(RuleCheckerTest, SummarizeBucketsByType) {
  TestWorld world = MakeMostlyLockedWorld();
  ObservationStore store = world.Extract();
  RuleChecker checker(world.registry.get(), &store);
  RuleSet rules;
  rules.Add(MakeRule("data", AccessType::kWrite, "ES(w_lock in widget)"));   // ~
  rules.Add(MakeRule("data", AccessType::kWrite, "global_b"));               // #
  rules.Add(MakeRule("data", AccessType::kRead, "global_a"));                // unobserved
  auto summaries = RuleChecker::Summarize(checker.CheckAll(rules));
  ASSERT_EQ(summaries.size(), 1u);
  EXPECT_EQ(summaries[0].type_name, "widget");
  EXPECT_EQ(summaries[0].documented, 3u);
  EXPECT_EQ(summaries[0].unobserved, 1u);
  EXPECT_EQ(summaries[0].observed, 2u);
  EXPECT_EQ(summaries[0].ambivalent, 1u);
  EXPECT_EQ(summaries[0].incorrect, 1u);
  EXPECT_DOUBLE_EQ(summaries[0].ambivalent_pct(), 50.0);
}

TEST(RuleCheckerTest, VerdictSymbols) {
  EXPECT_EQ(RuleVerdictSymbol(RuleVerdict::kCorrect), "!");
  EXPECT_EQ(RuleVerdictSymbol(RuleVerdict::kAmbivalent), "~");
  EXPECT_EQ(RuleVerdictSymbol(RuleVerdict::kIncorrect), "#");
  EXPECT_EQ(RuleVerdictSymbol(RuleVerdict::kUnobserved), "-");
}

}  // namespace
}  // namespace lockdoc
