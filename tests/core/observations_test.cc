// Folding, write-over-read, and ES/EO lock classification (Sec. 4.2, 5.4).
#include "src/core/observations.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

TEST(ObservationsTest, RepeatedAccessesFoldIntoOneObservation) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    for (int i = 0; i < 5; ++i) {
      world.sim->Write(obj, world.data, 3);
    }
    world.sim->UnlockGlobal(world.global_a, 4);
    world.sim->Destroy(obj, 5);
  }
  ObservationStore store = world.Extract();
  const auto& groups = store.GroupsFor(world.Key(world.data));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].n_writes, 5u);
  EXPECT_EQ(groups[0].seqs.size(), 5u);
  EXPECT_EQ(store.CountObservations(world.Key(world.data), AccessType::kWrite), 1u);
}

TEST(ObservationsTest, WriteOverReadFoldsMixedGroups) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Read(obj, world.data, 3);
    world.sim->Write(obj, world.data, 4);
    world.sim->UnlockGlobal(world.global_a, 5);
    world.sim->Destroy(obj, 6);
  }
  ObservationStore store = world.Extract();
  EXPECT_EQ(store.CountObservations(world.Key(world.data), AccessType::kWrite), 1u);
  EXPECT_EQ(store.CountObservations(world.Key(world.data), AccessType::kRead), 0u);
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_EQ(group.effective(), AccessType::kWrite);
  EXPECT_EQ(group.n_reads, 1u);
}

TEST(ObservationsTest, SameMemberDifferentAllocationsAreSeparateObservations) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef a = world.sim->Create(world.type, kNoSubclass, 1);
    ObjectRef b = world.sim->Create(world.type, kNoSubclass, 2);
    world.sim->LockGlobal(world.global_a, 3);
    world.sim->Write(a, world.data, 4);
    world.sim->Write(b, world.data, 5);
    world.sim->UnlockGlobal(world.global_a, 6);
    world.sim->Destroy(a, 7);
    world.sim->Destroy(b, 8);
  }
  ObservationStore store = world.Extract();
  EXPECT_EQ(store.CountObservations(world.Key(world.data), AccessType::kWrite), 2u);
}

TEST(ObservationsTest, EmbeddedSameClassification) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Lock(obj, world.spin, 2);
    world.sim->Write(obj, world.data, 3);
    world.sim->Unlock(obj, world.spin, 4);
    world.sim->Destroy(obj, 5);
  }
  ObservationStore store = world.Extract();
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_EQ(LockSeqToString(store.seq(group.lockseq_id)), "ES(w_lock in widget)");
}

TEST(ObservationsTest, EmbeddedOtherClassification) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef a = world.sim->Create(world.type, kNoSubclass, 1);
    ObjectRef b = world.sim->Create(world.type, kNoSubclass, 2);
    world.sim->Lock(a, world.spin, 3);
    world.sim->Write(b, world.data, 4);  // b's member under a's lock.
    world.sim->Unlock(a, world.spin, 5);
    world.sim->Destroy(a, 6);
    world.sim->Destroy(b, 7);
  }
  ObservationStore store = world.Extract();
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_EQ(LockSeqToString(store.seq(group.lockseq_id)), "EO(w_lock in widget)");
}

TEST(ObservationsTest, GlobalAndOrderPreserved) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Lock(obj, world.spin, 3);
    world.sim->Write(obj, world.data, 4);
    world.sim->Unlock(obj, world.spin, 5);
    world.sim->UnlockGlobal(world.global_a, 6);
    world.sim->Destroy(obj, 7);
  }
  ObservationStore store = world.Extract();
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_EQ(LockSeqToString(store.seq(group.lockseq_id)),
            "global_a -> ES(w_lock in widget)");
}

TEST(ObservationsTest, LockFreeAccessHasEmptySequence) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Read(obj, world.data, 2);
    world.sim->Destroy(obj, 3);
  }
  ObservationStore store = world.Extract();
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_TRUE(store.seq(group.lockseq_id).empty());
  EXPECT_EQ(group.effective(), AccessType::kRead);
}

TEST(ObservationsTest, SeqInterningDeduplicates) {
  ObservationStore store;
  LockSeq seq = {LockClass::Global("x")};
  EXPECT_EQ(store.InternSeq(seq), store.InternSeq(seq));
  EXPECT_EQ(store.distinct_seqs(), 1u);
  EXPECT_NE(store.InternSeq({LockClass::Global("y")}), store.InternSeq(seq));
}

TEST(ObservationsTest, FilteredAccessesProduceNoObservations) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Write(obj, world.banned, 2);
    world.sim->AtomicWrite(obj, world.atomic, 3);
    world.sim->Destroy(obj, 4);
  }
  ObservationStore store = world.Extract();
  EXPECT_TRUE(store.GroupsFor(world.Key(world.banned)).empty());
  EXPECT_TRUE(store.GroupsFor(world.Key(world.atomic)).empty());
}

TEST(ObservationsTest, ResumedTransactionFoldsIntoItsOriginalGroup) {
  // Regression for the open-group eviction: after a nested lock is released,
  // the enclosing transaction resumes under its original id, so a later
  // access must fold into the group created before the nesting — eviction
  // keyed on the *nested* transaction's end must not drop it.
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Write(obj, world.data, 3);   // Group in txn a.
    world.sim->Lock(obj, world.spin, 4);
    world.sim->Write(obj, world.data, 5);   // Group in nested txn.
    world.sim->Unlock(obj, world.spin, 6);  // Nested txn ends; txn a resumes.
    world.sim->Write(obj, world.data, 7);   // Must fold into the first group.
    world.sim->UnlockGlobal(world.global_a, 8);
    world.sim->Destroy(obj, 9);
  }
  ObservationStore store = world.Extract();
  const auto& groups = store.GroupsFor(world.Key(world.data));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].n_writes, 2u);  // Accesses at seq 3 and 7 folded.
  EXPECT_EQ(groups[1].n_writes, 1u);  // The nested access.
  EXPECT_EQ(store.seq(groups[0].lockseq_id).size(), 1u);
  EXPECT_EQ(store.seq(groups[1].lockseq_id).size(), 2u);
}

void ExpectStoresIdentical(const ObservationStore& a, const ObservationStore& b) {
  ASSERT_EQ(a.distinct_seqs(), b.distinct_seqs());
  for (uint32_t id = 0; id < a.distinct_seqs(); ++id) {
    EXPECT_EQ(a.seq(id), b.seq(id)) << "seq id " << id;
  }
  ASSERT_EQ(a.groups().size(), b.groups().size());
  auto it_b = b.groups().begin();
  for (const auto& [key, groups_a] : a.groups()) {
    ASSERT_TRUE(key == it_b->first);
    const auto& groups_b = it_b->second;
    ASSERT_EQ(groups_a.size(), groups_b.size());
    for (size_t i = 0; i < groups_a.size(); ++i) {
      EXPECT_EQ(groups_a[i].lockseq_id, groups_b[i].lockseq_id);
      EXPECT_EQ(groups_a[i].txn_id, groups_b[i].txn_id);
      EXPECT_EQ(groups_a[i].alloc_id, groups_b[i].alloc_id);
      EXPECT_EQ(groups_a[i].n_reads, groups_b[i].n_reads);
      EXPECT_EQ(groups_a[i].n_writes, groups_b[i].n_writes);
      EXPECT_EQ(groups_a[i].seqs, groups_b[i].seqs);
    }
    ++it_b;
  }
}

// A two-type world for the overlap filter: a "space" owning a range lock
// and "region" objects allocated with ground-truth spans.
struct RangeWorld {
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
  std::unique_ptr<SimKernel> sim;
  TypeId space = kInvalidTypeId;
  TypeId region = kInvalidTypeId;
  MemberIndex r_lock = kInvalidMember;
  MemberIndex data = kInvalidMember;

  RangeWorld() {
    registry = std::make_unique<TypeRegistry>();
    auto space_layout = std::make_unique<TypeLayout>("space");
    r_lock = space_layout->AddLockMember("r_lock", LockType::kRangeLock);
    space = registry->Register(std::move(space_layout));
    auto region_layout = std::make_unique<TypeLayout>("region");
    data = region_layout->AddMember("data", 8);
    region = registry->Register(std::move(region_layout));
    sim = std::make_unique<SimKernel>(&trace, registry.get());
  }

  ObservationStore Extract() {
    Database db;
    TraceImporter importer(registry.get(), FilterConfig::Defaults());
    importer.Import(trace, &db);
    return ExtractObservations(db, *registry);
  }

  MemberObsKey RegionKey() const {
    MemberObsKey key;
    key.type = region;
    key.subclass = kNoSubclass;
    key.member = data;
    return key;
  }
};

TEST(ObservationsTest, OverlappingRangeHoldCoversAccess) {
  RangeWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef space = world.sim->Create(world.space, kNoSubclass, 1);
    ObjectRef region =
        world.sim->CreateWithSpan(world.region, kNoSubclass, 0x1000, 0x2000, 2);
    world.sim->AcquireRange(space, world.r_lock, 0x1000, 0x2000, 3);
    world.sim->Write(region, world.data, 4);
    world.sim->ReleaseRange(space, world.r_lock, 0x1000, 0x2000, 5);
    world.sim->Destroy(region, 6);
    world.sim->Destroy(space, 7);
  }
  ObservationStore store = world.Extract();
  const auto& groups = store.GroupsFor(world.RegionKey());
  ASSERT_EQ(groups.size(), 1u);
  const LockSeq& held = store.seq(groups[0].lockseq_id);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].ToString(), "EO(r_lock in space)");
}

TEST(ObservationsTest, NonOverlappingRangeHoldDoesNotCover) {
  RangeWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef space = world.sim->Create(world.space, kNoSubclass, 1);
    ObjectRef region =
        world.sim->CreateWithSpan(world.region, kNoSubclass, 0x1000, 0x2000, 2);
    // Held over a disjoint span: covers nothing of the region, so the
    // access observes as lock-free rather than as a (false) compliance.
    world.sim->AcquireRange(space, world.r_lock, 0x5000, 0x6000, 3);
    world.sim->Write(region, world.data, 4);
    world.sim->ReleaseRange(space, world.r_lock, 0x5000, 0x6000, 5);
    world.sim->Destroy(region, 6);
    world.sim->Destroy(space, 7);
  }
  ObservationStore store = world.Extract();
  const auto& groups = store.GroupsFor(world.RegionKey());
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(store.seq(groups[0].lockseq_id).empty());
}

TEST(ObservationsTest, AdjacentRangeHoldDoesNotCover) {
  RangeWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef space = world.sim->Create(world.space, kNoSubclass, 1);
    ObjectRef region =
        world.sim->CreateWithSpan(world.region, kNoSubclass, 0x1000, 0x2000, 2);
    world.sim->AcquireRange(space, world.r_lock, 0x2000, 0x3000, 3);  // Touches at 0x2000.
    world.sim->Write(region, world.data, 4);
    world.sim->ReleaseRange(space, world.r_lock, 0x2000, 0x3000, 5);
    world.sim->Destroy(region, 6);
    world.sim->Destroy(space, 7);
  }
  ObservationStore store = world.Extract();
  const auto& groups = store.GroupsFor(world.RegionKey());
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(store.seq(groups[0].lockseq_id).empty());  // Half-open spans: no overlap.
}

TEST(ObservationsTest, SpanlessObjectCoveredByAnyRangeHold) {
  RangeWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef space = world.sim->Create(world.space, kNoSubclass, 1);
    ObjectRef region = world.sim->Create(world.region, kNoSubclass, 2);  // No span.
    world.sim->AcquireRange(space, world.r_lock, 0x5000, 0x6000, 3);
    world.sim->Write(region, world.data, 4);
    world.sim->ReleaseRange(space, world.r_lock, 0x5000, 0x6000, 5);
    world.sim->Destroy(region, 6);
    world.sim->Destroy(space, 7);
  }
  ObservationStore store = world.Extract();
  const auto& groups = store.GroupsFor(world.RegionKey());
  ASSERT_EQ(groups.size(), 1u);
  // Conservative: an object without a recorded span is covered by every
  // hold of the range lock.
  const LockSeq& held = store.seq(groups[0].lockseq_id);
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].ToString(), "EO(r_lock in space)");
}

TEST(ObservationsTest, ParallelExtractionMatchesSerialExactly) {
  // Interned ids, group order, and every group field must be identical
  // whether classification runs inline or across a pool.
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    for (int round = 0; round < 40; ++round) {
      ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
      world.sim->LockGlobal(world.global_a, 2);
      world.sim->Write(obj, world.data, 3);
      world.sim->Lock(obj, round % 2 == 0 ? world.spin : world.mutex, 4);
      world.sim->Read(obj, world.extra, 5);
      world.sim->Unlock(obj, round % 2 == 0 ? world.spin : world.mutex, 6);
      world.sim->UnlockGlobal(world.global_a, 7);
      world.sim->Read(obj, world.data, 8);  // Lock-free span.
      world.sim->Destroy(obj, 9);
    }
  }
  Database db;
  world.Import(&db);
  ObservationStore serial = ExtractObservations(db, *world.registry);
  for (size_t threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    ObservationStore parallel = ExtractObservations(db, *world.registry, &pool);
    ExpectStoresIdentical(serial, parallel);
  }
}

}  // namespace
}  // namespace lockdoc
