// Folding, write-over-read, and ES/EO lock classification (Sec. 4.2, 5.4).
#include "src/core/observations.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

TEST(ObservationsTest, RepeatedAccessesFoldIntoOneObservation) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    for (int i = 0; i < 5; ++i) {
      world.sim->Write(obj, world.data, 3);
    }
    world.sim->UnlockGlobal(world.global_a, 4);
    world.sim->Destroy(obj, 5);
  }
  ObservationStore store = world.Extract();
  const auto& groups = store.GroupsFor(world.Key(world.data));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].n_writes, 5u);
  EXPECT_EQ(groups[0].seqs.size(), 5u);
  EXPECT_EQ(store.CountObservations(world.Key(world.data), AccessType::kWrite), 1u);
}

TEST(ObservationsTest, WriteOverReadFoldsMixedGroups) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Read(obj, world.data, 3);
    world.sim->Write(obj, world.data, 4);
    world.sim->UnlockGlobal(world.global_a, 5);
    world.sim->Destroy(obj, 6);
  }
  ObservationStore store = world.Extract();
  EXPECT_EQ(store.CountObservations(world.Key(world.data), AccessType::kWrite), 1u);
  EXPECT_EQ(store.CountObservations(world.Key(world.data), AccessType::kRead), 0u);
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_EQ(group.effective(), AccessType::kWrite);
  EXPECT_EQ(group.n_reads, 1u);
}

TEST(ObservationsTest, SameMemberDifferentAllocationsAreSeparateObservations) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef a = world.sim->Create(world.type, kNoSubclass, 1);
    ObjectRef b = world.sim->Create(world.type, kNoSubclass, 2);
    world.sim->LockGlobal(world.global_a, 3);
    world.sim->Write(a, world.data, 4);
    world.sim->Write(b, world.data, 5);
    world.sim->UnlockGlobal(world.global_a, 6);
    world.sim->Destroy(a, 7);
    world.sim->Destroy(b, 8);
  }
  ObservationStore store = world.Extract();
  EXPECT_EQ(store.CountObservations(world.Key(world.data), AccessType::kWrite), 2u);
}

TEST(ObservationsTest, EmbeddedSameClassification) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Lock(obj, world.spin, 2);
    world.sim->Write(obj, world.data, 3);
    world.sim->Unlock(obj, world.spin, 4);
    world.sim->Destroy(obj, 5);
  }
  ObservationStore store = world.Extract();
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_EQ(LockSeqToString(store.seq(group.lockseq_id)), "ES(w_lock in widget)");
}

TEST(ObservationsTest, EmbeddedOtherClassification) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef a = world.sim->Create(world.type, kNoSubclass, 1);
    ObjectRef b = world.sim->Create(world.type, kNoSubclass, 2);
    world.sim->Lock(a, world.spin, 3);
    world.sim->Write(b, world.data, 4);  // b's member under a's lock.
    world.sim->Unlock(a, world.spin, 5);
    world.sim->Destroy(a, 6);
    world.sim->Destroy(b, 7);
  }
  ObservationStore store = world.Extract();
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_EQ(LockSeqToString(store.seq(group.lockseq_id)), "EO(w_lock in widget)");
}

TEST(ObservationsTest, GlobalAndOrderPreserved) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Lock(obj, world.spin, 3);
    world.sim->Write(obj, world.data, 4);
    world.sim->Unlock(obj, world.spin, 5);
    world.sim->UnlockGlobal(world.global_a, 6);
    world.sim->Destroy(obj, 7);
  }
  ObservationStore store = world.Extract();
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_EQ(LockSeqToString(store.seq(group.lockseq_id)),
            "global_a -> ES(w_lock in widget)");
}

TEST(ObservationsTest, LockFreeAccessHasEmptySequence) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Read(obj, world.data, 2);
    world.sim->Destroy(obj, 3);
  }
  ObservationStore store = world.Extract();
  const auto& group = store.GroupsFor(world.Key(world.data))[0];
  EXPECT_TRUE(store.seq(group.lockseq_id).empty());
  EXPECT_EQ(group.effective(), AccessType::kRead);
}

TEST(ObservationsTest, SeqInterningDeduplicates) {
  ObservationStore store;
  LockSeq seq = {LockClass::Global("x")};
  EXPECT_EQ(store.InternSeq(seq), store.InternSeq(seq));
  EXPECT_EQ(store.distinct_seqs(), 1u);
  EXPECT_NE(store.InternSeq({LockClass::Global("y")}), store.InternSeq(seq));
}

TEST(ObservationsTest, FilteredAccessesProduceNoObservations) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Write(obj, world.banned, 2);
    world.sim->AtomicWrite(obj, world.atomic, 3);
    world.sim->Destroy(obj, 4);
  }
  ObservationStore store = world.Extract();
  EXPECT_TRUE(store.GroupsFor(world.Key(world.banned)).empty());
  EXPECT_TRUE(store.GroupsFor(world.Key(world.atomic)).empty());
}

}  // namespace
}  // namespace lockdoc
