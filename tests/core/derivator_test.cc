// Hypothesis enumeration, support metrics, and winner selection
// (paper Sec. 4.3 / 5.4) — including the exact Tab. 2 numbers.
#include "src/core/derivator.h"

#include <gtest/gtest.h>

#include "src/core/clock_example.h"
#include "src/core/pipeline.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

// Builds a store with the given (sequence, count) observations for one key.
ObservationStore MakeStore(const std::vector<std::pair<LockSeq, uint64_t>>& observations,
                           MemberObsKey* key_out, AccessType access = AccessType::kWrite) {
  ObservationStore store;
  MemberObsKey key;
  key.type = 1;
  key.subclass = kNoSubclass;
  key.member = 0;
  *key_out = key;
  auto& groups = store.MutableGroups(key);
  uint64_t txn = 0;
  for (const auto& [seq, count] : observations) {
    uint32_t seq_id = store.InternSeq(seq);
    for (uint64_t i = 0; i < count; ++i) {
      ObservationGroup group;
      group.lockseq_id = seq_id;
      group.txn_id = txn++;
      group.alloc_id = 0;
      if (access == AccessType::kWrite) {
        group.n_writes = 1;
      } else {
        group.n_reads = 1;
      }
      groups.push_back(std::move(group));
    }
  }
  return store;
}

const LockClass kA = LockClass::Global("a");
const LockClass kB = LockClass::Global("b");
const LockClass kC = LockClass::Global("c");

TEST(EnumerateSubsequencesTest, PowersetOfDistinctLocks) {
  LockSeq seq = {kA, kB, kC};
  auto subsequences = EnumerateSubsequences(seq, 10);
  // 2^3 subsequences including the empty one.
  EXPECT_EQ(subsequences.size(), 8u);
}

TEST(EnumerateSubsequencesTest, DuplicatesDeduplicated) {
  LockSeq seq = {kA, kA};
  auto subsequences = EnumerateSubsequences(seq, 10);
  // {}, {a}, {a,a} — the two single-a subsequences collapse.
  EXPECT_EQ(subsequences.size(), 3u);
}

TEST(EnumerateSubsequencesTest, BoundedFallbackForLongSequences) {
  LockSeq seq;
  for (int i = 0; i < 12; ++i) {
    seq.push_back(LockClass::Global(StrFormat("l%d", i)));
  }
  auto subsequences = EnumerateSubsequences(seq, 10);
  // Singles + ordered pairs + prefixes + empty; far below 2^12.
  EXPECT_LT(subsequences.size(), 200u);
  // The full sequence must be included (it is the longest prefix).
  EXPECT_NE(std::find(subsequences.begin(), subsequences.end(), seq), subsequences.end());
}

TEST(EnumerateSubsequencesTest, SixtyFourLocksWithRaisedLimitDoesNotAbort) {
  // Regression: a 64-deep sequence with max_locks raised past it used to hit
  // the 1ULL << 64 overflow CHECK and abort. It must clamp into the bounded
  // fallback instead.
  LockSeq seq;
  for (int i = 0; i < 64; ++i) {
    seq.push_back(LockClass::Global(StrFormat("deep%d", i)));
  }
  auto subsequences = EnumerateSubsequences(seq, 100);
  EXPECT_GE(subsequences.size(), 64u);           // At least every single.
  EXPECT_LT(subsequences.size(), 64u * 64u);     // Far below any powerset.
  EXPECT_NE(std::find(subsequences.begin(), subsequences.end(), seq), subsequences.end());
}

TEST(EnumerateSubsequencesTest, BoundedFallbackEmitsMultiplicityRuns) {
  // Regression: the bounded fallback used to drop k-fold repeats of one
  // class unless they happened to form a prefix. A range lock held over
  // three spans inside one group must still yield {a,a,a} as a candidate.
  LockSeq seq;
  seq.push_back(kB);  // Non-prefix position for the repeats.
  for (int i = 0; i < 3; ++i) {
    seq.push_back(kA);
  }
  for (int i = 0; i < 10; ++i) {
    seq.push_back(LockClass::Global(StrFormat("pad%d", i)));
  }
  auto subsequences = EnumerateSubsequences(seq, 10);  // 14 locks -> fallback.
  LockSeq triple = {kA, kA, kA};
  EXPECT_NE(std::find(subsequences.begin(), subsequences.end(), triple),
            subsequences.end());
  // Runs of 1 and 2 come from the singles / ordered-pairs passes.
  LockSeq pair = {kA, kA};
  EXPECT_NE(std::find(subsequences.begin(), subsequences.end(), pair), subsequences.end());
  EXPECT_NE(std::find(subsequences.begin(), subsequences.end(), LockSeq{kA}),
            subsequences.end());
}

TEST(EnumerateSubsequencesTest, BoundedFallbackStaysBounded) {
  // The multiplicity-run extension must not reintroduce quadratic blowup:
  // the fallback remains O(n^2) candidates.
  LockSeq seq;
  for (int i = 0; i < 12; ++i) {
    seq.push_back(LockClass::Global(StrFormat("l%d", i % 4)));  // Heavy duplication.
  }
  auto subsequences = EnumerateSubsequences(seq, 10);
  EXPECT_LT(subsequences.size(), 200u);
  // Each of the four classes repeats three times; every triple run appears.
  for (int c = 0; c < 4; ++c) {
    LockClass cls = LockClass::Global(StrFormat("l%d", c));
    LockSeq run = {cls, cls, cls};
    EXPECT_NE(std::find(subsequences.begin(), subsequences.end(), run), subsequences.end());
  }
}

TEST(DerivatorTest, DeepLockSequenceWithRaisedLimitDerives) {
  // End-to-end version of the 64-lock regression: derivation over a store
  // whose only observation holds 64 locks, with max_subset_locks raised.
  LockSeq deep;
  for (int i = 0; i < 64; ++i) {
    deep.push_back(LockClass::Global(StrFormat("deep%d", i)));
  }
  MemberObsKey key;
  ObservationStore store = MakeStore({{deep, 3}}, &key);
  DerivatorOptions options;
  options.max_subset_locks = 128;
  RuleDerivator derivator(options);
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  ASSERT_TRUE(result.winner.has_value());
  EXPECT_EQ(result.winner->locks, deep);  // The full sequence still wins.
  EXPECT_EQ(result.winner->sa, 3u);
}

TEST(DerivatorTest, UnobservedMemberYieldsNoWinner) {
  MemberObsKey key;
  ObservationStore store = MakeStore({}, &key);
  RuleDerivator derivator;
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  EXPECT_FALSE(result.observed());
  EXPECT_FALSE(result.winner.has_value());
}

TEST(DerivatorTest, ConsistentLockingWinsOverNoLock) {
  MemberObsKey key;
  ObservationStore store = MakeStore({{{kA}, 100}}, &key);
  RuleDerivator derivator;
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  ASSERT_TRUE(result.winner.has_value());
  // Both no-lock and {a} have sr=1; ties break toward more locks.
  EXPECT_EQ(result.winner->locks, (LockSeq{kA}));
  EXPECT_EQ(result.winner->sa, 100u);
}

TEST(DerivatorTest, LowestSupportAboveThresholdWins) {
  // 95 of 100 observations hold a->b; 5 only a. The full rule a->b (sr=0.95)
  // beats the sub-rule a (sr=1.0) — the paper's key selection insight.
  MemberObsKey key;
  ObservationStore store = MakeStore({{{kA, kB}, 95}, {{kA}, 5}}, &key);
  RuleDerivator derivator;
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  EXPECT_EQ(result.winner->locks, (LockSeq{kA, kB}));
  EXPECT_DOUBLE_EQ(result.winner->sr, 0.95);
}

TEST(DerivatorTest, BelowThresholdFallsBackToNoLock) {
  // Only 60 % hold the lock: no lock hypothesis clears tac=0.9.
  MemberObsKey key;
  ObservationStore store = MakeStore({{{kA}, 60}, {{}, 40}}, &key);
  RuleDerivator derivator;
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  EXPECT_TRUE(result.winner_is_no_lock());
}

TEST(DerivatorTest, ThresholdBoundaryExactlyAtTac) {
  MemberObsKey key;
  ObservationStore store = MakeStore({{{kA}, 90}, {{}, 10}}, &key);
  DerivatorOptions options;
  options.accept_threshold = 0.9;
  RuleDerivator derivator(options);
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  // sr = 0.9 == tac: acceptable, and lower than no-lock's 1.0.
  EXPECT_EQ(result.winner->locks, (LockSeq{kA}));
}

TEST(DerivatorTest, AccessTypesDerivedIndependently) {
  MemberObsKey key;
  ObservationStore store = MakeStore({{{kA}, 10}}, &key, AccessType::kRead);
  RuleDerivator derivator;
  EXPECT_TRUE(derivator.Derive(store, key, AccessType::kRead).observed());
  EXPECT_FALSE(derivator.Derive(store, key, AccessType::kWrite).observed());
}

TEST(DerivatorTest, OrderingDistinguishedBySupport) {
  // a->b observed; b->a never. Both enumerated with permutations on.
  MemberObsKey key;
  ObservationStore store = MakeStore({{{kA, kB}, 10}}, &key);
  DerivatorOptions options;
  options.enumerate_permutations = true;
  RuleDerivator derivator(options);
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  bool saw_reversed = false;
  for (const Hypothesis& h : result.hypotheses) {
    if (h.locks == (LockSeq{kB, kA})) {
      saw_reversed = true;
      EXPECT_EQ(h.sa, 0u);
    }
  }
  EXPECT_TRUE(saw_reversed);
}

TEST(DerivatorTest, CutoffPrunesReportButKeepsWinner) {
  MemberObsKey key;
  ObservationStore store = MakeStore({{{kA, kB}, 95}, {{kB}, 5}}, &key);
  DerivatorOptions options;
  options.cutoff_threshold = 0.5;
  RuleDerivator derivator(options);
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  for (const Hypothesis& h : result.hypotheses) {
    EXPECT_TRUE(h.sr >= 0.5 || h.locks == result.winner->locks) << LockSeqToString(h.locks);
  }
}

TEST(DerivatorTest, HypothesesComeFromObservedCombinationsOnly) {
  MemberObsKey key;
  ObservationStore store = MakeStore({{{kA}, 5}, {{kB}, 5}}, &key);
  RuleDerivator derivator;
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  // {a,b} was never observed as a combination, so no a->b hypothesis exists.
  for (const Hypothesis& h : result.hypotheses) {
    EXPECT_LT(h.locks.size(), 2u);
  }
}

TEST(DerivatorTest, ReproducesPaperTable2Exactly) {
  ClockExample example = BuildClockExample();
  PipelineOptions options;
  options.derivator.enumerate_permutations = true;
  PipelineResult result = RunPipeline(example.trace, *example.registry, options);

  MemberObsKey key;
  key.type = example.clock_type;
  key.subclass = kNoSubclass;
  key.member = example.minutes;
  RuleDerivator derivator(options.derivator);
  DerivationResult minutes = derivator.Derive(result.snapshot.observations, key, AccessType::kWrite);

  EXPECT_EQ(minutes.total, 17u);
  ASSERT_EQ(minutes.hypotheses.size(), 5u);

  auto support_of = [&](const LockSeq& locks) -> uint64_t {
    for (const Hypothesis& h : minutes.hypotheses) {
      if (h.locks == locks) {
        return h.sa;
      }
    }
    ADD_FAILURE() << "missing hypothesis " << LockSeqToString(locks);
    return 0;
  };
  const LockClass sec = LockClass::Global("sec_lock");
  const LockClass min = LockClass::Global("min_lock");
  EXPECT_EQ(support_of({}), 17u);
  EXPECT_EQ(support_of({sec}), 17u);
  EXPECT_EQ(support_of({min}), 16u);
  EXPECT_EQ(support_of({sec, min}), 16u);
  EXPECT_EQ(support_of({min, sec}), 0u);

  ASSERT_TRUE(minutes.winner.has_value());
  EXPECT_EQ(minutes.winner->locks, (LockSeq{sec, min}));
  EXPECT_NEAR(minutes.winner->sr, 16.0 / 17.0, 1e-9);
}

// Winner-selection laws under random observation mixes.
class WinnerLawTest : public ::testing::TestWithParam<int> {};

TEST_P(WinnerLawTest, WinnerAlwaysClearsThresholdAndExists) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  std::vector<std::pair<LockSeq, uint64_t>> observations;
  size_t kinds = 1 + rng.Below(4);
  for (size_t i = 0; i < kinds; ++i) {
    LockSeq seq;
    size_t depth = rng.Below(4);
    for (size_t d = 0; d < depth; ++d) {
      seq.push_back(LockClass::Global(StrFormat("g%d", static_cast<int>(rng.Below(5)))));
    }
    observations.push_back({seq, 1 + rng.Below(50)});
  }
  MemberObsKey key;
  ObservationStore store = MakeStore(observations, &key);
  DerivatorOptions options;
  options.accept_threshold = 0.7 + rng.NextDouble() * 0.3;
  RuleDerivator derivator(options);
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);

  ASSERT_TRUE(result.winner.has_value());
  EXPECT_GE(result.winner->sr + 1e-12, options.accept_threshold);
  // No acceptable hypothesis has strictly lower support than the winner.
  for (const Hypothesis& h : result.hypotheses) {
    if (h.sr + 1e-12 >= options.accept_threshold) {
      EXPECT_GE(h.sr + 1e-12, result.winner->sr);
    }
  }
  // Support of any hypothesis never exceeds the total.
  for (const Hypothesis& h : result.hypotheses) {
    EXPECT_LE(h.sa, result.total);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WinnerLawTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace lockdoc
