// End-to-end checks of the paper's Sec. 4 running example.
#include "src/core/clock_example.h"

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/core/violation_finder.h"

namespace lockdoc {
namespace {

TEST(ClockExampleTest, SecondsRuleIsSecLock) {
  ClockExample example = BuildClockExample();
  PipelineResult result = RunPipeline(example.trace, *example.registry);
  MemberObsKey key;
  key.type = example.clock_type;
  key.subclass = kNoSubclass;
  key.member = example.seconds;
  RuleDerivator derivator;
  DerivationResult seconds = derivator.Derive(result.snapshot.observations, key, AccessType::kWrite);
  ASSERT_TRUE(seconds.winner.has_value());
  EXPECT_EQ(LockSeqToString(seconds.winner->locks), "sec_lock");
  EXPECT_DOUBLE_EQ(seconds.winner->sr, 1.0);
}

TEST(ClockExampleTest, MinutesWinnerIsFullChainDespiteBug) {
  ClockExample example = BuildClockExample();
  PipelineResult result = RunPipeline(example.trace, *example.registry);
  MemberObsKey key;
  key.type = example.clock_type;
  key.subclass = kNoSubclass;
  key.member = example.minutes;
  RuleDerivator derivator;
  DerivationResult minutes = derivator.Derive(result.snapshot.observations, key, AccessType::kWrite);
  EXPECT_EQ(LockSeqToString(minutes.winner->locks), "sec_lock -> min_lock");
}

TEST(ClockExampleTest, FaultyExecutionDetectedAsViolation) {
  ClockExample example = BuildClockExample();
  PipelineResult result = RunPipeline(example.trace, *example.registry);
  ViolationFinder finder(&result.snapshot.db, example.registry.get(), &result.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(result.rules);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(LockSeqToString(violations[0].held), "sec_lock");
  auto examples = finder.Examples(violations, 1);
  ASSERT_EQ(examples.size(), 1u);
  EXPECT_NE(examples[0].stack.find("clock_tick_buggy"), std::string::npos);
}

TEST(ClockExampleTest, WithoutFaultEverythingIsPerfect) {
  ClockExampleOptions options;
  options.include_faulty_execution = false;
  ClockExample example = BuildClockExample(options);
  PipelineResult result = RunPipeline(example.trace, *example.registry);
  for (const DerivationResult& rule : result.rules) {
    ASSERT_TRUE(rule.winner.has_value());
    EXPECT_DOUBLE_EQ(rule.winner->sr, 1.0);
  }
  ViolationFinder finder(&result.snapshot.db, example.registry.get(), &result.snapshot.observations);
  EXPECT_TRUE(finder.FindAll(result.rules).empty());
}

TEST(ClockExampleTest, MinutesObservationCountMatchesPaper) {
  ClockExample example = BuildClockExample();  // 1000 iterations -> 16 + 1.
  PipelineResult result = RunPipeline(example.trace, *example.registry);
  MemberObsKey key;
  key.type = example.clock_type;
  key.subclass = kNoSubclass;
  key.member = example.minutes;
  EXPECT_EQ(result.snapshot.observations.CountObservations(key, AccessType::kWrite), 17u);
  // All reads of minutes are folded away by write-over-read.
  EXPECT_EQ(result.snapshot.observations.CountObservations(key, AccessType::kRead), 0u);
}

}  // namespace
}  // namespace lockdoc
