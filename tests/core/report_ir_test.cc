// Tests for the structured report IR (src/report/ir.h) and its renderers:
// builder behavior, text byte-compatibility, JSON/HTML golden fixtures, a
// JSON well-formedness + schema-shape check, and the escaping helpers.
#include "src/report/ir.h"

#include <gtest/gtest.h>

#include <string>

#include "src/core/violation_finder.h"
#include "src/report/render.h"
#include "src/report/render_html.h"
#include "src/report/render_json.h"
#include "src/report/render_text.h"
#include "src/util/file_io.h"

namespace lockdoc {
namespace {

std::string TestdataPath(const std::string& name) {
  return std::string(LOCKDOC_TESTDATA_DIR) + "/" + name;
}

// A small deterministic document exercising every node kind, decoration
// skipping, field views, escaping, and both cex-group styles.
ReportDocument MakeFixtureDocument() {
  ReportDocument doc;
  doc.pass = "violations";

  ReportSection& section = AddHeadedSection(doc, "violations", "locking-rule violations");
  ReportNode& table = AddTable(section, "violation-summary",
                               {"Data Type", "Events", "Members", "Contexts"});
  table.table.rows.push_back({"inode:ext4", "42", "3", "5"});
  table.table.rows.push_back({"dentry", "7", "1", "2"});
  AddDecoration(section, "\n");

  CexGroupData group;
  group.member = "inode:ext4.i_size";
  group.access = "w";
  group.rule = "ES(i_lock in inode)";
  group.held = "(none)";
  group.location = "fs/inode.c:507";
  group.stack = "iput <- dput";
  group.events = 42;
  group.rank = 1;
  group.representative_seq = 1234;
  group.frames = {"iput", "dput"};
  group.held_locks.push_back({"EO(i_rwsem in inode)", "exclusive", "fs/namei.c:88"});
  group.nearest_complying.present = true;
  group.nearest_complying.seq = 1200;
  group.nearest_complying.distance = 34;
  group.nearest_complying.location = "fs/inode.c:480";
  group.nearest_complying.stack = "iget <- path_openat";
  group.nearest_complying.held = "ES(i_lock in inode)";
  AddCexGroup(section, group);

  // A second, sparser group: no forensics enrichment, "escape <&>" bait.
  CexGroupData sparse;
  sparse.member = "dentry.d_count \"quoted\"";
  sparse.access = "r";
  sparse.rule = "dcache_lock";
  sparse.held = "<none & nothing>";
  sparse.location = "fs/dcache.c:99";
  sparse.stack = "(no stack)";
  sparse.events = 7;
  sparse.rank = 2;
  AddCexGroup(section, sparse);

  ReportSection& plain = AddSection(doc, "notes");
  ReportNode& note = AddTextNode(plain, "truncation",
                                 "showing 2 of 9 counterexample groups\n");
  note.fields = {{"shown", "2"}, {"total", "9"}};
  return doc;
}

// --- builders ---

TEST(ReportIrTest, BuildersSetKindsAndIds) {
  ReportDocument doc = MakeFixtureDocument();
  EXPECT_EQ(doc.pass, "violations");
  ASSERT_EQ(doc.sections.size(), 2u);
  const ReportSection& section = doc.sections[0];
  EXPECT_TRUE(section.heading);
  EXPECT_EQ(section.title, "locking-rule violations");
  ASSERT_EQ(section.nodes.size(), 4u);
  EXPECT_EQ(section.nodes[0].kind, ReportNodeKind::kTable);
  EXPECT_EQ(section.nodes[0].table.id, "violation-summary");
  EXPECT_EQ(section.nodes[0].id, "violation-summary");
  EXPECT_TRUE(section.nodes[1].decoration);
  EXPECT_EQ(section.nodes[2].kind, ReportNodeKind::kCexGroup);
  EXPECT_FALSE(doc.sections[1].heading);
}

// --- text renderer: the byte-compat anchor ---

TEST(ReportIrTest, HeadingMatchesLegacyBanner) {
  EXPECT_EQ(ReportHeading("trace statistics"),
            "\n== trace statistics "
            "========================================================\n\n");
}

TEST(ReportIrTest, TextRendererEmitsVerbatimTextAndDecoration) {
  ReportDocument doc;
  doc.pass = "check";
  ReportSection& section = AddSection(doc, "rule-check");
  AddTextNode(section, "verdict", "!  inode.i_state w\n");
  AddDecoration(section, "\n");
  EXPECT_EQ(RenderReportText(doc), "!  inode.i_state w\n\n");
}

TEST(ReportIrTest, TextRendererCexGroupStyles) {
  CexGroupData group;
  group.member = "inode.i_size";
  group.access = "w";
  group.rule = "ES(i_lock in inode)";
  group.held = "(none)";
  group.location = "fs/inode.c:507";
  group.stack = "iput <- dput";
  group.events = 42;

  ReportDocument standalone;
  ReportSection& s1 = AddSection(standalone, "violations");
  AddCexGroup(s1, group);
  EXPECT_EQ(RenderReportText(standalone),
            "inode.i_size [w]\n  rule: ES(i_lock in inode)\n  held: (none)\n"
            "  at fs/inode.c:507 (42 events)\n  stack: iput <- dput\n\n");

  group.report_style = true;
  ReportDocument report;
  ReportSection& s2 = AddSection(report, "violations");
  AddCexGroup(s2, group);
  EXPECT_EQ(RenderReportText(report),
            "\ninode.i_size [w]\n  rule: ES(i_lock in inode)\n  held: (none)\n"
            "  at fs/inode.c:507 (42 events)\n  stack: iput <- dput\n");
}

TEST(ReportIrTest, TextRendererLaysOutTables) {
  ReportDocument doc;
  ReportSection& section = AddSection(doc, "s");
  ReportNode& table = AddTable(section, "t", {"A", "Bee"});
  table.table.rows.push_back({"1", "2"});
  std::string text = RenderReportText(doc);
  EXPECT_NE(text.find("A"), std::string::npos);
  EXPECT_NE(text.find("Bee"), std::string::npos);
  EXPECT_NE(text.find("1"), std::string::npos);
  // Header separator line from TextTable.
  EXPECT_NE(text.find("-"), std::string::npos);
}

// --- forensics notes ---

TEST(ReportIrTest, ForensicsNotesReportClippingAndSuppression) {
  ViolationForensics forensics;
  forensics.total_groups = 9;
  forensics.shown_groups = 2;
  forensics.suppressed_groups = 3;
  forensics.suppressed_events = 17;

  ReportDocument doc;
  ReportSection& section = AddSection(doc, "violations");
  AppendForensicsNotes(section, forensics, /*report_style=*/false);
  EXPECT_EQ(RenderReportText(doc),
            "showing 2 of 9 counterexample groups\n"
            "blacklist suppressed 3 counterexample groups (17 events)\n");

  ReportDocument styled;
  ReportSection& styled_section = AddSection(styled, "violations");
  AppendForensicsNotes(styled_section, forensics, /*report_style=*/true);
  EXPECT_EQ(RenderReportText(styled),
            "\nshowing 2 of 9 counterexample groups\n"
            "blacklist suppressed 3 counterexample groups (17 events)\n");
}

TEST(ReportIrTest, ForensicsNotesSilentWhenNothingClipped) {
  ViolationForensics forensics;
  forensics.total_groups = 2;
  forensics.shown_groups = 2;
  ReportDocument doc;
  ReportSection& section = AddSection(doc, "violations");
  AppendForensicsNotes(section, forensics, /*report_style=*/false);
  EXPECT_TRUE(section.nodes.empty());
}

// --- escaping ---

TEST(ReportIrTest, JsonEscape) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("line\nbreak\ttab\r"), "line\\nbreak\\ttab\\r");
  EXPECT_EQ(JsonEscape(std::string("nul\x01")), "nul\\u0001");
}

TEST(ReportIrTest, HtmlEscape) {
  EXPECT_EQ(HtmlEscape("plain"), "plain");
  EXPECT_EQ(HtmlEscape("<a href=\"x\">&'s</a>"),
            "&lt;a href=&quot;x&quot;&gt;&amp;&#39;s&lt;/a&gt;");
}

// --- format plumbing ---

TEST(ReportIrTest, ParseReportFormat) {
  EXPECT_EQ(ParseReportFormat("text"), ReportFormat::kText);
  EXPECT_EQ(ParseReportFormat("json"), ReportFormat::kJson);
  EXPECT_EQ(ParseReportFormat("html"), ReportFormat::kHtml);
  EXPECT_FALSE(ParseReportFormat("xml").has_value());
  EXPECT_FALSE(ParseReportFormat("").has_value());
  EXPECT_FALSE(ParseReportFormat("JSON").has_value());
}

TEST(ReportIrTest, FormatNamesAndExtensions) {
  EXPECT_EQ(ReportFormatName(ReportFormat::kText), std::string("text"));
  EXPECT_EQ(ReportFormatExtension(ReportFormat::kText), std::string("txt"));
  EXPECT_EQ(ReportFormatExtension(ReportFormat::kJson), std::string("json"));
  EXPECT_EQ(ReportFormatExtension(ReportFormat::kHtml), std::string("html"));
}

TEST(ReportIrTest, DispatcherMatchesDirectRenderers) {
  ReportDocument doc = MakeFixtureDocument();
  EXPECT_EQ(RenderReportDocument(doc, ReportFormat::kText), RenderReportText(doc));
  EXPECT_EQ(RenderReportDocument(doc, ReportFormat::kJson), RenderReportJson(doc));
  EXPECT_EQ(RenderReportDocument(doc, ReportFormat::kHtml), RenderReportHtml(doc));
}

// --- a minimal JSON well-formedness check (no external parser) ---

class MiniJson {
 public:
  explicit MiniJson(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\n' ||
                                   text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          return false;
        }
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() && (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '.' || text_[pos_] == 'e' ||
                                   text_[pos_] == 'E' || text_[pos_] == '+' ||
                                   text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      for (;;) {
        SkipWs();
        if (!String()) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return false;
        }
        ++pos_;
        if (!Value()) {
          return false;
        }
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ >= text_.size() || text_[pos_] != '}') {
        return false;
      }
      ++pos_;
      return true;
    }
    if (c == '[') {
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      for (;;) {
        if (!Value()) {
          return false;
        }
        SkipWs();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      if (pos_ >= text_.size() || text_[pos_] != ']') {
        return false;
      }
      ++pos_;
      return true;
    }
    if (c == '"') {
      return String();
    }
    if (c == 't') {
      return Literal("true");
    }
    if (c == 'f') {
      return Literal("false");
    }
    if (c == 'n') {
      return Literal("null");
    }
    return Number();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

TEST(ReportIrTest, JsonRendererIsWellFormedWithSchemaShape) {
  ReportDocument doc = MakeFixtureDocument();
  std::string json = RenderReportJson(doc);
  EXPECT_TRUE(MiniJson(json).Valid()) << json;
  // Schema shape: versioned schema marker, pass name, typed nodes.
  EXPECT_NE(json.find("\"schema\": \"lockdoc-report-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"pass\": \"violations\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"table\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counterexample-group\""), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"text\""), std::string::npos);
  EXPECT_NE(json.find("\"held_locks\""), std::string::npos);
  EXPECT_NE(json.find("\"nearest_complying\""), std::string::npos);
  // The sparse group has no complying access: rendered as null, not omitted.
  EXPECT_NE(json.find("\"nearest_complying\": null"), std::string::npos);
  // Decoration nodes never reach JSON.
  EXPECT_EQ(json.find("\"text\": \"\\n\""), std::string::npos);
}

TEST(ReportIrTest, JsonMatchesGolden) {
  auto golden = ReadFileToString(TestdataPath("report_golden.json"));
  ASSERT_TRUE(golden.ok()) << golden.status().message();
  EXPECT_EQ(RenderReportJson(MakeFixtureDocument()), golden.value());
}

TEST(ReportIrTest, HtmlMatchesGolden) {
  auto golden = ReadFileToString(TestdataPath("report_golden.html"));
  ASSERT_TRUE(golden.ok()) << golden.status().message();
  EXPECT_EQ(RenderReportHtml(MakeFixtureDocument()), golden.value());
}

TEST(ReportIrTest, HtmlRendererEscapesAndStructures) {
  ReportDocument doc = MakeFixtureDocument();
  std::string html = RenderReportHtml(doc);
  EXPECT_EQ(html.rfind("<!DOCTYPE html>", 0), 0u);
  EXPECT_NE(html.find("<section id=\"violations\">"), std::string::npos);
  EXPECT_NE(html.find("<h2>locking-rule violations</h2>"), std::string::npos);
  EXPECT_NE(html.find("class=\"cex-group\""), std::string::npos);
  // The bait strings arrive escaped, never raw.
  EXPECT_EQ(html.find("<none & nothing>"), std::string::npos);
  EXPECT_NE(html.find("&lt;none &amp; nothing&gt;"), std::string::npos);
  // Balanced top-level structure.
  size_t opens = 0, closes = 0;
  for (size_t pos = html.find("<section"); pos != std::string::npos;
       pos = html.find("<section", pos + 1)) {
    ++opens;
  }
  for (size_t pos = html.find("</section>"); pos != std::string::npos;
       pos = html.find("</section>", pos + 1)) {
    ++closes;
  }
  EXPECT_EQ(opens, closes);
  EXPECT_NE(html.find("</body>\n</html>\n"), std::string::npos);
}

}  // namespace
}  // namespace lockdoc
