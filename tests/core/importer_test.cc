// Transaction-reconstruction and filtering semantics (paper Sec. 4.2/5.3).
#include "src/core/importer.h"

#include <gtest/gtest.h>

#include "src/db/schema.h"
#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

// Reads the txn id of the i-th kept access row.
uint64_t AccessTxn(const Database& db, size_t index) {
  const Table& accesses = db.table(LockDocSchema::kAccesses);
  return accesses.GetUint64(index, accesses.ColumnIndex("txn_id"));
}

uint64_t AccessFilterReason(const Database& db, size_t index) {
  const Table& accesses = db.table(LockDocSchema::kAccesses);
  return accesses.GetUint64(index, accesses.ColumnIndex("filter_reason"));
}

uint64_t TxnLockCount(const Database& db, uint64_t txn) {
  const Table& txns = db.table(LockDocSchema::kTxns);
  return txns.GetUint64(txn, txns.ColumnIndex("n_locks"));
}

TEST(ImporterTest, NestedReleaseResumesEnclosingTransaction) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Write(obj, world.data, 3);  // Access 0: txn a.
    world.sim->Lock(obj, world.spin, 4);
    world.sim->Write(obj, world.data, 5);  // Access 1: nested txn.
    world.sim->Unlock(obj, world.spin, 6);
    world.sim->Write(obj, world.data, 7);  // Access 2: txn a again (same id!).
    world.sim->UnlockGlobal(world.global_a, 8);
    world.sim->Destroy(obj, 9);
  }
  Database db;
  world.Import(&db);
  EXPECT_EQ(AccessTxn(db, 0), AccessTxn(db, 2));
  EXPECT_NE(AccessTxn(db, 0), AccessTxn(db, 1));
  EXPECT_EQ(TxnLockCount(db, AccessTxn(db, 0)), 1u);
  EXPECT_EQ(TxnLockCount(db, AccessTxn(db, 1)), 2u);
}

TEST(ImporterTest, LockFreeSpansGetTheirOwnTransactions) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Write(obj, world.data, 2);  // Access 0: lock-free span 1.
    world.sim->LockGlobal(world.global_a, 3);
    world.sim->Write(obj, world.data, 4);  // Access 1.
    world.sim->UnlockGlobal(world.global_a, 5);
    world.sim->Write(obj, world.data, 6);  // Access 2: lock-free span 2.
    world.sim->Destroy(obj, 7);
  }
  Database db;
  world.Import(&db);
  EXPECT_NE(AccessTxn(db, 0), AccessTxn(db, 2));  // Distinct lock-free spans.
  EXPECT_EQ(TxnLockCount(db, AccessTxn(db, 0)), 0u);
  EXPECT_EQ(TxnLockCount(db, AccessTxn(db, 2)), 0u);
}

TEST(ImporterTest, OutOfOrderReleaseMintsFreshTransactions) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Lock(obj, world.spin, 3);
    world.sim->Write(obj, world.data, 4);          // Access 0: [a, spin].
    world.sim->UnlockGlobal(world.global_a, 5);    // Out-of-order release.
    world.sim->Write(obj, world.data, 6);          // Access 1: [spin] fresh txn.
    world.sim->Unlock(obj, world.spin, 7);
    world.sim->Destroy(obj, 8);
  }
  Database db;
  world.Import(&db);
  EXPECT_NE(AccessTxn(db, 0), AccessTxn(db, 1));
  EXPECT_EQ(TxnLockCount(db, AccessTxn(db, 0)), 2u);
  EXPECT_EQ(TxnLockCount(db, AccessTxn(db, 1)), 1u);
}

TEST(ImporterTest, FilterReasons) {
  TestWorld world;
  FilterConfig filter = FilterConfig::Defaults();
  filter.init_teardown_functions.insert("widget_init");
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 80);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Write(obj, world.data, 2);        // 0: kept.
    world.sim->AtomicWrite(obj, world.atomic, 3);  // 1: atomic member + fn.
    world.sim->Write(obj, world.banned, 4);      // 2: blacklisted member.
    {
      FunctionScope init(*world.sim, "t.c", "widget_init", 10, 20);
      world.sim->Write(obj, world.data, 12);     // 3: init context.
    }
    world.sim->Write(obj, world.extra, 5);       // 4: kept.
    world.sim->Destroy(obj, 6);
  }
  Database db;
  ImportStats stats = world.Import(&db, filter);
  EXPECT_EQ(stats.accesses_kept, 2u);
  EXPECT_EQ(stats.accesses_filtered, 3u);
  EXPECT_EQ(AccessFilterReason(db, 0), static_cast<uint64_t>(FilterReason::kNone));
  EXPECT_EQ(AccessFilterReason(db, 1), static_cast<uint64_t>(FilterReason::kAtomicMember));
  EXPECT_EQ(AccessFilterReason(db, 2),
            static_cast<uint64_t>(FilterReason::kBlacklistedMember));
  EXPECT_EQ(AccessFilterReason(db, 3), static_cast<uint64_t>(FilterReason::kInitTeardown));
  EXPECT_EQ(AccessFilterReason(db, 4), static_cast<uint64_t>(FilterReason::kNone));
}

TEST(ImporterTest, AtomicHelperOnPlainMemberFilteredByFunction) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->AtomicWrite(obj, world.data, 2);  // Plain member via atomic_set.
    world.sim->Destroy(obj, 3);
  }
  Database db;
  world.Import(&db);
  EXPECT_EQ(AccessFilterReason(db, 0), static_cast<uint64_t>(FilterReason::kBlacklistedFn));
}

TEST(ImporterTest, UntrackedMemoryFiltered) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->Destroy(obj, 2);
    // Access after free: the allocation is dead.
    TraceEvent stale;
    stale.kind = EventKind::kMemRead;
    stale.addr = obj.addr;
    stale.size = 8;
    world.trace.Append(stale);
  }
  Database db;
  world.Import(&db);
  EXPECT_EQ(AccessFilterReason(db, 0), static_cast<uint64_t>(FilterReason::kUntrackedMemory));
}

TEST(ImporterTest, LockMemberAccessFiltered) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    // Raw access to the lock member's bytes (lockdep-style code does this).
    TraceEvent raw;
    raw.kind = EventKind::kMemRead;
    raw.addr = obj.addr + world.registry->layout(world.type).member(world.spin).offset;
    raw.size = 4;
    world.trace.Append(raw);
    world.sim->Destroy(obj, 2);
  }
  Database db;
  world.Import(&db);
  EXPECT_EQ(AccessFilterReason(db, 0), static_cast<uint64_t>(FilterReason::kLockMember));
}

TEST(ImporterTest, DimensionTablesPopulated) {
  TestWorld world;
  Database db;
  world.Import(&db);
  EXPECT_EQ(db.table(LockDocSchema::kDataTypes).row_count(), 1u);
  EXPECT_EQ(db.table(LockDocSchema::kMembers).row_count(),
            world.registry->layout(world.type).member_count());
}

TEST(ImporterTest, StatsCountEvents) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Write(obj, world.data, 3);
    world.sim->UnlockGlobal(world.global_a, 4);
    world.sim->Destroy(obj, 5);
  }
  Database db;
  ImportStats stats = world.Import(&db);
  EXPECT_EQ(stats.events, world.trace.size());
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.accesses_total, 1u);
  EXPECT_EQ(stats.lock_instances, 1u);
  EXPECT_GE(stats.txns, 3u);  // Pre-span, locked txn, post-span.
  EXPECT_EQ(stats.locked_txns, 1u);
}

// Every transaction row must end up with a non-null end_seq exactly once —
// the eviction logic in ExtractObservations depends on it.
void ExpectAllTxnsClosed(const Database& db) {
  const Table& txns = db.table(LockDocSchema::kTxns);
  const size_t kEnd = txns.ColumnIndex("end_seq");
  for (RowId txn = 0; txn < txns.row_count(); ++txn) {
    EXPECT_NE(txns.GetUint64(txn, kEnd), kDbNull) << "txn " << txn;
  }
}

TEST(ImporterTest, TraceEndingWithLocksHeldClosesEveryTransactionOnce) {
  // Regression: the EOF path used to close `current_txn` through two code
  // paths when the trace ended inside nested locks, double-writing end_seq.
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Lock(obj, world.spin, 3);
    world.sim->Write(obj, world.data, 4);
    // Trace ends here: both locks still held, as in a truncated archive.
  }
  Database db;
  ImportStats stats = world.Import(&db);
  EXPECT_EQ(stats.dangling_locks_closed, 2u);
  ExpectAllTxnsClosed(db);
}

TEST(ImporterTest, TraceEndingInLockFreeSpanClosesEveryTransactionOnce) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    world.sim->LockGlobal(world.global_a, 2);
    world.sim->Write(obj, world.data, 3);
    world.sim->UnlockGlobal(world.global_a, 4);
    world.sim->Write(obj, world.extra, 5);
    world.sim->Destroy(obj, 6);
  }
  Database db;
  ImportStats stats = world.Import(&db);
  EXPECT_EQ(stats.dangling_locks_closed, 0u);
  ExpectAllTxnsClosed(db);
}

}  // namespace
}  // namespace lockdoc
