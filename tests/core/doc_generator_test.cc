#include "src/core/doc_generator.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/core/rule.h"
#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

// data: always under the spinlock (r+w); extra: lockless reads only.
TestWorld MakeDocWorld() {
  TestWorld world;
  FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
  ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
  for (int i = 0; i < 4; ++i) {
    world.sim->Lock(obj, world.spin, 2);
    world.sim->Write(obj, world.data, 3);
    world.sim->Unlock(obj, world.spin, 4);
    world.sim->Lock(obj, world.spin, 5);
    world.sim->Read(obj, world.data, 6);
    world.sim->Unlock(obj, world.spin, 7);
    world.sim->Read(obj, world.extra, 8);
  }
  world.sim->Destroy(obj, 9);
  return world;
}

std::vector<DerivationResult> DeriveAll(TestWorld& world, ObservationStore& store) {
  store = world.Extract();
  RuleDerivator derivator;
  return derivator.DeriveAll(store);
}

TEST(DocGeneratorTest, GroupsMembersByRule) {
  TestWorld world = MakeDocWorld();
  ObservationStore store;
  std::vector<DerivationResult> rules = DeriveAll(world, store);
  DocGenerator generator(world.registry.get());
  std::string doc = generator.Generate(world.type, kNoSubclass, rules);

  EXPECT_NE(doc.find("widget locking rules"), std::string::npos);
  EXPECT_NE(doc.find("No locks needed for:"), std::string::npos);
  EXPECT_NE(doc.find("extra"), std::string::npos);
  EXPECT_NE(doc.find("ES(w_lock in widget) protects:"), std::string::npos);
  // data's read and write rules agree, so it appears without [r]/[w] tags.
  EXPECT_NE(doc.find("data"), std::string::npos);
  EXPECT_EQ(doc.find("data [r]"), std::string::npos);
}

TEST(DocGeneratorTest, DisagreeingAccessTypesAreTagged) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    // Writes locked, reads lockless.
    world.sim->Lock(obj, world.spin, 2);
    world.sim->Write(obj, world.data, 3);
    world.sim->Unlock(obj, world.spin, 4);
    world.sim->Read(obj, world.data, 5);
    world.sim->Destroy(obj, 6);
  }
  ObservationStore store;
  std::vector<DerivationResult> rules = DeriveAll(world, store);
  DocGenerator generator(world.registry.get());
  std::string doc = generator.Generate(world.type, kNoSubclass, rules);
  EXPECT_NE(doc.find("data [r]"), std::string::npos);
  EXPECT_NE(doc.find("data [w]"), std::string::npos);
}

TEST(DocGeneratorTest, SupportAnnotations) {
  TestWorld world = MakeDocWorld();
  ObservationStore store;
  std::vector<DerivationResult> rules = DeriveAll(world, store);
  DocGenOptions options;
  options.include_support = true;
  DocGenerator generator(world.registry.get(), options);
  std::string doc = generator.Generate(world.type, kNoSubclass, rules);
  EXPECT_NE(doc.find("sr="), std::string::npos);
  EXPECT_NE(doc.find("n="), std::string::npos);
}

TEST(DocGeneratorTest, RuleSpecOutputIsParsable) {
  TestWorld world = MakeDocWorld();
  ObservationStore store;
  std::vector<DerivationResult> rules = DeriveAll(world, store);
  DocGenerator generator(world.registry.get());
  std::string spec = generator.GenerateRuleSpec(world.type, kNoSubclass, rules);
  auto parsed = RuleSet::ParseText(spec);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << spec;
  // One rule per (member, access) with observations: data r, data w, extra r.
  EXPECT_EQ(parsed.value().size(), 3u);
}

TEST(DocGeneratorTest, OtherPopulationsResultsIgnored) {
  TestWorld world = MakeDocWorld();
  SubclassId unused = world.registry->RegisterSubclass(world.type, "unused");
  ObservationStore store;
  std::vector<DerivationResult> rules = DeriveAll(world, store);
  DocGenerator generator(world.registry.get());
  // Generating for a subclass with no observations yields an empty body.
  std::string doc = generator.Generate(world.type, unused, rules);
  EXPECT_EQ(doc.find("protects:"), std::string::npos);
  EXPECT_NE(doc.find("widget:unused"), std::string::npos);
}

TEST(DocGeneratorTest, GenerateAllWritesBundle) {
  TestWorld world = MakeDocWorld();
  ObservationStore store;
  std::vector<DerivationResult> rules = DeriveAll(world, store);
  DocGenerator generator(world.registry.get());

  std::string dir = ::testing::TempDir() + "/lockdoc_docs";
  std::filesystem::create_directories(dir);
  auto written = generator.GenerateAll(rules, dir);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_EQ(written.value(), 2u);  // widget.txt + rules.txt.

  std::ifstream widget(dir + "/widget.txt");
  ASSERT_TRUE(widget.good());
  std::ostringstream buffer;
  buffer << widget.rdbuf();
  EXPECT_NE(buffer.str().find("widget locking rules"), std::string::npos);

  // rules.txt must be parsable by the rule-spec parser.
  std::ifstream rules_in(dir + "/rules.txt");
  ASSERT_TRUE(rules_in.good());
  std::ostringstream rules_buffer;
  rules_buffer << rules_in.rdbuf();
  auto parsed = RuleSet::ParseText(rules_buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().size(), 3u);
}

TEST(DocGeneratorTest, GenerateAllFailsOnMissingDirectory) {
  TestWorld world = MakeDocWorld();
  ObservationStore store;
  std::vector<DerivationResult> rules = DeriveAll(world, store);
  DocGenerator generator(world.registry.get());
  EXPECT_FALSE(generator.GenerateAll(rules, "/nonexistent/lockdoc_docs").ok());
}

}  // namespace
}  // namespace lockdoc
