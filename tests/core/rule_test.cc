#include "src/core/rule.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(MemberRefTest, ToStringWithAndWithoutSubclass) {
  MemberRef plain{"inode", "", "i_state"};
  EXPECT_EQ(plain.ToString(), "inode.i_state");
  MemberRef sub{"inode", "ext4", "i_hash"};
  EXPECT_EQ(sub.ToString(), "inode:ext4.i_hash");
}

TEST(RuleSetTest, ParseSimpleRule) {
  auto rules = RuleSet::ParseText("inode.i_state w: ES(i_lock in inode)\n");
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules.value().size(), 1u);
  const LockingRule& rule = rules.value().rules()[0];
  EXPECT_EQ(rule.member.type_name, "inode");
  EXPECT_EQ(rule.member.member_name, "i_state");
  EXPECT_EQ(rule.access, AccessType::kWrite);
  EXPECT_EQ(LockSeqToString(rule.locks), "ES(i_lock in inode)");
}

TEST(RuleSetTest, ParseSubclassQualifier) {
  auto rules =
      RuleSet::ParseText("inode:ext4.i_hash w: inode_hash_lock -> ES(i_lock in inode)\n");
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules.value().rules()[0].member.subclass, "ext4");
  EXPECT_EQ(rules.value().rules()[0].locks.size(), 2u);
}

TEST(RuleSetTest, RwExpandsToTwoRules) {
  auto rules = RuleSet::ParseText("dentry.d_lru rw: ES(d_lock in dentry)\n");
  ASSERT_TRUE(rules.ok());
  ASSERT_EQ(rules.value().size(), 2u);
  EXPECT_EQ(rules.value().rules()[0].access, AccessType::kRead);
  EXPECT_EQ(rules.value().rules()[1].access, AccessType::kWrite);
}

TEST(RuleSetTest, NoLockRule) {
  auto rules = RuleSet::ParseText("journal_t.j_max_transaction_buffers r: no lock\n");
  ASSERT_TRUE(rules.ok());
  EXPECT_TRUE(rules.value().rules()[0].locks.empty());
}

TEST(RuleSetTest, CommentsAndBlankLinesIgnored) {
  auto rules = RuleSet::ParseText("# header\n\n  # indented comment\ninode.i_state w: rcu\n");
  ASSERT_TRUE(rules.ok());
  EXPECT_EQ(rules.value().size(), 1u);
}

TEST(RuleSetTest, ParseErrors) {
  EXPECT_FALSE(RuleSet::ParseText("no colon here\n").ok());
  EXPECT_FALSE(RuleSet::ParseText("inode.i_state q: rcu\n").ok());    // Bad access.
  EXPECT_FALSE(RuleSet::ParseText("noaccess: rcu\n").ok());           // Missing access token.
  EXPECT_FALSE(RuleSet::ParseText("inodei_state w: rcu\n").ok());     // No member dot.
  EXPECT_FALSE(RuleSet::ParseText("inode.i_state w: ES(bad\n").ok()); // Bad lock.
  EXPECT_FALSE(RuleSet::ParseText("inode:.x w: rcu\n").ok());         // Empty subclass.
}

TEST(RuleSetTest, TextRoundTrip) {
  std::string text =
      "inode.i_state w: ES(i_lock in inode)\n"
      "inode:ext4.i_hash r: inode_hash_lock -> ES(i_lock in inode)\n"
      "dentry.d_seq r: rcu\n"
      "journal_t.j_flags w: no lock\n";
  auto rules = RuleSet::ParseText(text);
  ASSERT_TRUE(rules.ok());
  auto reparsed = RuleSet::ParseText(rules.value().ToText());
  ASSERT_TRUE(reparsed.ok());
  ASSERT_EQ(reparsed.value().size(), rules.value().size());
  for (size_t i = 0; i < rules.value().size(); ++i) {
    EXPECT_EQ(reparsed.value().rules()[i].ToString(), rules.value().rules()[i].ToString());
  }
}

TEST(RuleSetTest, RulesForFiltersByMemberAndAccess) {
  auto rules = RuleSet::ParseText(
      "inode.i_state rw: ES(i_lock in inode)\n"
      "inode.i_hash w: inode_hash_lock\n");
  ASSERT_TRUE(rules.ok());
  MemberRef state{"inode", "", "i_state"};
  EXPECT_EQ(rules.value().RulesFor(state, AccessType::kWrite).size(), 1u);
  EXPECT_EQ(rules.value().RulesFor(state, AccessType::kRead).size(), 1u);
  MemberRef hash{"inode", "", "i_hash"};
  EXPECT_TRUE(rules.value().RulesFor(hash, AccessType::kRead).empty());
}

}  // namespace
}  // namespace lockdoc
