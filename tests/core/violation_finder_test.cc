#include "src/core/violation_finder.h"

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

// 19 locked writes + 1 lockless write at a distinctive location.
TestWorld MakeBuggyWorld() {
  TestWorld world;
  FunctionScope fn(*world.sim, "fs/widget.c", "widget_update", 1, 99);
  ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
  for (int i = 0; i < 19; ++i) {
    world.sim->Lock(obj, world.spin, 10);
    world.sim->Write(obj, world.data, 11);
    world.sim->Unlock(obj, world.spin, 12);
  }
  {
    FunctionScope buggy(*world.sim, "fs/widget.c", "widget_fastpath", 60, 70);
    world.sim->Write(obj, world.data, 66);
  }
  world.sim->Destroy(obj, 98);
  return world;
}

TEST(ViolationFinderTest, FindsTheLocklessWrite) {
  TestWorld world = MakeBuggyWorld();
  Database db;
  world.Import(&db);
  ObservationStore store = ExtractObservations(db, *world.registry);
  RuleDerivator derivator;
  std::vector<DerivationResult> rules = derivator.DeriveAll(store);
  ViolationFinder finder(&db, world.registry.get(), &store);
  std::vector<Violation> violations = finder.FindAll(rules);

  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].access, AccessType::kWrite);
  EXPECT_EQ(LockSeqToString(violations[0].rule), "ES(w_lock in widget)");
  EXPECT_TRUE(violations[0].held.empty());
  EXPECT_EQ(violations[0].seqs.size(), 1u);
}

TEST(ViolationFinderTest, ExamplesCarryContext) {
  TestWorld world = MakeBuggyWorld();
  Database db;
  world.Import(&db);
  ObservationStore store = ExtractObservations(db, *world.registry);
  RuleDerivator derivator;
  std::vector<DerivationResult> rules = derivator.DeriveAll(store);
  ViolationFinder finder(&db, world.registry.get(), &store);
  auto examples = finder.Examples(finder.FindAll(rules), 10);

  ASSERT_EQ(examples.size(), 1u);
  EXPECT_EQ(examples[0].member, "widget.data");
  EXPECT_EQ(examples[0].location, "fs/widget.c:66");
  EXPECT_NE(examples[0].stack.find("widget_fastpath"), std::string::npos);
  EXPECT_EQ(examples[0].events, 1u);
}

TEST(ViolationFinderTest, SummaryCountsEventsMembersContexts) {
  TestWorld world = MakeBuggyWorld();
  Database db;
  world.Import(&db);
  ObservationStore store = ExtractObservations(db, *world.registry);
  RuleDerivator derivator;
  std::vector<DerivationResult> rules = derivator.DeriveAll(store);
  ViolationFinder finder(&db, world.registry.get(), &store);
  auto summary = finder.Summarize(finder.FindAll(rules));

  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].type_name, "widget");
  EXPECT_EQ(summary[0].events, 1u);
  EXPECT_EQ(summary[0].members, 1u);
  EXPECT_EQ(summary[0].contexts, 1u);
}

TEST(ViolationFinderTest, CleanWorldHasZeroViolationsButSummaryRow) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    for (int i = 0; i < 5; ++i) {
      world.sim->Lock(obj, world.spin, 2);
      world.sim->Write(obj, world.data, 3);
      world.sim->Unlock(obj, world.spin, 4);
    }
    world.sim->Destroy(obj, 5);
  }
  Database db;
  world.Import(&db);
  ObservationStore store = ExtractObservations(db, *world.registry);
  RuleDerivator derivator;
  std::vector<DerivationResult> rules = derivator.DeriveAll(store);
  ViolationFinder finder(&db, world.registry.get(), &store);
  std::vector<Violation> violations = finder.FindAll(rules);
  EXPECT_TRUE(violations.empty());
  auto summary = finder.Summarize(violations);
  ASSERT_EQ(summary.size(), 1u);  // Observed types appear with zeros.
  EXPECT_EQ(summary[0].events, 0u);
}

TEST(ViolationFinderTest, NoLockWinnersCannotBeViolated) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    // Mixed 50/50 locking: winner is "no lock".
    for (int i = 0; i < 5; ++i) {
      world.sim->Lock(obj, world.spin, 2);
      world.sim->Write(obj, world.data, 3);
      world.sim->Unlock(obj, world.spin, 4);
      world.sim->Write(obj, world.data, 5);
    }
    world.sim->Destroy(obj, 6);
  }
  Database db;
  world.Import(&db);
  ObservationStore store = ExtractObservations(db, *world.registry);
  RuleDerivator derivator;
  std::vector<DerivationResult> rules = derivator.DeriveAll(store);
  ViolationFinder finder(&db, world.registry.get(), &store);
  EXPECT_TRUE(finder.FindAll(rules).empty());
}

TEST(ViolationFinderTest, WoRSuppressedReadsNotCountedAsViolatingEvents) {
  TestWorld world;
  {
    FunctionScope fn(*world.sim, "fs/widget.c", "f", 1, 99);
    ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
    for (int i = 0; i < 19; ++i) {
      world.sim->Lock(obj, world.spin, 10);
      world.sim->Write(obj, world.data, 11);
      world.sim->Unlock(obj, world.spin, 12);
    }
    // The violating transaction both reads and writes; only the write
    // events count (the read was folded away by write-over-read).
    world.sim->LockGlobal(world.global_a, 20);
    world.sim->Read(obj, world.data, 21);
    world.sim->Write(obj, world.data, 22);
    world.sim->UnlockGlobal(world.global_a, 23);
    world.sim->Destroy(obj, 98);
  }
  Database db;
  world.Import(&db);
  ObservationStore store = ExtractObservations(db, *world.registry);
  RuleDerivator derivator;
  std::vector<DerivationResult> rules = derivator.DeriveAll(store);
  ViolationFinder finder(&db, world.registry.get(), &store);
  std::vector<Violation> violations = finder.FindAll(rules);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].seqs.size(), 1u);  // The write only.
}

}  // namespace
}  // namespace lockdoc
