// Analysis-snapshot serialization: .lockdb round trips must preserve every
// store (database, string pool, lock classes, interned sequences,
// observation groups), re-serialization must be byte-identical, the on-disk
// bytes are pinned by a golden fixture, and corrupt input of any shape must
// come back as a Status error — never an abort.
#include "src/core/snapshot.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

std::string GoldenPath() { return std::string(LOCKDOC_TESTDATA_DIR) + "/golden_mini.lockdb"; }

// A deterministic little world that populates every section: strings,
// tables, a global and an embedded lock, and several observation groups.
TestWorld MakeWorld() {
  TestWorld world;
  FunctionScope fn(*world.sim, "fs/widget.c", "widget_ops", 1, 90);
  ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
  for (int i = 0; i < 6; ++i) {
    world.sim->LockGlobal(world.global_a, 10);
    world.sim->Lock(obj, world.spin, 11);
    world.sim->Write(obj, world.data, 12);
    world.sim->Read(obj, world.extra, 13);
    world.sim->Unlock(obj, world.spin, 14);
    world.sim->UnlockGlobal(world.global_a, 15);
  }
  world.sim->Write(obj, world.data, 66);  // Lockless outlier.
  world.sim->Destroy(obj, 89);
  return world;
}

void ExpectSameRules(const std::vector<DerivationResult>& a,
                     const std::vector<DerivationResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].access, b[i].access);
    EXPECT_EQ(a[i].total, b[i].total);
    ASSERT_EQ(a[i].winner.has_value(), b[i].winner.has_value());
    if (a[i].winner.has_value()) {
      EXPECT_EQ(LockSeqToString(a[i].winner->locks), LockSeqToString(b[i].winner->locks));
      EXPECT_EQ(a[i].winner->sa, b[i].winner->sa);
    }
  }
}

TEST(SnapshotTest, RoundTripPreservesEveryStore) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string bytes = SerializeSnapshot(snapshot, *world.registry);

  auto restored = DeserializeSnapshot(bytes, *world.registry);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  const AnalysisSnapshot& loaded = restored.value();

  // Database: same tables, same shapes, same strings.
  ASSERT_EQ(loaded.db.TableNames(), snapshot.db.TableNames());
  for (const std::string& name : snapshot.db.TableNames()) {
    EXPECT_EQ(loaded.db.table(name).row_count(), snapshot.db.table(name).row_count()) << name;
  }
  ASSERT_EQ(loaded.db.strings().size(), snapshot.db.strings().size());
  for (StringId id = 0; id < snapshot.db.strings().size(); ++id) {
    EXPECT_EQ(loaded.db.String(id), snapshot.db.String(id));
  }

  // Stats.
  EXPECT_EQ(loaded.import_stats.accesses_kept, snapshot.import_stats.accesses_kept);
  EXPECT_EQ(loaded.import_stats.txns, snapshot.import_stats.txns);
  EXPECT_EQ(loaded.trace_stats.total_events, snapshot.trace_stats.total_events);
  EXPECT_EQ(loaded.trace_stats.ToString(), snapshot.trace_stats.ToString());

  // Observations: identical groups, identical derived rules.
  EXPECT_EQ(loaded.observations.groups().size(), snapshot.observations.groups().size());
  ExpectSameRules(AnalyzeSnapshot(loaded), AnalyzeSnapshot(snapshot));
}

TEST(SnapshotTest, ReserializationIsByteIdentical) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string bytes = SerializeSnapshot(snapshot, *world.registry);
  auto restored = DeserializeSnapshot(bytes, *world.registry);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(SerializeSnapshot(restored.value(), *world.registry), bytes);
}

// Pins the exact on-disk bytes. If this fails, the format changed: bump
// kSnapshotFormatVersion and regenerate the fixture by running this binary
// with LOCKDOC_REGEN_GOLDEN=1 from the source tree.
TEST(SnapshotTest, GoldenFixtureBytesArePinned) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string bytes = SerializeSnapshot(snapshot, *world.registry);

  if (std::getenv("LOCKDOC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(out.is_open());
    out << bytes;
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing fixture " << GoldenPath();
  std::ostringstream golden;
  golden << in.rdbuf();
  ASSERT_EQ(bytes.size(), golden.str().size());
  EXPECT_EQ(bytes, golden.str());

  auto restored = DeserializeSnapshot(golden.str(), *world.registry);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored.value().observations.groups().size(),
            snapshot.observations.groups().size());
}

TEST(SnapshotTest, RegistryShapeMismatchIsRejected) {
  TestWorld world = MakeWorld();
  std::string bytes =
      SerializeSnapshot(BuildSnapshot(world.trace, *world.registry), *world.registry);

  TypeRegistry other;
  auto restored = DeserializeSnapshot(bytes, other);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("registry"), std::string::npos);
}

TEST(SnapshotTest, EveryByteFlipFailsAsStatusNotAbort) {
  TestWorld world = MakeWorld();
  std::string pristine =
      SerializeSnapshot(BuildSnapshot(world.trace, *world.registry), *world.registry);
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string bytes = pristine;
    bytes[i] ^= 0x20;
    auto restored = DeserializeSnapshot(bytes, *world.registry);
    EXPECT_FALSE(restored.ok()) << "undetected flip at offset " << i;
  }
}

TEST(SnapshotTest, ReorderedAndMissingSectionsAreRejected) {
  TestWorld world = MakeWorld();
  std::string pristine =
      SerializeSnapshot(BuildSnapshot(world.trace, *world.registry), *world.registry);
  auto sections = ScanSnapshotSections(pristine);
  ASSERT_TRUE(sections.ok());
  const auto& parsed = sections.value();
  ASSERT_GE(parsed.size(), 4u);

  {
    // Swap the first two sections: container-valid, semantically wrong.
    SnapshotWriter writer;
    writer.AddSection(static_cast<SnapshotSectionType>(parsed[1].type), parsed[1].payload);
    writer.AddSection(static_cast<SnapshotSectionType>(parsed[0].type), parsed[0].payload);
    for (size_t i = 2; i < parsed.size(); ++i) {
      writer.AddSection(static_cast<SnapshotSectionType>(parsed[i].type), parsed[i].payload);
    }
    EXPECT_FALSE(DeserializeSnapshot(writer.Finish(), *world.registry).ok());
  }
  {
    // Drop the last section.
    SnapshotWriter writer;
    for (size_t i = 0; i + 1 < parsed.size(); ++i) {
      writer.AddSection(static_cast<SnapshotSectionType>(parsed[i].type), parsed[i].payload);
    }
    EXPECT_FALSE(DeserializeSnapshot(writer.Finish(), *world.registry).ok());
  }
}

TEST(SnapshotTest, SaveAndLoadFileRoundTrip) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string path = ::testing::TempDir() + "/snapshot_test_roundtrip.lockdb";

  ASSERT_TRUE(SaveSnapshot(snapshot, *world.registry, path).ok());
  EXPECT_TRUE(IsSnapshotFile(path));
  auto loaded = LoadSnapshot(path, *world.registry);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSameRules(AnalyzeSnapshot(loaded.value()), AnalyzeSnapshot(snapshot));
  std::filesystem::remove(path);
}

TEST(SnapshotTest, LoadRejectsMissingAndNonSnapshotFiles) {
  TestWorld world = MakeWorld();
  EXPECT_FALSE(LoadSnapshot("/nonexistent/path.lockdb", *world.registry).ok());
  std::string path = ::testing::TempDir() + "/snapshot_test_not_a_snapshot";
  std::ofstream(path) << "plain text";
  EXPECT_FALSE(IsSnapshotFile(path));
  EXPECT_FALSE(LoadSnapshot(path, *world.registry).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace lockdoc
