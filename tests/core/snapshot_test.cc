// Analysis-snapshot serialization: .lockdb round trips must preserve every
// store (database, string pool, lock classes, interned sequences,
// observation groups), re-serialization must be byte-identical, the on-disk
// bytes are pinned by a golden fixture, and corrupt input of any shape must
// come back as a Status error — never an abort.
#include "src/core/snapshot.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

std::string GoldenPath() { return std::string(LOCKDOC_TESTDATA_DIR) + "/golden_mini.lockdb"; }
std::string GoldenPathV2() {
  return std::string(LOCKDOC_TESTDATA_DIR) + "/golden_mini_v2.lockdb";
}

// A deterministic little world that populates every section: strings,
// tables, a global and an embedded lock, and several observation groups.
TestWorld MakeWorld() {
  TestWorld world;
  FunctionScope fn(*world.sim, "fs/widget.c", "widget_ops", 1, 90);
  ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);
  for (int i = 0; i < 6; ++i) {
    world.sim->LockGlobal(world.global_a, 10);
    world.sim->Lock(obj, world.spin, 11);
    world.sim->Write(obj, world.data, 12);
    world.sim->Read(obj, world.extra, 13);
    world.sim->Unlock(obj, world.spin, 14);
    world.sim->UnlockGlobal(world.global_a, 15);
  }
  world.sim->Write(obj, world.data, 66);  // Lockless outlier.
  world.sim->Destroy(obj, 89);
  return world;
}

void ExpectSameRules(const std::vector<DerivationResult>& a,
                     const std::vector<DerivationResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].access, b[i].access);
    EXPECT_EQ(a[i].total, b[i].total);
    ASSERT_EQ(a[i].winner.has_value(), b[i].winner.has_value());
    if (a[i].winner.has_value()) {
      EXPECT_EQ(LockSeqToString(a[i].winner->locks), LockSeqToString(b[i].winner->locks));
      EXPECT_EQ(a[i].winner->sa, b[i].winner->sa);
    }
  }
}

TEST(SnapshotTest, RoundTripPreservesEveryStore) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string bytes = SerializeSnapshot(snapshot, *world.registry);

  auto restored = DeserializeSnapshot(bytes, *world.registry);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  const AnalysisSnapshot& loaded = restored.value();

  // Database: same tables, same shapes, same strings.
  ASSERT_EQ(loaded.db.TableNames(), snapshot.db.TableNames());
  for (const std::string& name : snapshot.db.TableNames()) {
    EXPECT_EQ(loaded.db.table(name).row_count(), snapshot.db.table(name).row_count()) << name;
  }
  ASSERT_EQ(loaded.db.strings().size(), snapshot.db.strings().size());
  for (StringId id = 0; id < snapshot.db.strings().size(); ++id) {
    EXPECT_EQ(loaded.db.String(id), snapshot.db.String(id));
  }

  // Stats.
  EXPECT_EQ(loaded.import_stats.accesses_kept, snapshot.import_stats.accesses_kept);
  EXPECT_EQ(loaded.import_stats.txns, snapshot.import_stats.txns);
  EXPECT_EQ(loaded.trace_stats.total_events, snapshot.trace_stats.total_events);
  EXPECT_EQ(loaded.trace_stats.ToString(), snapshot.trace_stats.ToString());

  // Observations: identical groups, identical derived rules.
  EXPECT_EQ(loaded.observations.groups().size(), snapshot.observations.groups().size());
  ExpectSameRules(AnalyzeSnapshot(loaded), AnalyzeSnapshot(snapshot));
}

TEST(SnapshotTest, ReserializationIsByteIdentical) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string bytes = SerializeSnapshot(snapshot, *world.registry);
  auto restored = DeserializeSnapshot(bytes, *world.registry);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(SerializeSnapshot(restored.value(), *world.registry), bytes);
}

// Pins the exact on-disk bytes of BOTH container versions. If this fails,
// the format changed: bump the corresponding format version and regenerate
// the fixtures by running this binary with LOCKDOC_REGEN_GOLDEN=1 from the
// source tree.
TEST(SnapshotTest, GoldenFixtureBytesArePinned) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  SnapshotWriteOptions v1;
  v1.container_version = 1;
  const std::string bytes_v1 = SerializeSnapshot(snapshot, *world.registry, v1);
  const std::string bytes_v2 = SerializeSnapshot(snapshot, *world.registry);

  if (std::getenv("LOCKDOC_REGEN_GOLDEN") != nullptr) {
    std::ofstream out1(GoldenPath(), std::ios::binary);
    ASSERT_TRUE(out1.is_open());
    out1 << bytes_v1;
    std::ofstream out2(GoldenPathV2(), std::ios::binary);
    ASSERT_TRUE(out2.is_open());
    out2 << bytes_v2;
    GTEST_SKIP() << "regenerated " << GoldenPath() << " and " << GoldenPathV2();
  }

  for (const auto& [path, bytes] :
       {std::pair(GoldenPath(), bytes_v1), std::pair(GoldenPathV2(), bytes_v2)}) {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.is_open()) << "missing fixture " << path;
    std::ostringstream golden;
    golden << in.rdbuf();
    ASSERT_EQ(bytes.size(), golden.str().size()) << path;
    EXPECT_EQ(bytes, golden.str()) << path;

    auto restored = DeserializeSnapshot(golden.str(), *world.registry);
    ASSERT_TRUE(restored.ok()) << path << ": " << restored.status().message();
    EXPECT_EQ(restored.value().observations.groups().size(),
              snapshot.observations.groups().size())
        << path;
  }
}

TEST(SnapshotTest, RegistryShapeMismatchIsRejected) {
  TestWorld world = MakeWorld();
  std::string bytes =
      SerializeSnapshot(BuildSnapshot(world.trace, *world.registry), *world.registry);

  TypeRegistry other;
  auto restored = DeserializeSnapshot(bytes, other);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("registry"), std::string::npos);
}

TEST(SnapshotTest, EveryByteFlipFailsAsStatusNotAbort) {
  TestWorld world = MakeWorld();
  std::string pristine =
      SerializeSnapshot(BuildSnapshot(world.trace, *world.registry), *world.registry);
  for (size_t i = 0; i < pristine.size(); ++i) {
    std::string bytes = pristine;
    bytes[i] ^= 0x20;
    auto restored = DeserializeSnapshot(bytes, *world.registry);
    EXPECT_FALSE(restored.ok()) << "undetected flip at offset " << i;
  }
}

TEST(SnapshotTest, ReorderedAndMissingSectionsAreRejected) {
  TestWorld world = MakeWorld();
  std::string pristine =
      SerializeSnapshot(BuildSnapshot(world.trace, *world.registry), *world.registry);
  auto sections = ScanSnapshotSections(pristine);
  ASSERT_TRUE(sections.ok());
  const auto& parsed = sections.value();
  ASSERT_GE(parsed.size(), 4u);

  {
    // Swap the first two sections: container-valid, semantically wrong.
    SnapshotWriter writer;
    writer.AddSection(static_cast<SnapshotSectionType>(parsed[1].type), parsed[1].payload);
    writer.AddSection(static_cast<SnapshotSectionType>(parsed[0].type), parsed[0].payload);
    for (size_t i = 2; i < parsed.size(); ++i) {
      writer.AddSection(static_cast<SnapshotSectionType>(parsed[i].type), parsed[i].payload);
    }
    EXPECT_FALSE(DeserializeSnapshot(writer.Finish().value(), *world.registry).ok());
  }
  {
    // Drop the last section.
    SnapshotWriter writer;
    for (size_t i = 0; i + 1 < parsed.size(); ++i) {
      writer.AddSection(static_cast<SnapshotSectionType>(parsed[i].type), parsed[i].payload);
    }
    EXPECT_FALSE(DeserializeSnapshot(writer.Finish().value(), *world.registry).ok());
  }
}

// Forward compatibility: a CRC-intact section of a type this build does
// not know (written by a future version) is skipped by the loader, not
// treated as damage or a framing error.
TEST(SnapshotTest, UnknownSectionTypeIsSkippedOnLoad) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string pristine = SerializeSnapshot(snapshot, *world.registry);
  auto baseline = DeserializeSnapshot(pristine, *world.registry);
  ASSERT_TRUE(baseline.ok());

  auto sections = ScanSnapshotSections(pristine);
  ASSERT_TRUE(sections.ok());
  const auto& parsed = sections.value();
  ASSERT_GE(parsed.size(), 4u);
  // Re-emit with a future-typed section spliced in after the meta section.
  // SerializeSnapshot defaults to the v2 container, and the meta payload's
  // format version is coupled to it — re-emit as v2 too.
  SnapshotWriter writer(/*container_version=*/2);
  writer.AddSection(static_cast<SnapshotSectionType>(parsed[0].type), parsed[0].payload);
  writer.AddSection(static_cast<SnapshotSectionType>(9), "future-extension-payload");
  for (size_t i = 1; i < parsed.size(); ++i) {
    writer.AddSection(static_cast<SnapshotSectionType>(parsed[i].type), parsed[i].payload);
  }
  std::string extended = writer.Finish().value();

  auto restored = DeserializeSnapshot(extended, *world.registry);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  // Everything the loader understands is untouched by the skip.
  EXPECT_EQ(SerializeSnapshot(restored.value(), *world.registry),
            SerializeSnapshot(baseline.value(), *world.registry));
}

// doctor --repair keeps only CRC-intact sections, so a repaired file can be
// container-clean yet missing a whole table. Loading such a file must come
// back as a typed error naming the table — not a CHECK abort at the first
// analysis lookup.
TEST(SnapshotTest, RepairedSnapshotMissingATableFailsTyped) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  for (uint64_t version : {uint64_t{1}, uint64_t{2}}) {
    SnapshotWriteOptions write_options;
    write_options.container_version = version;
    std::string bytes = SerializeSnapshot(snapshot, *world.registry, write_options);
    auto sections = ScanSnapshotSections(bytes);
    ASSERT_TRUE(sections.ok());
    // Corrupt one payload byte of the first table section; repair then
    // drops that section wholesale.
    const SnapshotSection* table = nullptr;
    for (const auto& section : sections.value()) {
      if (section.type == kSnapshotSectionTable) {
        table = &section;
        break;
      }
    }
    ASSERT_NE(table, nullptr) << "v" << version;
    size_t victim = static_cast<size_t>(table->payload.data() - bytes.data());
    bytes[victim] ^= 0x20;
    SnapshotRepairResult repaired = RepairSnapshotBytes(bytes);
    ASSERT_TRUE(repaired.salvageable()) << "v" << version;
    ASSERT_EQ(repaired.dropped.size(), 1u) << "v" << version;
    auto restored = DeserializeSnapshot(repaired.bytes, *world.registry);
    ASSERT_FALSE(restored.ok()) << "v" << version;
    EXPECT_NE(restored.status().message().find("required table"), std::string::npos)
        << "v" << version << ": " << restored.status().message();
  }
}

// The lazy-CRC contract of the v2 zero-copy load: by default every payload
// CRC is verified (a flipped padding byte — which no decoder ever reads —
// must still fail the load), and only an explicit verify_payload_crcs=false
// opt-out defers table CRCs, in which case the analysis still comes out
// identical because padding bytes carry no data.
TEST(SnapshotTest, V2DefaultLoadVerifiesPayloadsLazyLoadDefersThem) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string bytes = SerializeSnapshot(snapshot, *world.registry);

  auto sections = ScanSnapshotSections(bytes);
  ASSERT_TRUE(sections.ok());
  size_t victim = 0;
  for (const SnapshotSection& section : sections.value()) {
    if (section.type == kSnapshotSectionTable &&
        section.padded_payload.size() > section.payload.size()) {
      // Last padding byte of the section: inside the CRC domain, outside
      // every decoder's read set.
      victim = (section.padded_payload.data() - bytes.data()) +
               section.padded_payload.size() - 1;
      break;
    }
  }
  ASSERT_NE(victim, 0u) << "no padded table section in the fixture";
  bytes[victim] ^= 0x5A;

  std::string path = ::testing::TempDir() + "/snapshot_test_lazy_crc.lockdb";
  {
    std::ofstream out(path, std::ios::binary);
    out << bytes;
  }
  auto strict = LoadSnapshot(path, *world.registry);
  EXPECT_FALSE(strict.ok()) << "default load must verify padded payload CRCs";

  SnapshotLoadOptions trusting;
  trusting.verify_payload_crcs = false;
  auto lazy = LoadSnapshot(path, *world.registry, trusting);
  ASSERT_TRUE(lazy.ok()) << lazy.status().message();
  ExpectSameRules(AnalyzeSnapshot(lazy.value()), AnalyzeSnapshot(snapshot));
  std::filesystem::remove(path);
}

// BuildAndSaveSnapshot overlaps the head-section disk write with
// observation extraction, but the bytes on disk must be exactly what the
// serial build-then-serialize path produces — at any job count and for both
// container versions.
TEST(SnapshotTest, BuildAndSaveSnapshotMatchesSerialBytesAtAnyJobCount) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  for (uint64_t version : {uint64_t{1}, uint64_t{2}}) {
    SnapshotWriteOptions write_options;
    write_options.container_version = version;
    const std::string expected = SerializeSnapshot(snapshot, *world.registry, write_options);
    for (size_t jobs : {size_t{1}, size_t{2}, size_t{8}}) {
      PipelineOptions options;
      options.jobs = jobs;
      std::string path = ::testing::TempDir() + "/snapshot_test_build_save_v" +
                         std::to_string(version) + "_j" + std::to_string(jobs) + ".lockdb";
      auto built =
          BuildAndSaveSnapshot(world.trace, *world.registry, options, write_options, path);
      ASSERT_TRUE(built.ok()) << built.status().message();
      std::ifstream in(path, std::ios::binary);
      ASSERT_TRUE(in.is_open()) << path;
      std::ostringstream actual;
      actual << in.rdbuf();
      EXPECT_EQ(actual.str(), expected)
          << "v" << version << " jobs=" << jobs << " diverged from the serial bytes";
      ExpectSameRules(AnalyzeSnapshot(built.value()), AnalyzeSnapshot(snapshot));
      std::filesystem::remove(path);
    }
  }
}

TEST(SnapshotTest, SaveAndLoadFileRoundTrip) {
  TestWorld world = MakeWorld();
  AnalysisSnapshot snapshot = BuildSnapshot(world.trace, *world.registry);
  std::string path = ::testing::TempDir() + "/snapshot_test_roundtrip.lockdb";

  ASSERT_TRUE(SaveSnapshot(snapshot, *world.registry, path).ok());
  EXPECT_TRUE(IsSnapshotFile(path));
  auto loaded = LoadSnapshot(path, *world.registry);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  ExpectSameRules(AnalyzeSnapshot(loaded.value()), AnalyzeSnapshot(snapshot));
  std::filesystem::remove(path);
}

TEST(SnapshotTest, LoadRejectsMissingAndNonSnapshotFiles) {
  TestWorld world = MakeWorld();
  EXPECT_FALSE(LoadSnapshot("/nonexistent/path.lockdb", *world.registry).ok());
  std::string path = ::testing::TempDir() + "/snapshot_test_not_a_snapshot";
  std::ofstream(path) << "plain text";
  EXPECT_FALSE(IsSnapshotFile(path));
  EXPECT_FALSE(LoadSnapshot(path, *world.registry).ok());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace lockdoc
