// Differential test for the interned-id mining core: an independent
// string-based reference derivation (std::set dedup, recursive multiset
// permutation, string subsequence tests and tie-breaks — the shape of the
// pre-interning implementation) must produce byte-identical
// DerivationResults to RuleDerivator on randomized observation stores, for
// every option combination and at any thread count. This is the proof that
// interning is a pure representation change.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/core/derivator.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"

namespace lockdoc {
namespace {

bool RefReportOrder(const Hypothesis& a, const Hypothesis& b) {
  if (a.sr != b.sr) {
    return a.sr > b.sr;
  }
  if (a.locks.size() != b.locks.size()) {
    return a.locks.size() < b.locks.size();
  }
  return a.locks < b.locks;
}

bool RefWinnerOrder(const Hypothesis& a, const Hypothesis& b) {
  if (a.sr != b.sr) {
    return a.sr < b.sr;
  }
  if (a.locks.size() != b.locks.size()) {
    return a.locks.size() > b.locks.size();
  }
  return a.locks < b.locks;
}

// Reference permutation enumeration: all distinct orderings of the multiset
// of locks in `seq`, via per-level multiset copies.
void RefPermute(const std::multiset<LockClass>& remaining, LockSeq* prefix,
                std::set<LockSeq>* out) {
  if (remaining.empty()) {
    out->insert(*prefix);
    return;
  }
  for (auto it = remaining.begin(); it != remaining.end();
       it = remaining.upper_bound(*it)) {
    std::multiset<LockClass> rest = remaining;
    rest.erase(rest.find(*it));
    prefix->push_back(*it);
    RefPermute(rest, prefix, out);
    prefix->pop_back();
  }
}

// The pre-interning derivation algorithm, kept deliberately naive.
DerivationResult ReferenceDerive(const ObservationStore& store, const MemberObsKey& key,
                                 AccessType access, const DerivatorOptions& options) {
  DerivationResult result;
  result.key = key;
  result.access = access;

  std::map<uint32_t, uint64_t> observed;
  for (const ObservationGroup& group : store.GroupsFor(key)) {
    if (group.effective() == access) {
      ++observed[group.lockseq_id];
      ++result.total;
    }
  }
  if (result.total == 0) {
    return result;
  }

  std::set<LockSeq> candidates;
  for (const auto& [seq_id, count] : observed) {
    for (const LockSeq& sub :
         EnumerateSubsequences(store.seq(seq_id), options.max_subset_locks)) {
      candidates.insert(sub);
    }
  }
  if (options.enumerate_permutations) {
    std::set<LockSeq> permuted;
    for (const LockSeq& seq : candidates) {
      if (seq.empty() || seq.size() > options.max_permutation_size) {
        continue;
      }
      LockSeq prefix;
      RefPermute(std::multiset<LockClass>(seq.begin(), seq.end()), &prefix, &permuted);
    }
    candidates.insert(permuted.begin(), permuted.end());
  }

  result.candidates_scored = candidates.size();
  for (const LockSeq& candidate : candidates) {
    Hypothesis hypothesis;
    hypothesis.locks = candidate;
    for (const auto& [seq_id, count] : observed) {
      if (IsSubsequence(candidate, store.seq(seq_id))) {
        hypothesis.sa += count;
      }
    }
    hypothesis.sr = static_cast<double>(hypothesis.sa) / static_cast<double>(result.total);
    result.hypotheses.push_back(std::move(hypothesis));
  }

  const Hypothesis* winner = nullptr;
  for (const Hypothesis& hypothesis : result.hypotheses) {
    if (hypothesis.sr + 1e-12 < options.accept_threshold) {
      continue;
    }
    if (winner == nullptr || RefWinnerOrder(hypothesis, *winner)) {
      winner = &hypothesis;
    }
  }
  result.winner = *winner;
  if (options.cutoff_threshold > 0.0) {
    std::erase_if(result.hypotheses, [&](const Hypothesis& h) {
      return h.sr < options.cutoff_threshold && h.locks != result.winner->locks;
    });
  }
  std::sort(result.hypotheses.begin(), result.hypotheses.end(), RefReportOrder);
  return result;
}

void ExpectSameResult(const DerivationResult& ref, const DerivationResult& got) {
  EXPECT_EQ(ref.key, got.key);
  EXPECT_EQ(ref.access, got.access);
  EXPECT_EQ(ref.total, got.total);
  EXPECT_EQ(ref.candidates_scored, got.candidates_scored);
  ASSERT_EQ(ref.winner.has_value(), got.winner.has_value());
  if (ref.winner.has_value()) {
    EXPECT_EQ(ref.winner->locks, got.winner->locks)
        << LockSeqToString(ref.winner->locks) << " vs "
        << LockSeqToString(got.winner->locks);
    EXPECT_EQ(ref.winner->sa, got.winner->sa);
    EXPECT_EQ(ref.winner->sr, got.winner->sr);
  }
  ASSERT_EQ(ref.hypotheses.size(), got.hypotheses.size());
  for (size_t i = 0; i < ref.hypotheses.size(); ++i) {
    EXPECT_EQ(ref.hypotheses[i].locks, got.hypotheses[i].locks)
        << "hypothesis " << i << ": " << LockSeqToString(ref.hypotheses[i].locks)
        << " vs " << LockSeqToString(got.hypotheses[i].locks);
    EXPECT_EQ(ref.hypotheses[i].sa, got.hypotheses[i].sa) << "hypothesis " << i;
    EXPECT_EQ(ref.hypotheses[i].sr, got.hypotheses[i].sr) << "hypothesis " << i;
  }
}

// A random multi-member store over a small shared lock vocabulary, so
// sequences overlap, share prefixes, and repeat classes (the cases where
// dedup and multiset permutation actually matter).
ObservationStore RandomStore(Rng& rng, size_t members, std::vector<MemberObsKey>* keys) {
  ObservationStore store;
  uint64_t txn = 0;
  for (size_t m = 0; m < members; ++m) {
    MemberObsKey key;
    key.type = static_cast<TypeId>(m % 3);
    key.subclass = kNoSubclass;
    key.member = static_cast<MemberIndex>(m);
    keys->push_back(key);
    auto& groups = store.MutableGroups(key);
    size_t kinds = 1 + rng.Below(4);
    for (size_t k = 0; k < kinds; ++k) {
      LockSeq seq;
      size_t depth = rng.Below(5);
      for (size_t d = 0; d < depth; ++d) {
        // A vocabulary of 4 names across 2 scopes; repeats within one
        // sequence are likely.
        std::string name = StrFormat("g%d", static_cast<int>(rng.Below(4)));
        seq.push_back(rng.Below(2) == 0 ? LockClass::Global(name)
                                        : LockClass::Same(name, "inode"));
      }
      uint32_t seq_id = store.InternSeq(seq);
      uint64_t count = 1 + rng.Below(20);
      for (uint64_t n = 0; n < count; ++n) {
        ObservationGroup group;
        group.lockseq_id = seq_id;
        group.txn_id = txn++;
        group.alloc_id = 0;
        if (rng.Below(4) == 0) {
          group.n_reads = 1;
        } else {
          group.n_writes = 1;
        }
        group.seqs.push_back(txn);
        groups.push_back(std::move(group));
      }
    }
  }
  return store;
}

class DerivatorDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DerivatorDifferentialTest, InternedPathMatchesStringReference) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 13);
  std::vector<MemberObsKey> keys;
  ObservationStore store = RandomStore(rng, 4, &keys);

  std::vector<DerivatorOptions> option_sets(4);
  option_sets[1].accept_threshold = 0.6;
  option_sets[1].cutoff_threshold = 0.3;
  option_sets[2].enumerate_permutations = true;
  option_sets[2].max_permutation_size = 3;
  option_sets[3].max_subset_locks = 2;  // Forces the bounded fallback.

  for (const DerivatorOptions& options : option_sets) {
    RuleDerivator derivator(options);
    for (const MemberObsKey& key : keys) {
      for (AccessType access : {AccessType::kRead, AccessType::kWrite}) {
        ExpectSameResult(ReferenceDerive(store, key, access, options),
                         derivator.Derive(store, key, access));
      }
    }
  }
}

TEST_P(DerivatorDifferentialTest, DeriveAllMatchesStringReferenceAtAnyJobCount) {
  // DeriveAll shards work items over the pool and shares the enumeration
  // cache across threads (call_once per entry) — running this under TSan is
  // the race check for the cache, and the comparison against the serial
  // string reference is the determinism check.
  Rng rng(static_cast<uint64_t>(GetParam()) * 40499 + 7);
  std::vector<MemberObsKey> keys;
  ObservationStore store = RandomStore(rng, 6, &keys);
  RuleDerivator derivator;

  std::vector<DerivationResult> reference;
  for (const auto& [key, groups] : store.groups()) {
    for (AccessType access : {AccessType::kRead, AccessType::kWrite}) {
      DerivationResult result = ReferenceDerive(store, key, access, derivator.options());
      if (result.observed()) {
        reference.push_back(std::move(result));
      }
    }
  }

  for (size_t jobs : {size_t{1}, size_t{4}}) {
    ThreadPool pool(jobs);
    std::vector<DerivationResult> got = derivator.DeriveAll(store, &pool);
    ASSERT_EQ(reference.size(), got.size()) << "jobs=" << jobs;
    for (size_t i = 0; i < reference.size(); ++i) {
      ExpectSameResult(reference[i], got[i]);
    }
  }
}

TEST(DerivatorDifferentialTest, IdEnumerationMirrorsStringEnumeration) {
  // The id enumeration must produce exactly the interned forms of the
  // string enumeration, both on the full-powerset path and on the bounded
  // fallback (max_locks below the sequence length).
  Rng rng(53);
  for (int trial = 0; trial < 50; ++trial) {
    LockClassPool pool;
    LockSeq seq;
    size_t depth = rng.Below(7);
    for (size_t d = 0; d < depth; ++d) {
      seq.push_back(LockClass::Global(StrFormat("g%d", static_cast<int>(rng.Below(4)))));
    }
    IdSeq ids = pool.InternSeq(seq);
    for (size_t max_locks : {size_t{2}, size_t{10}}) {
      std::vector<IdSeq> got = EnumerateSubsequenceIds(ids, max_locks);
      std::vector<IdSeq> expected;
      for (const LockSeq& sub : EnumerateSubsequences(seq, max_locks)) {
        std::optional<IdSeq> sub_ids = pool.FindSeq(sub);
        ASSERT_TRUE(sub_ids.has_value());
        expected.push_back(*sub_ids);
      }
      std::sort(expected.begin(), expected.end());
      expected.erase(std::unique(expected.begin(), expected.end()), expected.end());
      EXPECT_EQ(got, expected) << LockSeqToString(seq) << " max_locks=" << max_locks;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivatorDifferentialTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace lockdoc
