// Property sweeps over the derivator's threshold behaviour — the laws
// behind the paper's Fig. 7.
#include <gtest/gtest.h>

#include "src/core/derivator.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

// A random observation store for one member: a few distinct lock
// combinations with random counts, plus optional lock-free observations.
ObservationStore RandomStore(Rng& rng, MemberObsKey* key_out) {
  ObservationStore store;
  MemberObsKey key;
  key.type = 1;
  key.subclass = kNoSubclass;
  key.member = 0;
  *key_out = key;
  auto& groups = store.MutableGroups(key);
  uint64_t txn = 0;
  size_t kinds = 1 + rng.Below(5);
  for (size_t i = 0; i < kinds; ++i) {
    LockSeq seq;
    size_t depth = rng.Below(4);
    for (size_t d = 0; d < depth; ++d) {
      seq.push_back(LockClass::Global(StrFormat("g%d", static_cast<int>(rng.Below(6)))));
    }
    uint32_t seq_id = store.InternSeq(seq);
    uint64_t count = 1 + rng.Below(40);
    for (uint64_t n = 0; n < count; ++n) {
      ObservationGroup group;
      group.lockseq_id = seq_id;
      group.txn_id = txn++;
      group.alloc_id = 0;
      group.n_writes = 1;
      group.seqs.push_back(txn);
      groups.push_back(std::move(group));
    }
  }
  return store;
}

class DerivatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DerivatorPropertyTest, NoLockWinnerIsMonotoneInThreshold) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 65537 + 3);
  MemberObsKey key;
  ObservationStore store = RandomStore(rng, &key);

  bool was_no_lock = false;
  for (double tac : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0}) {
    DerivatorOptions options;
    options.accept_threshold = tac;
    RuleDerivator derivator(options);
    DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
    ASSERT_TRUE(result.winner.has_value());
    bool is_no_lock = result.winner_is_no_lock();
    // Once "no lock" wins at some threshold, it wins at every higher one
    // (raising tac only disqualifies lock hypotheses).
    if (was_no_lock) {
      EXPECT_TRUE(is_no_lock) << "tac=" << tac;
    }
    was_no_lock = is_no_lock;
  }
}

TEST_P(DerivatorPropertyTest, WinnerSupportNeverBelowThreshold) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 40503 + 17);
  MemberObsKey key;
  ObservationStore store = RandomStore(rng, &key);
  for (double tac : {0.55, 0.75, 0.9, 1.0}) {
    DerivatorOptions options;
    options.accept_threshold = tac;
    RuleDerivator derivator(options);
    DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
    EXPECT_GE(result.winner->sr + 1e-12, tac);
  }
}

TEST_P(DerivatorPropertyTest, WinnerSupportIsNonDecreasingInThreshold) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7 + 29);
  MemberObsKey key;
  ObservationStore store = RandomStore(rng, &key);
  double last_sr = 0.0;
  for (double tac : {0.5, 0.7, 0.9, 1.0}) {
    DerivatorOptions options;
    options.accept_threshold = tac;
    RuleDerivator derivator(options);
    DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
    // The winner is the minimum-support acceptable hypothesis; shrinking the
    // acceptable set (raising tac) can only raise that minimum.
    EXPECT_GE(result.winner->sr + 1e-12, last_sr);
    last_sr = result.winner->sr;
  }
}

TEST_P(DerivatorPropertyTest, SubsequenceClosureOfSupport) {
  // Dropping locks from a hypothesis never lowers its support: for every
  // reported hypothesis, each of its sub-hypotheses that is also reported
  // has sa at least as large.
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  MemberObsKey key;
  ObservationStore store = RandomStore(rng, &key);
  RuleDerivator derivator;
  DerivationResult result = derivator.Derive(store, key, AccessType::kWrite);
  for (const Hypothesis& a : result.hypotheses) {
    for (const Hypothesis& b : result.hypotheses) {
      if (IsSubsequence(a.locks, b.locks)) {
        EXPECT_GE(a.sa, b.sa) << LockSeqToString(a.locks) << " subset of "
                              << LockSeqToString(b.locks);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DerivatorPropertyTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace lockdoc
