#include "src/core/rule_diff.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

DerivationResult MakeResult(TypeId type, MemberIndex member, AccessType access,
                            const LockSeq& winner, double sr = 1.0) {
  DerivationResult result;
  result.key.type = type;
  result.key.subclass = kNoSubclass;
  result.key.member = member;
  result.access = access;
  result.total = 10;
  Hypothesis hypothesis;
  hypothesis.locks = winner;
  hypothesis.sa = static_cast<uint64_t>(sr * 10);
  hypothesis.sr = sr;
  result.winner = hypothesis;
  return result;
}

const LockClass kA = LockClass::Global("a");
const LockClass kB = LockClass::Global("b");

TEST(RuleDiffTest, DetectsChange) {
  std::vector<DerivationResult> old_rules = {MakeResult(0, 0, AccessType::kWrite, {kA}, 1.0)};
  std::vector<DerivationResult> new_rules = {MakeResult(0, 0, AccessType::kWrite, {kA, kB}, 0.95)};
  auto drifts = DiffRules(old_rules, new_rules);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].kind, RuleDriftKind::kChanged);
  EXPECT_EQ(drifts[0].old_rule, (LockSeq{kA}));
  EXPECT_EQ(drifts[0].new_rule, (LockSeq{kA, kB}));
  EXPECT_DOUBLE_EQ(drifts[0].old_sr, 1.0);
  EXPECT_DOUBLE_EQ(drifts[0].new_sr, 0.95);
}

TEST(RuleDiffTest, DetectsAddedAndRemoved) {
  std::vector<DerivationResult> old_rules = {MakeResult(0, 0, AccessType::kWrite, {kA})};
  std::vector<DerivationResult> new_rules = {MakeResult(0, 1, AccessType::kWrite, {kB})};
  auto drifts = DiffRules(old_rules, new_rules);
  ASSERT_EQ(drifts.size(), 2u);
  EXPECT_EQ(drifts[0].kind, RuleDriftKind::kRemoved);
  EXPECT_EQ(drifts[0].key.member, MemberIndex{0});
  EXPECT_EQ(drifts[1].kind, RuleDriftKind::kAdded);
  EXPECT_EQ(drifts[1].key.member, MemberIndex{1});
}

TEST(RuleDiffTest, UnchangedHiddenByDefault) {
  std::vector<DerivationResult> rules = {MakeResult(0, 0, AccessType::kRead, {kA})};
  EXPECT_TRUE(DiffRules(rules, rules).empty());
  RuleDiffOptions options;
  options.include_unchanged = true;
  auto drifts = DiffRules(rules, rules, options);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].kind, RuleDriftKind::kUnchanged);
}

TEST(RuleDiffTest, AccessTypesAreIndependent) {
  std::vector<DerivationResult> old_rules = {MakeResult(0, 0, AccessType::kRead, {kA}),
                                             MakeResult(0, 0, AccessType::kWrite, {kA})};
  std::vector<DerivationResult> new_rules = {MakeResult(0, 0, AccessType::kRead, {kA}),
                                             MakeResult(0, 0, AccessType::kWrite, {})};
  auto drifts = DiffRules(old_rules, new_rules);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].access, AccessType::kWrite);
  EXPECT_TRUE(drifts[0].new_rule.empty());
}

TEST(RuleDiffTest, RenderMentionsMemberAndSymbols) {
  TypeRegistry registry;
  auto layout = std::make_unique<TypeLayout>("widget");
  layout->AddMember("field", 8);
  layout->AddMember("other", 8);
  TypeId type = registry.Register(std::move(layout));

  std::vector<DerivationResult> old_rules = {MakeResult(type, 0, AccessType::kWrite, {kA})};
  std::vector<DerivationResult> new_rules = {MakeResult(type, 0, AccessType::kWrite, {kB}),
                                             MakeResult(type, 1, AccessType::kRead, {})};
  std::string text = RenderRuleDiff(DiffRules(old_rules, new_rules), registry);
  EXPECT_NE(text.find("~ widget.field w: a -> b"), std::string::npos);
  EXPECT_NE(text.find("+ widget.other r: no lock"), std::string::npos);
}

}  // namespace
}  // namespace lockdoc
