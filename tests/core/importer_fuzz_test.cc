// Randomized property test: for arbitrary interleavings of lock
// acquisitions, out-of-order releases, and member accesses, the importer's
// reconstructed transaction for every access must carry EXACTLY the locks
// held at that access, in acquisition order — checked against an
// independently maintained oracle.
#include <gtest/gtest.h>

#include "src/db/schema.h"
#include "src/util/rng.h"
#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

class ImporterFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ImporterFuzzTest, TransactionLockSetsMatchOracle) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  TestWorld world;

  // A pool of global locks to interleave freely.
  std::vector<GlobalLock> pool;
  for (int i = 0; i < 6; ++i) {
    pool.push_back(world.sim->DefineStaticLock("fuzz_" + std::to_string(i),
                                               LockType::kSpinlock));
  }

  FunctionScope fn(*world.sim, "fuzz.c", "fuzz", 1, 100);
  ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);

  // Oracle: indices into `pool`, in acquisition order.
  std::vector<size_t> held;
  // Expected ordered lock names at each access, in trace order.
  std::vector<std::vector<std::string>> expected;

  for (int step = 0; step < 600; ++step) {
    uint64_t action = rng.Below(100);
    if (action < 35) {
      // Acquire a random not-held lock.
      std::vector<size_t> candidates;
      for (size_t i = 0; i < pool.size(); ++i) {
        if (std::find(held.begin(), held.end(), i) == held.end()) {
          candidates.push_back(i);
        }
      }
      if (!candidates.empty()) {
        size_t pick = candidates[rng.Below(candidates.size())];
        world.sim->LockGlobal(pool[pick], 10);
        held.push_back(pick);
      }
    } else if (action < 65) {
      // Release a random held lock — deliberately NOT LIFO.
      if (!held.empty()) {
        size_t index = rng.Below(held.size());
        world.sim->UnlockGlobal(pool[held[index]], 20);
        held.erase(held.begin() + static_cast<ptrdiff_t>(index));
      }
    } else {
      // Access; record the oracle's view.
      world.sim->Write(obj, world.data, 30);
      std::vector<std::string> names;
      for (size_t index : held) {
        names.push_back("fuzz_" + std::to_string(index));
      }
      expected.push_back(std::move(names));
    }
  }
  for (size_t index : held) {
    world.sim->UnlockGlobal(pool[index], 90);
  }
  world.sim->Destroy(obj, 99);
  world.sim->CheckQuiescent();

  // Import and compare every access's transaction lock list to the oracle.
  Database db;
  world.Import(&db);
  const Table& accesses = db.table(LockDocSchema::kAccesses);
  const Table& txns = db.table(LockDocSchema::kTxns);
  const Table& txn_locks = db.table(LockDocSchema::kTxnLocks);
  const Table& locks = db.table(LockDocSchema::kLocks);
  const size_t kTxnCol = accesses.ColumnIndex("txn_id");
  const size_t kTlTxn = txn_locks.ColumnIndex("txn_id");
  const size_t kTlPos = txn_locks.ColumnIndex("position");
  const size_t kTlLock = txn_locks.ColumnIndex("lock_id");
  const size_t kLockName = locks.ColumnIndex("name_sid");

  ASSERT_EQ(accesses.row_count(), expected.size());
  for (RowId row = 0; row < accesses.row_count(); ++row) {
    uint64_t txn = accesses.GetUint64(row, kTxnCol);
    ASSERT_NE(txn, kDbNull);
    EXPECT_EQ(txns.GetUint64(txn, txns.ColumnIndex("n_locks")), expected[row].size());

    std::vector<std::string> actual(expected[row].size());
    for (RowId tl_row : txn_locks.LookupEqual(kTlTxn, txn)) {
      uint64_t pos = txn_locks.GetUint64(tl_row, kTlPos);
      ASSERT_LT(pos, actual.size());
      uint64_t lock_row = txn_locks.GetUint64(tl_row, kTlLock);
      actual[pos] =
          world.trace.String(static_cast<StringId>(locks.GetUint64(lock_row, kLockName)));
    }
    EXPECT_EQ(actual, expected[row]) << "access " << row;
  }
}

TEST_P(ImporterFuzzTest, NestedResumptionSharesTransactionIds) {
  // With strictly LIFO nesting, accesses under the same outer lock before
  // and after a nested section share one transaction id.
  Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 1);
  TestWorld world;
  FunctionScope fn(*world.sim, "fuzz.c", "nest", 1, 100);
  ObjectRef obj = world.sim->Create(world.type, kNoSubclass, 1);

  world.sim->LockGlobal(world.global_a, 2);
  world.sim->Write(obj, world.data, 3);  // Access 0.
  size_t nestings = 1 + rng.Below(4);
  for (size_t i = 0; i < nestings; ++i) {
    world.sim->Lock(obj, world.spin, 4);
    world.sim->Write(obj, world.data, 5);  // Nested access.
    world.sim->Unlock(obj, world.spin, 6);
    world.sim->Write(obj, world.data, 7);  // Resumed access.
  }
  world.sim->UnlockGlobal(world.global_a, 8);
  world.sim->Destroy(obj, 9);

  Database db;
  world.Import(&db);
  const Table& accesses = db.table(LockDocSchema::kAccesses);
  const size_t kTxnCol = accesses.ColumnIndex("txn_id");
  uint64_t outer = accesses.GetUint64(0, kTxnCol);
  for (size_t i = 0; i < nestings; ++i) {
    uint64_t nested = accesses.GetUint64(1 + 2 * i, kTxnCol);
    uint64_t resumed = accesses.GetUint64(2 + 2 * i, kTxnCol);
    EXPECT_NE(nested, outer);
    EXPECT_EQ(resumed, outer);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImporterFuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace lockdoc
