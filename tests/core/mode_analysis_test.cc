#include "src/core/mode_analysis.h"

#include <gtest/gtest.h>

#include "tests/core/test_helpers.h"

namespace lockdoc {
namespace {

struct ModeWorld {
  TestWorld world;
  Database db;
  ObservationStore store;
  std::vector<DerivationResult> rules;

  void Finish() {
    world.Import(&db);
    store = ExtractObservations(db, *world.registry);
    RuleDerivator derivator;
    rules = derivator.DeriveAll(store);
  }
};

TEST(ModeAnalysisTest, ExclusiveOnlyWritesAreNotSuspicious) {
  ModeWorld m;
  {
    FunctionScope fn(*m.world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = m.world.sim->Create(m.world.type, kNoSubclass, 1);
    GlobalLock sem = m.world.sim->DefineStaticLock("sem", LockType::kRwSemaphore);
    for (int i = 0; i < 5; ++i) {
      m.world.sim->LockGlobal(sem, 2);  // Exclusive by default.
      m.world.sim->Write(obj, m.world.data, 3);
      m.world.sim->UnlockGlobal(sem, 4);
    }
    m.world.sim->Destroy(obj, 5);
  }
  m.Finish();
  ModeAnalyzer analyzer(&m.db, m.world.registry.get(), &m.store);
  auto entries = analyzer.Analyze(m.rules);
  ASSERT_FALSE(entries.empty());
  for (const ModeReportEntry& entry : entries) {
    EXPECT_FALSE(entry.suspicious);
  }
  EXPECT_TRUE(analyzer.FindSharedModeWrites(m.rules).empty());
}

TEST(ModeAnalysisTest, WriteUnderSharedHoldIsFlagged) {
  ModeWorld m;
  {
    FunctionScope fn(*m.world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = m.world.sim->Create(m.world.type, kNoSubclass, 1);
    GlobalLock sem = m.world.sim->DefineStaticLock("sem", LockType::kRwSemaphore);
    for (int i = 0; i < 4; ++i) {
      m.world.sim->LockGlobal(sem, 2);
      m.world.sim->Write(obj, m.world.data, 3);
      m.world.sim->UnlockGlobal(sem, 4);
    }
    // One write under a merely-shared hold: the rule is satisfied, but the
    // mode is wrong.
    m.world.sim->LockGlobal(sem, 5, AcquireMode::kShared);
    m.world.sim->Write(obj, m.world.data, 6);
    m.world.sim->UnlockGlobal(sem, 7);
    m.world.sim->Destroy(obj, 8);
  }
  m.Finish();
  ModeAnalyzer analyzer(&m.db, m.world.registry.get(), &m.store);
  auto suspicious = analyzer.FindSharedModeWrites(m.rules);
  ASSERT_EQ(suspicious.size(), 1u);
  ASSERT_EQ(suspicious[0].usages.size(), 1u);
  EXPECT_EQ(suspicious[0].usages[0].shared, 1u);
  EXPECT_EQ(suspicious[0].usages[0].exclusive, 4u);
  EXPECT_NEAR(suspicious[0].usages[0].shared_fraction(), 0.2, 1e-9);

  std::string text = analyzer.Render(suspicious);
  EXPECT_NE(text.find("write under shared hold"), std::string::npos);
  EXPECT_NE(text.find("shared=1 exclusive=4"), std::string::npos);
}

TEST(ModeAnalysisTest, SharedReadsAreFine) {
  ModeWorld m;
  {
    FunctionScope fn(*m.world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = m.world.sim->Create(m.world.type, kNoSubclass, 1);
    GlobalLock sem = m.world.sim->DefineStaticLock("sem", LockType::kRwSemaphore);
    for (int i = 0; i < 5; ++i) {
      m.world.sim->LockGlobal(sem, 2, AcquireMode::kShared);
      m.world.sim->Read(obj, m.world.data, 3);
      m.world.sim->UnlockGlobal(sem, 4);
    }
    m.world.sim->Destroy(obj, 5);
  }
  m.Finish();
  ModeAnalyzer analyzer(&m.db, m.world.registry.get(), &m.store);
  auto entries = analyzer.Analyze(m.rules);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].access, AccessType::kRead);
  EXPECT_FALSE(entries[0].suspicious);
  EXPECT_EQ(entries[0].usages[0].shared, 5u);
}

TEST(ModeAnalysisTest, NoLockWinnersAreSkipped) {
  ModeWorld m;
  {
    FunctionScope fn(*m.world.sim, "t.c", "f", 1, 50);
    ObjectRef obj = m.world.sim->Create(m.world.type, kNoSubclass, 1);
    m.world.sim->Write(obj, m.world.data, 2);
    m.world.sim->Destroy(obj, 3);
  }
  m.Finish();
  ModeAnalyzer analyzer(&m.db, m.world.registry.get(), &m.store);
  EXPECT_TRUE(analyzer.Analyze(m.rules).empty());
}

}  // namespace
}  // namespace lockdoc
