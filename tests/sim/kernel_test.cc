#include "src/sim/kernel.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

struct SimFixture {
  SimFixture() {
    auto obj_layout = std::make_unique<TypeLayout>("obj");
    lock_member = obj_layout->AddLockMember("lock", LockType::kSpinlock);
    mutex_member = obj_layout->AddLockMember("mtx", LockType::kMutex);
    data_member = obj_layout->AddMember("data", 8);
    atomic_member = obj_layout->AddAtomicMember("count", 4);
    range_member = obj_layout->AddLockMember("rng_lock", LockType::kRangeLock);
    type = registry.Register(std::move(obj_layout));
    sim = std::make_unique<SimKernel>(&trace, &registry);
  }

  TypeRegistry registry;
  Trace trace;
  TypeId type = kInvalidTypeId;
  MemberIndex lock_member = kInvalidMember;
  MemberIndex mutex_member = kInvalidMember;
  MemberIndex data_member = kInvalidMember;
  MemberIndex atomic_member = kInvalidMember;
  MemberIndex range_member = kInvalidMember;
  std::unique_ptr<SimKernel> sim;
};

TEST(SimKernelTest, CreateEmitsAllocWithLayoutSize) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 5);
  EXPECT_TRUE(obj.valid());
  const TraceEvent& last = f.trace.event(f.trace.size() - 1);
  EXPECT_EQ(last.kind, EventKind::kAlloc);
  EXPECT_EQ(last.size, f.registry.layout(f.type).size());
  EXPECT_EQ(last.addr, obj.addr);
}

TEST(SimKernelTest, AddressReuseAfterFree) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef a = f.sim->Create(f.type, kNoSubclass, 1);
  Address first = a.addr;
  f.sim->Destroy(a, 2);
  ObjectRef b = f.sim->Create(f.type, kNoSubclass, 3);
  EXPECT_EQ(b.addr, first);  // Freed addresses are recycled.
}

TEST(SimKernelTest, DistinctLiveObjectsDoNotOverlap) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef a = f.sim->Create(f.type, kNoSubclass, 1);
  ObjectRef b = f.sim->Create(f.type, kNoSubclass, 2);
  uint32_t size = f.registry.layout(f.type).size();
  EXPECT_TRUE(a.addr + size <= b.addr || b.addr + size <= a.addr);
}

TEST(SimKernelTest, MemberAccessEmitsOffsetAddress) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->Read(obj, f.data_member, 7);
  const TraceEvent& read = f.trace.event(f.trace.size() - 1);
  EXPECT_EQ(read.kind, EventKind::kMemRead);
  EXPECT_EQ(read.addr, obj.addr + f.registry.layout(f.type).member(f.data_member).offset);
  EXPECT_EQ(read.loc.line, 7u);
  EXPECT_EQ(f.trace.String(read.loc.file), "x.c");
}

TEST(SimKernelTest, LockUnlockTracksHeldCount) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  EXPECT_EQ(f.sim->held_lock_count(), 0u);
  f.sim->Lock(obj, f.lock_member, 2);
  EXPECT_EQ(f.sim->held_lock_count(), 1u);
  EXPECT_TRUE(f.sim->IsHeld(obj, f.lock_member));
  f.sim->Unlock(obj, f.lock_member, 3);
  EXPECT_EQ(f.sim->held_lock_count(), 0u);
  f.sim->CheckQuiescent();
}

TEST(SimKernelTest, PseudoLocksNest) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  size_t before = f.trace.size();
  f.sim->RcuReadLock(1);
  f.sim->RcuReadLock(2);  // Nested: no second acquire event.
  EXPECT_EQ(f.sim->held_lock_count(), 1u);
  EXPECT_EQ(f.trace.size(), before + 1);
  f.sim->RcuReadUnlock(3);
  EXPECT_EQ(f.sim->held_lock_count(), 1u);  // Still held once.
  f.sim->RcuReadUnlock(4);
  EXPECT_EQ(f.sim->held_lock_count(), 0u);
  EXPECT_EQ(f.trace.size(), before + 2);  // One acquire + one release.
}

TEST(SimKernelTest, TryLockFailsWhenHeld) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  EXPECT_TRUE(f.sim->TryLock(obj, f.lock_member, 2));
  EXPECT_FALSE(f.sim->TryLock(obj, f.lock_member, 3));
  f.sim->Unlock(obj, f.lock_member, 4);
  EXPECT_TRUE(f.sim->TryLock(obj, f.lock_member, 5));
  f.sim->Unlock(obj, f.lock_member, 6);
}

TEST(SimKernelTest, GlobalLockDefEmitsNameEvent) {
  SimFixture f;
  GlobalLock lock = f.sim->DefineStaticLock("my_lock", LockType::kMutex);
  bool found = false;
  for (const TraceEvent& e : f.trace.events()) {
    if (e.kind == EventKind::kStaticLockDef && f.trace.String(e.name) == "my_lock") {
      found = true;
      EXPECT_EQ(e.addr, lock.addr);
      EXPECT_EQ(e.lock_type, LockType::kMutex);
    }
  }
  EXPECT_TRUE(found);
}

TEST(SimKernelTest, StackCapturedInnermostFirst) {
  SimFixture f;
  FunctionScope outer(*f.sim, "a.c", "outer", 1, 50);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  {
    FunctionScope inner(*f.sim, "b.c", "inner", 1, 20);
    f.sim->Write(obj, f.data_member, 5);
  }
  const TraceEvent& write = f.trace.event(f.trace.size() - 1);
  ASSERT_NE(write.stack, kInvalidStack);
  EXPECT_EQ(f.trace.FormatStack(write.stack), "inner <- outer");
  // The innermost file becomes the location file.
  EXPECT_EQ(f.trace.String(write.loc.file), "b.c");
}

TEST(SimKernelTest, AtomicAccessorsRunInBlacklistedFrames) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->AtomicRead(obj, f.atomic_member, 5);
  const TraceEvent& read = f.trace.event(f.trace.size() - 1);
  EXPECT_EQ(f.trace.Stack(read.stack).frames[0], *f.trace.string_pool().Find("atomic_read"));
}

TEST(SimKernelTest, InterruptContextNesting) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  EXPECT_EQ(f.sim->current_context(), ContextKind::kTask);

  bool ran = false;
  f.sim->RunInInterrupt(ContextKind::kSoftirq, [&](SimKernel& sim) {
    ran = true;
    EXPECT_EQ(sim.current_context(), ContextKind::kSoftirq);
    EXPECT_TRUE(sim.in_interrupt());
    sim.Read(obj, f.data_member, 7);
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(f.sim->current_context(), ContextKind::kTask);
  const TraceEvent& read = f.trace.event(f.trace.size() - 2);  // Before pseudo unlock.
  EXPECT_EQ(read.kind, EventKind::kMemRead);
  EXPECT_EQ(read.context, ContextKind::kSoftirq);
}

TEST(SimKernelTest, InterruptHoldsPseudoLock) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  f.sim->RunInInterrupt(ContextKind::kHardirq, [&](SimKernel& sim) {
    EXPECT_EQ(sim.held_lock_count(), 1u);  // The synthetic hardirq lock.
  });
  EXPECT_EQ(f.sim->held_lock_count(), 0u);
}

TEST(SimKernelTest, RandomInterruptsFire) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  int fires = 0;
  f.sim->RegisterSoftirq([&](SimKernel&) { ++fires; });
  f.sim->SetInterruptRate(0.5, 42);
  for (int i = 0; i < 100; ++i) {
    f.sim->Write(obj, f.data_member, 5);
  }
  EXPECT_GT(fires, 10);
  f.sim->SetInterruptRate(0.0, 0);
}

TEST(SimKernelTest, SharedModeRecordedInTrace) {
  SimFixture f;
  GlobalLock rwsem = f.sim->DefineStaticLock("sem", LockType::kRwSemaphore);
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  f.sim->LockGlobal(rwsem, 2, AcquireMode::kShared);
  const TraceEvent& acquire = f.trace.event(f.trace.size() - 1);
  EXPECT_EQ(acquire.mode, AcquireMode::kShared);
  f.sim->UnlockGlobal(rwsem, 3);
}

TEST(SimKernelTest, CreateWithSpanRecordsGroundTruthRange) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->CreateWithSpan(f.type, kNoSubclass, 0x10000, 0x14000, 5);
  const TraceEvent& alloc = f.trace.event(f.trace.size() - 1);
  EXPECT_EQ(alloc.kind, EventKind::kAlloc);
  EXPECT_TRUE(alloc.has_range);
  EXPECT_EQ(alloc.range_start, 0x10000u);
  EXPECT_EQ(alloc.range_end, 0x14000u);
  f.sim->Destroy(obj, 6);
}

TEST(SimKernelTest, AcquireRangeEmitsRangedEvents) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->AcquireRange(obj, f.range_member, 0x1000, 0x2000, 2);
  const TraceEvent& acquire = f.trace.event(f.trace.size() - 1);
  EXPECT_EQ(acquire.kind, EventKind::kLockAcquire);
  EXPECT_EQ(acquire.lock_type, LockType::kRangeLock);
  EXPECT_TRUE(acquire.has_range);
  EXPECT_EQ(acquire.range_start, 0x1000u);
  EXPECT_EQ(acquire.range_end, 0x2000u);
  f.sim->ReleaseRange(obj, f.range_member, 0x1000, 0x2000, 3);
  const TraceEvent& release = f.trace.event(f.trace.size() - 1);
  EXPECT_EQ(release.kind, EventKind::kLockRelease);
  EXPECT_TRUE(release.has_range);
  EXPECT_EQ(release.range_start, 0x1000u);
  EXPECT_EQ(release.range_end, 0x2000u);
  f.sim->Destroy(obj, 4);
}

TEST(SimKernelTest, DisjointRangeHoldsOfOneInstanceCoexist) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->AcquireRange(obj, f.range_member, 0x1000, 0x2000, 2);
  f.sim->AcquireRange(obj, f.range_member, 0x3000, 0x4000, 3);  // Disjoint: legal.
  f.sim->AcquireRange(obj, f.range_member, 0x2000, 0x3000, 4);  // Adjacent: legal.
  f.sim->ReleaseRange(obj, f.range_member, 0x1000, 0x2000, 5);
  f.sim->ReleaseRange(obj, f.range_member, 0x2000, 0x3000, 6);
  f.sim->ReleaseRange(obj, f.range_member, 0x3000, 0x4000, 7);
  f.sim->Destroy(obj, 8);
}

TEST(SimKernelTest, OverlappingSharedRangeHoldsCoexist) {
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->AcquireRange(obj, f.range_member, 0x1000, 0x3000, 2, AcquireMode::kShared);
  f.sim->AcquireRange(obj, f.range_member, 0x2000, 0x4000, 3, AcquireMode::kShared);
  f.sim->ReleaseRange(obj, f.range_member, 0x2000, 0x4000, 4);
  f.sim->ReleaseRange(obj, f.range_member, 0x1000, 0x3000, 5);
  f.sim->Destroy(obj, 6);
}

TEST(SimKernelDeathTest, OverlappingExclusiveRangeHoldsAbort) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->AcquireRange(obj, f.range_member, 0x1000, 0x3000, 2);
  // A second exclusive hold over an overlapping span would self-deadlock.
  EXPECT_DEATH(f.sim->AcquireRange(obj, f.range_member, 0x2000, 0x4000, 3), "CHECK failed");
}

TEST(SimKernelDeathTest, ReleaseOfUnmatchedSpanAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->AcquireRange(obj, f.range_member, 0x1000, 0x2000, 2);
  // Releases must name the exact acquired span, not a sub-span.
  EXPECT_DEATH(f.sim->ReleaseRange(obj, f.range_member, 0x1000, 0x1800, 3), "CHECK failed");
}

TEST(SimKernelDeathTest, EmptyRangeAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  EXPECT_DEATH(f.sim->AcquireRange(obj, f.range_member, 0x2000, 0x2000, 2), "CHECK failed");
}

TEST(SimKernelDeathTest, DoubleAcquireOfRealLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->Lock(obj, f.lock_member, 2);
  EXPECT_DEATH(f.sim->Lock(obj, f.lock_member, 3), "CHECK failed");
}

TEST(SimKernelDeathTest, BlockingLockInInterruptAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  EXPECT_DEATH(f.sim->RunInInterrupt(ContextKind::kHardirq,
                                     [&](SimKernel& sim) { sim.Lock(obj, f.mutex_member, 5); }),
               "CHECK failed");
}

TEST(SimKernelDeathTest, ReleaseOfUnheldLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  EXPECT_DEATH(f.sim->Unlock(obj, f.lock_member, 2), "CHECK failed");
}

TEST(SimKernelDeathTest, DestroyWithHeldEmbeddedLockAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  SimFixture f;
  FunctionScope fn(*f.sim, "x.c", "f", 1, 10);
  ObjectRef obj = f.sim->Create(f.type, kNoSubclass, 1);
  f.sim->Lock(obj, f.lock_member, 2);
  EXPECT_DEATH(f.sim->Destroy(obj, 3), "CHECK failed");
}

}  // namespace
}  // namespace lockdoc
