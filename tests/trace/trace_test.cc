#include "src/trace/trace.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(TraceTest, AppendAssignsSequentialSeq) {
  Trace trace;
  TraceEvent event;
  event.kind = EventKind::kAlloc;
  EXPECT_EQ(trace.Append(event), 0u);
  EXPECT_EQ(trace.Append(event), 1u);
  EXPECT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.event(1).seq, 1u);
}

TEST(TraceTest, StackInterningDeduplicates) {
  Trace trace;
  CallStack stack;
  stack.frames = {trace.InternString("inner"), trace.InternString("outer")};
  StackId a = trace.InternStack(stack);
  StackId b = trace.InternStack(stack);
  EXPECT_EQ(a, b);
  EXPECT_EQ(trace.stack_count(), 1u);

  CallStack other;
  other.frames = {trace.InternString("outer")};
  EXPECT_NE(trace.InternStack(other), a);
}

TEST(TraceTest, FormatLocRendersFileAndLine) {
  Trace trace;
  SourceLoc loc;
  loc.file = trace.InternString("fs/inode.c");
  loc.line = 507;
  EXPECT_EQ(trace.FormatLoc(loc), "fs/inode.c:507");
}

TEST(TraceTest, FormatStackInnermostFirst) {
  Trace trace;
  CallStack stack;
  stack.frames = {trace.InternString("__remove_inode_hash"), trace.InternString("vfs_unlink")};
  StackId id = trace.InternStack(stack);
  EXPECT_EQ(trace.FormatStack(id), "__remove_inode_hash <- vfs_unlink");
  EXPECT_EQ(trace.FormatStack(kInvalidStack), "<no stack>");
}

TEST(EventKindTest, AccessHelpers) {
  TraceEvent read;
  read.kind = EventKind::kMemRead;
  TraceEvent write;
  write.kind = EventKind::kMemWrite;
  TraceEvent lock;
  lock.kind = EventKind::kLockAcquire;
  EXPECT_TRUE(IsMemAccess(read));
  EXPECT_TRUE(IsMemAccess(write));
  EXPECT_FALSE(IsMemAccess(lock));
  EXPECT_TRUE(IsLockOp(lock));
  EXPECT_EQ(AccessTypeOf(read), AccessType::kRead);
  EXPECT_EQ(AccessTypeOf(write), AccessType::kWrite);
}

TEST(EventKindTest, NamesAreDistinct) {
  EXPECT_EQ(EventKindName(EventKind::kAlloc), "alloc");
  EXPECT_EQ(EventKindName(EventKind::kStaticLockDef), "static_lock");
  EXPECT_EQ(ContextKindName(ContextKind::kSoftirq), "softirq");
}

}  // namespace
}  // namespace lockdoc
