// Fault-injection suite: several hundred deterministic corruptions of a
// realistic serialized trace, proving three properties of the ingestion
// path end to end:
//
//   1. No crash and no LOCKDOC_CHECK abort, ever — in the reader or in the
//      downstream pipeline fed with salvaged traces.
//   2. No silent mis-derivation: a strict read of damaged bytes either
//      fails or yields a trace identical to the original; a salvage read
//      either fails cleanly or flags the damage in its report.
//   3. Damage is survivable: truncating the tail still derives rules for
//      everything observed in the surviving prefix.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/trace/corruptor.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

struct Fixture {
  SimulationResult sim;
  std::string v1_bytes;
  std::string v2_bytes;
  TraceStats baseline;
};

const Fixture& GetFixture() {
  static const Fixture* fixture = [] {
    auto* f = new Fixture;
    MixOptions mix;
    mix.ops = 150;
    mix.seed = 11;
    f->sim = SimulateKernelRun(mix, FaultPlan::Clean());
    std::ostringstream v1;
    WriteTrace(f->sim.trace, v1, TraceFormat::kV1);
    f->v1_bytes = std::move(v1).str();
    std::ostringstream v2;
    WriteTrace(f->sim.trace, v2, TraceFormat::kV2);
    f->v2_bytes = std::move(v2).str();
    f->baseline = ComputeTraceStats(f->sim.trace);
    return f;
  }();
  return *fixture;
}

bool StatsEqual(const TraceStats& a, const TraceStats& b) {
  return a.total_events == b.total_events && a.lock_ops == b.lock_ops &&
         a.memory_accesses == b.memory_accesses && a.allocations == b.allocations &&
         a.deallocations == b.deallocations && a.static_lock_defs == b.static_lock_defs &&
         a.distinct_locks == b.distinct_locks;
}

// One corruption case. `checksummed` is true for v2 input: only the framed
// format can *guarantee* that silent value mutations are detected — v1 has
// no redundancy, so a bit flip inside an event payload can parse "validly"
// into different field values (which is precisely the motivation for v2).
// The no-crash / no-abort / consistent-report properties hold for both.
void RunCase(const std::string& clean_bytes, CorruptionKind kind, uint64_t seed,
             bool checksummed) {
  SCOPED_TRACE(std::string(CorruptionKindName(kind)) + " seed " + std::to_string(seed));
  const Fixture& fixture = GetFixture();
  std::string corrupted = CorruptTraceBytes(clean_bytes, kind, seed);
  ASSERT_NE(corrupted, clean_bytes);

  // Strict read: must fail, or (v2) reconstruct the original exactly.
  {
    std::istringstream in(corrupted);
    auto strict = ReadTrace(in);
    if (strict.ok() && checksummed) {
      EXPECT_TRUE(StatsEqual(ComputeTraceStats(strict.value()), fixture.baseline))
          << "strict read of corrupted bytes silently produced a different trace";
    }
  }

  // Salvage read: a clean failure is acceptable; success must (v2) either
  // flag the damage in the report or have recovered the identical trace.
  std::istringstream in(corrupted);
  TraceReadOptions options;
  options.salvage = true;
  TraceReadReport report;
  auto salvaged = ReadTrace(in, options, &report);
  if (!salvaged.ok()) {
    return;
  }
  TraceStats stats = ComputeTraceStats(salvaged.value());
  if (checksummed) {
    EXPECT_TRUE(!report.clean() || StatsEqual(stats, fixture.baseline))
        << "salvage reported a clean read but the trace differs";
  }
  EXPECT_EQ(report.events_salvaged, salvaged.value().size());
  EXPECT_LE(stats.total_events, fixture.baseline.total_events + report.frames_duplicate *
                                                                    kTraceEventsPerFrame);

  // The salvaged trace must survive the full pipeline: import, observation
  // extraction, rule derivation. Any LOCKDOC_CHECK abort kills the test
  // binary, so reaching the assertions below proves no abort happened.
  PipelineResult result = RunPipeline(salvaged.value(), *fixture.sim.registry);
  for (const DerivationResult& rule : result.rules) {
    EXPECT_GT(rule.total, 0u);
    EXPECT_TRUE(rule.winner.has_value());
  }
}

class CorruptionSuite : public ::testing::TestWithParam<CorruptionKind> {};

TEST_P(CorruptionSuite, V2FortySeedsEach) {
  const Fixture& fixture = GetFixture();
  for (uint64_t seed = 0; seed < 40; ++seed) {
    RunCase(fixture.v2_bytes, GetParam(), seed, /*checksummed=*/true);
  }
}

TEST_P(CorruptionSuite, V1TenSeedsEach) {
  const Fixture& fixture = GetFixture();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    RunCase(fixture.v1_bytes, GetParam(), seed, /*checksummed=*/false);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CorruptionSuite, ::testing::ValuesIn(kAllCorruptionKinds),
                         [](const ::testing::TestParamInfo<CorruptionKind>& info) {
                           std::string name = CorruptionKindName(info.param);
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

// Acceptance scenario: losing the trailing 10% of the archive must still
// yield derived rules (each with a winner) for the members observed in the
// surviving prefix.
TEST(CorruptionSuite, TruncatedTailStillDerivesRules) {
  const Fixture& fixture = GetFixture();
  std::string cut = fixture.v2_bytes.substr(0, fixture.v2_bytes.size() * 9 / 10);

  std::istringstream in(cut);
  TraceReadOptions options;
  options.salvage = true;
  TraceReadReport report;
  auto salvaged = ReadTrace(in, options, &report);
  ASSERT_TRUE(salvaged.ok()) << salvaged.status().ToString();
  EXPECT_TRUE(report.truncated);
  EXPECT_GT(report.events_salvaged, fixture.baseline.total_events / 2);

  PipelineResult result = RunPipeline(salvaged.value(), *fixture.sim.registry);
  EXPECT_FALSE(result.rules.empty());
  for (const DerivationResult& rule : result.rules) {
    EXPECT_GT(rule.total, 0u);
    ASSERT_TRUE(rule.winner.has_value());
  }
}

// Dropping a whole middle frame loses those events but keeps everything
// around it; the reader must account for the loss exactly.
TEST(CorruptionSuite, DroppedEventFrameIsCounted) {
  const Fixture& fixture = GetFixture();
  for (uint64_t seed = 0; seed < 10; ++seed) {
    std::string corrupted =
        CorruptTraceBytes(fixture.v2_bytes, CorruptionKind::kFrameDrop, seed);
    std::istringstream in(corrupted);
    TraceReadOptions options;
    options.salvage = true;
    TraceReadReport report;
    auto salvaged = ReadTrace(in, options, &report);
    if (!salvaged.ok()) {
      continue;  // Dropped the string table; unrecoverable is acceptable.
    }
    EXPECT_EQ(report.events_salvaged + report.events_dropped, fixture.baseline.total_events)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace lockdoc
