#include "src/trace/string_pool.h"

#include <gtest/gtest.h>

#include "src/util/string_util.h"

namespace lockdoc {
namespace {

TEST(StringPoolTest, IdZeroIsEmptyString) {
  StringPool pool;
  EXPECT_EQ(pool.Lookup(0), "");
  EXPECT_EQ(pool.Intern(""), 0u);
}

TEST(StringPoolTest, InternIsIdempotent) {
  StringPool pool;
  StringId a = pool.Intern("hello");
  StringId b = pool.Intern("hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.size(), 2u);  // "" + "hello".
}

TEST(StringPoolTest, LookupReturnsInterned) {
  StringPool pool;
  StringId id = pool.Intern("fs/inode.c");
  EXPECT_EQ(pool.Lookup(id), "fs/inode.c");
}

TEST(StringPoolTest, FindWithoutInterning) {
  StringPool pool;
  StringId id = pool.Intern("present");
  EXPECT_EQ(pool.Find("present"), id);
  EXPECT_FALSE(pool.Find("absent").has_value());
  EXPECT_EQ(pool.size(), 2u);  // Find must not intern.
}

TEST(StringPoolTest, ManyShortStringsSurviveReallocation) {
  // Regression guard: short strings are SSO-stored; the index must not keep
  // dangling views into moved string objects.
  StringPool pool;
  std::vector<StringId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(pool.Intern(StrFormat("s%d", i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(pool.Intern(StrFormat("s%d", i)), ids[static_cast<size_t>(i)]);
    EXPECT_EQ(pool.Lookup(ids[static_cast<size_t>(i)]), StrFormat("s%d", i));
  }
}

TEST(StringPoolTest, ResetRebuildsIndex) {
  StringPool pool;
  pool.Reset({"", "alpha", "beta"});
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.Lookup(1), "alpha");
  EXPECT_EQ(pool.Intern("beta"), 2u);
  EXPECT_EQ(pool.Intern("gamma"), 3u);
}

}  // namespace
}  // namespace lockdoc
