// Backward compatibility: traces archived in the v1 format must keep
// reading exactly, forever. The golden fixture was written by the v1-only
// writer (lockdoc simulate --ops 400 --seed 42) before the framed v2 format
// existed; the expected numbers below were recorded from that build.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"

namespace lockdoc {
namespace {

std::string GoldenPath() { return std::string(LOCKDOC_TESTDATA_DIR) + "/golden_v1.trace"; }

void ExpectGoldenStats(const Trace& trace) {
  TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.total_events, 17896u);
  EXPECT_EQ(stats.lock_ops, 4194u);
  EXPECT_EQ(stats.lock_acquires, 2097u);
  EXPECT_EQ(stats.lock_releases, 2097u);
  EXPECT_EQ(stats.memory_accesses, 13043u);
  EXPECT_EQ(stats.reads, 3213u);
  EXPECT_EQ(stats.writes, 9830u);
  EXPECT_EQ(stats.allocations, 323u);
  EXPECT_EQ(stats.deallocations, 323u);
  EXPECT_EQ(stats.static_lock_defs, 13u);
  EXPECT_EQ(stats.distinct_locks, 184u);
  EXPECT_EQ(stats.distinct_static_locks, 11u);
  EXPECT_EQ(stats.distinct_embedded_locks, 173u);
}

TEST(TraceCompatTest, GoldenV1TraceReadsExactly) {
  TraceReadReport report;
  auto loaded = ReadTraceFromFile(GoldenPath(), {}, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.format_version, 1u);
  EXPECT_TRUE(report.clean());
  ExpectGoldenStats(loaded.value());
}

TEST(TraceCompatTest, GoldenV1RoundTripsThroughV2) {
  auto loaded = ReadTraceFromFile(GoldenPath());
  ASSERT_TRUE(loaded.ok());
  std::ostringstream out;
  WriteTrace(loaded.value(), out, TraceFormat::kV2);
  std::istringstream in(out.str());
  TraceReadReport report;
  auto restored = ReadTrace(in, {}, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(report.format_version, 2u);
  EXPECT_TRUE(report.clean());
  ExpectGoldenStats(restored.value());
}

TEST(TraceCompatTest, V1RewriteIsByteIdentical) {
  std::ifstream file(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(file.is_open());
  std::ostringstream original;
  original << file.rdbuf();

  std::istringstream in(original.str());
  auto loaded = ReadTrace(in);
  ASSERT_TRUE(loaded.ok());
  std::ostringstream rewritten;
  WriteTrace(loaded.value(), rewritten, TraceFormat::kV1);
  EXPECT_EQ(rewritten.str(), original.str());
}

}  // namespace
}  // namespace lockdoc
