#include "src/trace/trace_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/core/clock_example.h"
#include "src/util/rng.h"

namespace lockdoc {
namespace {

Trace MakeSmallTrace() {
  Trace trace;
  TraceEvent alloc;
  alloc.kind = EventKind::kAlloc;
  alloc.addr = 0x1000;
  alloc.size = 64;
  alloc.type = 3;
  alloc.subclass = 2;
  alloc.task_id = 7;
  trace.Append(alloc);

  CallStack stack;
  stack.frames = {trace.InternString("f1"), trace.InternString("f2")};
  StackId stack_id = trace.InternStack(stack);

  TraceEvent lock;
  lock.kind = EventKind::kLockAcquire;
  lock.addr = 0x1008;
  lock.lock_type = LockType::kMutex;
  lock.mode = AcquireMode::kShared;
  lock.context = ContextKind::kSoftirq;
  lock.loc.file = trace.InternString("fs/x.c");
  lock.loc.line = 99;
  lock.stack = stack_id;
  trace.Append(lock);

  TraceEvent write;
  write.kind = EventKind::kMemWrite;
  write.addr = 0x1010;
  write.size = 8;
  write.stack = stack_id;
  trace.Append(write);
  return trace;
}

void ExpectTracesEqual(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const TraceEvent& x = a.event(i);
    const TraceEvent& y = b.event(i);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.context, y.context);
    EXPECT_EQ(x.task_id, y.task_id);
    EXPECT_EQ(x.addr, y.addr);
    EXPECT_EQ(x.size, y.size);
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.subclass, y.subclass);
    EXPECT_EQ(x.lock_type, y.lock_type);
    EXPECT_EQ(x.mode, y.mode);
    EXPECT_EQ(x.has_range, y.has_range);
    EXPECT_EQ(x.range_start, y.range_start);
    EXPECT_EQ(x.range_end, y.range_end);
    EXPECT_EQ(x.loc.line, y.loc.line);
    // Interned strings must resolve identically.
    EXPECT_EQ(a.String(x.loc.file), b.String(y.loc.file));
    if (x.stack != kInvalidStack) {
      EXPECT_EQ(a.FormatStack(x.stack), b.FormatStack(y.stack));
    } else {
      EXPECT_EQ(y.stack, kInvalidStack);
    }
  }
}

Trace MakeRangedTrace() {
  Trace trace;
  TraceEvent alloc;
  alloc.kind = EventKind::kAlloc;
  alloc.addr = 0x2000;
  alloc.size = 128;
  alloc.type = 11;
  alloc.has_range = true;  // Ground-truth resource span.
  alloc.range_start = 0x7f0000000000;
  alloc.range_end = 0x7f0000004000;
  trace.Append(alloc);

  TraceEvent acquire;
  acquire.kind = EventKind::kLockAcquire;
  acquire.addr = 0x2008;
  acquire.lock_type = LockType::kRangeLock;
  acquire.mode = AcquireMode::kShared;
  acquire.has_range = true;
  acquire.range_start = 0x7f0000001000;
  acquire.range_end = 0x7f0000002000;
  trace.Append(acquire);

  TraceEvent release = acquire;
  release.kind = EventKind::kLockRelease;
  trace.Append(release);
  return trace;
}

TEST(TraceIoTest, RangedEventsRoundTripV2) {
  Trace original = MakeRangedTrace();
  std::ostringstream out;
  WriteTrace(original, out);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectTracesEqual(original, restored.value());
}

TEST(TraceIoTest, RangedEventsRoundTripV1) {
  // The range flag lives in the per-event kind varint, shared by both
  // container formats.
  Trace original = MakeRangedTrace();
  std::ostringstream out;
  WriteTrace(original, out, TraceFormat::kV1);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectTracesEqual(original, restored.value());
}

TEST(TraceIoTest, ZeroRangeTraceEncodesAsLegacy) {
  // Differential: events without ranges must serialize to exactly the
  // bytes the pre-range writer produced — the flag bit costs nothing
  // unless set. Clearing has_range on an already-flagless trace is a
  // no-op at the byte level.
  Trace original = MakeSmallTrace();
  std::ostringstream before;
  WriteTrace(original, before);
  Trace scrubbed = MakeSmallTrace();
  for (size_t i = 0; i < scrubbed.size(); ++i) {
    ASSERT_FALSE(scrubbed.event(i).has_range);
  }
  std::ostringstream after;
  WriteTrace(scrubbed, after);
  EXPECT_EQ(before.str(), after.str());
}

TEST(TraceIoTest, RoundTripSmallTrace) {
  Trace original = MakeSmallTrace();
  std::ostringstream out;
  WriteTrace(original, out);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectTracesEqual(original, restored.value());
}

TEST(TraceIoTest, RoundTripRealisticTrace) {
  ClockExample example = BuildClockExample();
  std::ostringstream out;
  WriteTrace(example.trace, out);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok());
  ExpectTracesEqual(example.trace, restored.value());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  std::ostringstream out;
  WriteTrace(empty, out);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), 0u);
}

TEST(TraceIoTest, RejectsBadMagic) {
  std::istringstream in("NOTATRACE");
  EXPECT_FALSE(ReadTrace(in).ok());
}

TEST(TraceIoTest, RejectsTruncatedInput) {
  Trace original = MakeSmallTrace();
  std::ostringstream out;
  WriteTrace(original, out);
  std::string bytes = out.str();
  // Truncation anywhere after the magic must be detected, never crash.
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    size_t cut = 8 + rng.Below(bytes.size() - 8);
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(ReadTrace(in).ok()) << "cut at " << cut;
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  Trace original = MakeSmallTrace();
  std::string path = ::testing::TempDir() + "/lockdoc_trace_test.bin";
  ASSERT_TRUE(WriteTraceToFile(original, path).ok());
  auto restored = ReadTraceFromFile(path);
  ASSERT_TRUE(restored.ok());
  ExpectTracesEqual(original, restored.value());
}

TEST(TraceIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadTraceFromFile("/nonexistent/path/trace.bin").ok());
}

TEST(TraceIoTest, RoundTripExplicitV1) {
  Trace original = MakeSmallTrace();
  std::ostringstream out;
  WriteTrace(original, out, TraceFormat::kV1);
  std::istringstream in(out.str());
  TraceReadReport report;
  auto restored = ReadTrace(in, {}, &report);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(report.format_version, 1u);
  ExpectTracesEqual(original, restored.value());
}

TEST(TraceIoTest, V2ReportsCleanOnIntactInput) {
  Trace original = MakeSmallTrace();
  std::ostringstream out;
  WriteTrace(original, out);
  std::istringstream in(out.str());
  TraceReadReport report;
  auto restored = ReadTrace(in, {}, &report);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(report.format_version, 2u);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.events_salvaged, original.size());
  EXPECT_EQ(report.events_dropped, 0u);
}

TEST(TraceIoTest, ErrorsIncludeByteOffset) {
  Trace original = MakeSmallTrace();
  std::ostringstream out;
  WriteTrace(original, out);
  std::string bytes = out.str();
  std::istringstream in(bytes.substr(0, bytes.size() - 7));
  auto result = ReadTrace(in);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("offset 0x"), std::string::npos)
      << result.status().message();
}

TEST(TraceIoTest, RejectsNonCanonicalVarint) {
  // v1 stream whose string-table count is 1 encoded in two bytes (0x81 0x00):
  // a shorter encoding exists, so the reader must reject it.
  std::string bytes = "LDTRACE1";
  bytes += '\x81';
  bytes += '\x00';
  std::istringstream in(bytes);
  auto result = ReadTrace(in);
  ASSERT_FALSE(result.ok());
}

TEST(TraceIoTest, RejectsOverflowingVarint) {
  // Eleven continuation bytes encode more than 64 bits.
  std::string bytes = "LDTRACE1";
  for (int i = 0; i < 11; ++i) {
    bytes += '\xff';
  }
  std::istringstream in(bytes);
  EXPECT_FALSE(ReadTrace(in).ok());
}

TEST(TraceIoTest, RejectsStringLengthBeyondInput) {
  // String table declares one entry of 100000 bytes but the input ends
  // immediately: the reader must fail before allocating the 100000 bytes.
  std::string bytes = "LDTRACE1";
  bytes += '\x01';  // one string
  bytes += '\xa0';  // varint 100000 = 0xa0 0x8d 0x06
  bytes += '\x8d';
  bytes += '\x06';
  std::istringstream in(bytes);
  EXPECT_FALSE(ReadTrace(in).ok());
}

Trace MakeLargerTrace(uint64_t seed) {
  Rng rng(seed);
  Trace trace;
  std::vector<StringId> sids;
  for (int i = 0; i < 16; ++i) {
    sids.push_back(trace.InternString("name" + std::to_string(i)));
  }
  std::vector<StackId> stacks;
  for (int i = 0; i < 4; ++i) {
    CallStack stack;
    for (uint64_t f = 0; f < rng.Range(1, 5); ++f) {
      stack.frames.push_back(sids[rng.Below(sids.size())]);
    }
    stacks.push_back(trace.InternStack(stack));
  }
  // Enough events to span several v2 event frames (4096 events each), so
  // frame-granular salvage has interior boundaries to recover at.
  for (int i = 0; i < 12000; ++i) {
    TraceEvent e;
    e.kind = static_cast<EventKind>(rng.Below(static_cast<uint64_t>(EventKind::kStaticLockDef) + 1));
    e.context = static_cast<ContextKind>(rng.Below(3));
    e.task_id = static_cast<uint32_t>(rng.Below(8));
    e.addr = rng.Next() & 0xffffffffffull;
    e.size = static_cast<uint32_t>(rng.Range(1, 64));
    e.type = rng.Chance(0.5) ? kInvalidTypeId : static_cast<TypeId>(rng.Below(20));
    e.subclass = static_cast<SubclassId>(rng.Below(4));
    e.lock_type = static_cast<LockType>(rng.Below(kNumLockTypes));
    e.mode = static_cast<AcquireMode>(rng.Below(2));
    e.name = sids[rng.Below(sids.size())];
    e.loc.file = sids[rng.Below(sids.size())];
    e.loc.line = static_cast<uint32_t>(rng.Below(10000));
    e.stack = rng.Chance(0.3) ? kInvalidStack : stacks[rng.Below(stacks.size())];
    trace.Append(e);
  }
  return trace;
}

TEST(TraceIoTest, RoundTripPropertyBothFormats) {
  for (uint64_t seed = 0; seed < 12; ++seed) {
    Trace original = MakeLargerTrace(seed);
    for (TraceFormat format : {TraceFormat::kV1, TraceFormat::kV2}) {
      std::ostringstream out;
      WriteTrace(original, out, format);
      std::istringstream in(out.str());
      TraceReadReport report;
      auto restored = ReadTrace(in, {}, &report);
      ASSERT_TRUE(restored.ok()) << "seed " << seed << ": " << restored.status().ToString();
      EXPECT_TRUE(report.clean());
      ExpectTracesEqual(original, restored.value());
    }
  }
}

TEST(TraceIoTest, SalvageRecoversPrefixOfTruncatedV2) {
  Trace original = MakeLargerTrace(3);
  std::ostringstream out;
  WriteTrace(original, out);
  std::string bytes = out.str();

  std::istringstream in(bytes.substr(0, bytes.size() * 3 / 4));
  TraceReadOptions options;
  options.salvage = true;
  TraceReadReport report;
  auto salvaged = ReadTrace(in, options, &report);
  ASSERT_TRUE(salvaged.ok()) << salvaged.status().ToString();
  EXPECT_TRUE(report.truncated);
  EXPECT_FALSE(report.clean());
  ASSERT_GT(salvaged.value().size(), 0u);
  ASSERT_LT(salvaged.value().size(), original.size());
  // Whatever survived is a bit-exact prefix.
  for (size_t i = 0; i < salvaged.value().size(); ++i) {
    EXPECT_EQ(salvaged.value().event(i).addr, original.event(i).addr);
    EXPECT_EQ(salvaged.value().event(i).kind, original.event(i).kind);
  }
}

TEST(TraceIoTest, SalvageSurvivesStringTableLoss) {
  Trace original = MakeLargerTrace(5);
  std::ostringstream out;
  WriteTrace(original, out);
  std::string bytes = out.str();
  // Corrupt one byte inside the first frame's payload (the string table).
  bytes[8 + kTraceFrameHeaderSize + 3] ^= 0x01;

  std::istringstream in(bytes);
  EXPECT_FALSE(ReadTrace(in).ok());  // Strict: CRC mismatch.

  std::istringstream again(bytes);
  TraceReadOptions options;
  options.salvage = true;
  TraceReadReport report;
  auto salvaged = ReadTrace(again, options, &report);
  ASSERT_TRUE(salvaged.ok()) << salvaged.status().ToString();
  EXPECT_TRUE(report.string_table_lost);
  EXPECT_EQ(report.frames_bad_crc, 1u);
  // All events survive; their names resolve to placeholders.
  EXPECT_EQ(salvaged.value().size(), original.size());
  const TraceEvent& e = salvaged.value().event(0);
  EXPECT_NO_FATAL_FAILURE((void)salvaged.value().String(e.name));
}

TEST(TraceIoTest, StrictRejectsTrailingGarbage) {
  Trace original = MakeSmallTrace();
  std::ostringstream out;
  WriteTrace(original, out);
  std::string bytes = out.str() + "garbage after the end frame";
  std::istringstream in(bytes);
  EXPECT_FALSE(ReadTrace(in).ok());
}

}  // namespace
}  // namespace lockdoc
