#include "src/trace/trace_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/core/clock_example.h"
#include "src/util/rng.h"

namespace lockdoc {
namespace {

Trace MakeSmallTrace() {
  Trace trace;
  TraceEvent alloc;
  alloc.kind = EventKind::kAlloc;
  alloc.addr = 0x1000;
  alloc.size = 64;
  alloc.type = 3;
  alloc.subclass = 2;
  alloc.task_id = 7;
  trace.Append(alloc);

  CallStack stack;
  stack.frames = {trace.InternString("f1"), trace.InternString("f2")};
  StackId stack_id = trace.InternStack(stack);

  TraceEvent lock;
  lock.kind = EventKind::kLockAcquire;
  lock.addr = 0x1008;
  lock.lock_type = LockType::kMutex;
  lock.mode = AcquireMode::kShared;
  lock.context = ContextKind::kSoftirq;
  lock.loc.file = trace.InternString("fs/x.c");
  lock.loc.line = 99;
  lock.stack = stack_id;
  trace.Append(lock);

  TraceEvent write;
  write.kind = EventKind::kMemWrite;
  write.addr = 0x1010;
  write.size = 8;
  write.stack = stack_id;
  trace.Append(write);
  return trace;
}

void ExpectTracesEqual(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const TraceEvent& x = a.event(i);
    const TraceEvent& y = b.event(i);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.context, y.context);
    EXPECT_EQ(x.task_id, y.task_id);
    EXPECT_EQ(x.addr, y.addr);
    EXPECT_EQ(x.size, y.size);
    EXPECT_EQ(x.type, y.type);
    EXPECT_EQ(x.subclass, y.subclass);
    EXPECT_EQ(x.lock_type, y.lock_type);
    EXPECT_EQ(x.mode, y.mode);
    EXPECT_EQ(x.loc.line, y.loc.line);
    // Interned strings must resolve identically.
    EXPECT_EQ(a.String(x.loc.file), b.String(y.loc.file));
    if (x.stack != kInvalidStack) {
      EXPECT_EQ(a.FormatStack(x.stack), b.FormatStack(y.stack));
    } else {
      EXPECT_EQ(y.stack, kInvalidStack);
    }
  }
}

TEST(TraceIoTest, RoundTripSmallTrace) {
  Trace original = MakeSmallTrace();
  std::ostringstream out;
  WriteTrace(original, out);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ExpectTracesEqual(original, restored.value());
}

TEST(TraceIoTest, RoundTripRealisticTrace) {
  ClockExample example = BuildClockExample();
  std::ostringstream out;
  WriteTrace(example.trace, out);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok());
  ExpectTracesEqual(example.trace, restored.value());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  Trace empty;
  std::ostringstream out;
  WriteTrace(empty, out);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), 0u);
}

TEST(TraceIoTest, RejectsBadMagic) {
  std::istringstream in("NOTATRACE");
  EXPECT_FALSE(ReadTrace(in).ok());
}

TEST(TraceIoTest, RejectsTruncatedInput) {
  Trace original = MakeSmallTrace();
  std::ostringstream out;
  WriteTrace(original, out);
  std::string bytes = out.str();
  // Truncation anywhere after the magic must be detected, never crash.
  Rng rng(4);
  for (int i = 0; i < 30; ++i) {
    size_t cut = 8 + rng.Below(bytes.size() - 8);
    std::istringstream in(bytes.substr(0, cut));
    EXPECT_FALSE(ReadTrace(in).ok()) << "cut at " << cut;
  }
}

TEST(TraceIoTest, FileRoundTrip) {
  Trace original = MakeSmallTrace();
  std::string path = ::testing::TempDir() + "/lockdoc_trace_test.bin";
  ASSERT_TRUE(WriteTraceToFile(original, path).ok());
  auto restored = ReadTraceFromFile(path);
  ASSERT_TRUE(restored.ok());
  ExpectTracesEqual(original, restored.value());
}

TEST(TraceIoTest, MissingFileFails) {
  EXPECT_FALSE(ReadTraceFromFile("/nonexistent/path/trace.bin").ok());
}

}  // namespace
}  // namespace lockdoc
