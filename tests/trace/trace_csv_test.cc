#include "src/trace/trace_csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/clock_example.h"
#include "src/core/pipeline.h"
#include "src/util/csv.h"

namespace lockdoc {
namespace {

TEST(TraceCsvTest, HeaderAndRowCount) {
  ClockExampleOptions options;
  options.iterations = 10;
  ClockExample example = BuildClockExample(options);

  std::ostringstream out;
  WriteTraceCsv(example.trace, out);
  auto parsed = ParseCsv(out.str());
  ASSERT_TRUE(parsed.ok());
  ASSERT_FALSE(parsed.value().empty());
  EXPECT_EQ(parsed.value()[0][0], "seq");
  EXPECT_EQ(parsed.value().size(), example.trace.size() + 1);
}

TEST(TraceCsvTest, LockRowsCarryLockMetadata) {
  ClockExampleOptions options;
  options.iterations = 1;
  options.include_faulty_execution = false;
  ClockExample example = BuildClockExample(options);

  std::ostringstream out;
  WriteTraceCsv(example.trace, out);
  auto parsed = ParseCsv(out.str());
  ASSERT_TRUE(parsed.ok());
  const auto& rows = parsed.value();
  size_t kind_col = 1;
  size_t lock_type_col = 8;
  size_t name_col = 10;
  bool found_static_def = false;
  bool found_lock = false;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i][kind_col] == "static_lock" && rows[i][name_col] == "sec_lock") {
      found_static_def = true;
      EXPECT_EQ(rows[i][lock_type_col], "spinlock_t");
    }
    if (rows[i][kind_col] == "lock") {
      found_lock = true;
      EXPECT_FALSE(rows[i][lock_type_col].empty());
    }
  }
  EXPECT_TRUE(found_static_def);
  EXPECT_TRUE(found_lock);
}

TEST(TraceCsvTest, AccessRowsCarrySourceLocation) {
  ClockExampleOptions options;
  options.iterations = 1;
  options.include_faulty_execution = false;
  ClockExample example = BuildClockExample(options);

  std::ostringstream out;
  WriteTraceCsv(example.trace, out);
  auto parsed = ParseCsv(out.str());
  ASSERT_TRUE(parsed.ok());
  bool found_write = false;
  for (size_t i = 1; i < parsed.value().size(); ++i) {
    const auto& row = parsed.value()[i];
    if (row[1] == "write") {
      found_write = true;
      EXPECT_EQ(row[11], "kernel/clock.c");
      EXPECT_FALSE(row[12].empty());
    }
  }
  EXPECT_TRUE(found_write);
}

TEST(TraceCsvBundleTest, LosslessRoundTrip) {
  ClockExampleOptions options;
  options.iterations = 25;
  ClockExample example = BuildClockExample(options);

  std::string dir = ::testing::TempDir() + "/lockdoc_csv_bundle";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteTraceCsvBundle(example.trace, dir).ok());

  auto restored = ReadTraceCsvBundle(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const Trace& replay = restored.value();
  ASSERT_EQ(replay.size(), example.trace.size());
  for (size_t i = 0; i < replay.size(); ++i) {
    const TraceEvent& a = example.trace.event(i);
    const TraceEvent& b = replay.event(i);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.addr, b.addr);
    EXPECT_EQ(a.loc.line, b.loc.line);
    EXPECT_EQ(example.trace.String(a.loc.file), replay.String(b.loc.file));
    if (a.stack != kInvalidStack) {
      EXPECT_EQ(example.trace.FormatStack(a.stack), replay.FormatStack(b.stack));
    }
  }
  // The restored trace analyzes identically (same observations).
  PipelineResult original = RunPipeline(example.trace, *example.registry);
  PipelineResult replayed = RunPipeline(replay, *example.registry);
  ASSERT_EQ(original.rules.size(), replayed.rules.size());
  for (size_t i = 0; i < original.rules.size(); ++i) {
    EXPECT_EQ(LockSeqToString(original.rules[i].winner->locks),
              LockSeqToString(replayed.rules[i].winner->locks));
  }
}

TEST(TraceCsvBundleTest, RangedEventsRoundTrip) {
  Trace trace;
  TraceEvent alloc;
  alloc.kind = EventKind::kAlloc;
  alloc.addr = 0x3000;
  alloc.size = 64;
  alloc.type = 5;
  alloc.has_range = true;
  alloc.range_start = 0x10000;
  alloc.range_end = 0x18000;
  trace.Append(alloc);
  TraceEvent acquire;
  acquire.kind = EventKind::kLockAcquire;
  acquire.addr = 0x3010;
  acquire.lock_type = LockType::kRangeLock;
  acquire.has_range = true;
  acquire.range_start = 0x12000;
  acquire.range_end = 0x14000;
  trace.Append(acquire);
  TraceEvent plain;
  plain.kind = EventKind::kMemWrite;
  plain.addr = 0x3020;
  plain.size = 8;
  trace.Append(plain);

  std::string dir = ::testing::TempDir() + "/lockdoc_csv_ranges";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteTraceCsvBundle(trace, dir).ok());
  auto restored = ReadTraceCsvBundle(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().size(), trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& a = trace.event(i);
    const TraceEvent& b = restored.value().event(i);
    EXPECT_EQ(a.has_range, b.has_range) << "event " << i;
    EXPECT_EQ(a.range_start, b.range_start) << "event " << i;
    EXPECT_EQ(a.range_end, b.range_end) << "event " << i;
  }
}

TEST(TraceCsvBundleTest, MissingDirectoryFails) {
  EXPECT_FALSE(ReadTraceCsvBundle("/nonexistent/lockdoc_bundle").ok());
}

TEST(TraceCsvBundleTest, CorruptEventsRejected) {
  ClockExampleOptions options;
  options.iterations = 2;
  ClockExample example = BuildClockExample(options);
  std::string dir = ::testing::TempDir() + "/lockdoc_csv_corrupt";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(WriteTraceCsvBundle(example.trace, dir).ok());
  {
    std::ofstream out(dir + "/events.csv", std::ios::app);
    out << "99,0,0,0,0,,0,0,0,0,0,0,\n";  // kind 99 is invalid.
  }
  EXPECT_FALSE(ReadTraceCsvBundle(dir).ok());
}

}  // namespace
}  // namespace lockdoc
