#include "src/trace/trace_stats.h"

#include <gtest/gtest.h>

#include "src/core/clock_example.h"
#include "src/model/type_registry.h"
#include "src/sim/kernel.h"

namespace lockdoc {
namespace {

TEST(TraceStatsTest, ClockExampleCounts) {
  ClockExampleOptions options;
  options.iterations = 60;  // One minute: 60 txn a + 1 txn b.
  options.include_faulty_execution = false;
  ClockExample example = BuildClockExample(options);

  TraceStats stats = ComputeTraceStats(example.trace);
  EXPECT_EQ(stats.total_events, example.trace.size());
  EXPECT_EQ(stats.allocations, 1u);
  EXPECT_EQ(stats.deallocations, 1u);
  EXPECT_EQ(stats.static_lock_defs, 5u);  // rcu, softirq, hardirq, sec, min.
  // 60 sec_lock pairs + 1 min_lock pair.
  EXPECT_EQ(stats.lock_acquires, 61u);
  EXPECT_EQ(stats.lock_releases, 61u);
  EXPECT_EQ(stats.lock_ops, 122u);
  // Per iteration: r, w, r of seconds; in the minute txn: w seconds + r/w
  // minutes.
  EXPECT_EQ(stats.memory_accesses, 60u * 3 + 3);
  EXPECT_EQ(stats.writes, 62u);
  EXPECT_EQ(stats.reads, 121u);
  EXPECT_EQ(stats.distinct_locks, 2u);
  EXPECT_EQ(stats.distinct_static_locks, 2u);
  EXPECT_EQ(stats.distinct_embedded_locks, 0u);
}

TEST(TraceStatsTest, EmbeddedLocksClassified) {
  TypeRegistry registry;
  auto layout = std::make_unique<TypeLayout>("obj");
  MemberIndex lock = layout->AddLockMember("lock", LockType::kSpinlock);
  MemberIndex data = layout->AddMember("data", 8);
  TypeId type = registry.Register(std::move(layout));

  Trace trace;
  SimKernel sim(&trace, &registry);
  FunctionScope fn(sim, "x.c", "f", 1, 10);
  ObjectRef obj = sim.Create(type, kNoSubclass, 1);
  sim.Lock(obj, lock, 2);
  sim.Write(obj, data, 3);
  sim.Unlock(obj, lock, 4);
  sim.Destroy(obj, 5);

  TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.distinct_embedded_locks, 1u);
  EXPECT_EQ(stats.distinct_static_locks, 0u);
}

TEST(TraceStatsTest, ToStringMentionsKeyCounters) {
  ClockExample example = BuildClockExample();
  TraceStats stats = ComputeTraceStats(example.trace);
  std::string text = stats.ToString();
  EXPECT_NE(text.find("total events"), std::string::npos);
  EXPECT_NE(text.find("memory accesses"), std::string::npos);
  EXPECT_NE(text.find("distinct locks"), std::string::npos);
}

}  // namespace
}  // namespace lockdoc
