// The lock-class interner behind the rule-mining hot path: dense
// first-appearance ids, lossless materialization, and the integer mirrors
// of the string subsequence primitives.
#include "src/model/lock_class_pool.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/derivator.h"
#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

LockClass RandomClass(Rng& rng) {
  int scope = static_cast<int>(rng.Below(3));
  std::string name = StrFormat("lock%d", static_cast<int>(rng.Below(5)));
  switch (scope) {
    case 0:
      return LockClass::Global(name);
    case 1:
      return LockClass::Same(name, "inode");
    default:
      return LockClass::Other(name, "super_block");
  }
}

LockSeq RandomSeq(Rng& rng, size_t max_len) {
  LockSeq seq;
  size_t len = rng.Below(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    seq.push_back(RandomClass(rng));
  }
  return seq;
}

TEST(LockClassPoolTest, IdsAreDenseInFirstAppearanceOrder) {
  LockClassPool pool;
  LockClass a = LockClass::Global("a");
  LockClass b = LockClass::Same("b", "inode");
  LockClass c = LockClass::Global("c");
  // First sight assigns the next dense id; re-interning returns the original
  // id. This order is what makes pool ids deterministic at any thread count
  // (sequences are interned serially), so it is pinned here.
  EXPECT_EQ(pool.Intern(a), 0u);
  EXPECT_EQ(pool.Intern(b), 1u);
  EXPECT_EQ(pool.Intern(a), 0u);
  EXPECT_EQ(pool.Intern(c), 2u);
  EXPECT_EQ(pool.Intern(b), 1u);
  EXPECT_EQ(pool.size(), 3u);
  EXPECT_EQ(pool.Get(0), a);
  EXPECT_EQ(pool.Get(1), b);
  EXPECT_EQ(pool.Get(2), c);
}

TEST(LockClassPoolTest, InternSeqAssignsIdsLeftToRight) {
  LockClassPool pool;
  LockClass x = LockClass::Global("x");
  LockClass y = LockClass::Global("y");
  LockClass z = LockClass::Global("z");
  EXPECT_EQ(pool.InternSeq({x, y}), (IdSeq{0, 1}));
  // A later sequence reuses known ids and extends the pool for new classes.
  EXPECT_EQ(pool.InternSeq({y, z, x}), (IdSeq{1, 2, 0}));
  EXPECT_EQ(pool.size(), 3u);
}

TEST(LockClassPoolTest, FindDoesNotIntern) {
  LockClassPool pool;
  LockClass a = LockClass::Global("a");
  EXPECT_EQ(pool.Find(a), std::nullopt);
  EXPECT_EQ(pool.size(), 0u);
  pool.Intern(a);
  EXPECT_EQ(pool.Find(a), std::optional<LockId>(0));
  EXPECT_EQ(pool.FindSeq({a, LockClass::Global("never-seen")}), std::nullopt);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(LockClassPoolTest, MaterializeRoundTrips) {
  Rng rng(7);
  LockClassPool pool;
  for (int trial = 0; trial < 200; ++trial) {
    LockSeq seq = RandomSeq(rng, 6);
    EXPECT_EQ(pool.Materialize(pool.InternSeq(seq)), seq);
  }
}

TEST(LockClassPoolTest, IsSubsequenceIdsMatchesStringVersion) {
  Rng rng(11);
  LockClassPool pool;
  for (int trial = 0; trial < 500; ++trial) {
    LockSeq rule = RandomSeq(rng, 4);
    LockSeq held = RandomSeq(rng, 6);
    EXPECT_EQ(IsSubsequenceIds(pool.InternSeq(rule), pool.InternSeq(held)),
              IsSubsequence(rule, held))
        << LockSeqToString(rule) << " vs " << LockSeqToString(held);
  }
}

TEST(LockClassPoolTest, LexicographicRanksReproduceClassOrder) {
  Rng rng(23);
  LockClassPool pool;
  for (int trial = 0; trial < 100; ++trial) {
    pool.Intern(RandomClass(rng));
  }
  std::vector<uint32_t> ranks = pool.LexicographicRanks();
  ASSERT_EQ(ranks.size(), pool.size());
  for (LockId a = 0; a < pool.size(); ++a) {
    for (LockId b = 0; b < pool.size(); ++b) {
      EXPECT_EQ(ranks[a] < ranks[b], pool.Get(a) < pool.Get(b));
    }
  }
}

TEST(LockClassPoolTest, RankSequenceCompareMatchesLockSeqCompare) {
  Rng rng(31);
  LockClassPool pool;
  std::vector<std::pair<LockSeq, IdSeq>> seqs;
  for (int trial = 0; trial < 60; ++trial) {
    LockSeq seq = RandomSeq(rng, 4);
    seqs.emplace_back(seq, pool.InternSeq(seq));
  }
  std::vector<uint32_t> ranks = pool.LexicographicRanks();
  auto rank_less = [&](const IdSeq& a, const IdSeq& b) {
    size_t common = std::min(a.size(), b.size());
    for (size_t i = 0; i < common; ++i) {
      if (ranks[a[i]] != ranks[b[i]]) {
        return ranks[a[i]] < ranks[b[i]];
      }
    }
    return a.size() < b.size();
  };
  for (const auto& [seq_a, ids_a] : seqs) {
    for (const auto& [seq_b, ids_b] : seqs) {
      EXPECT_EQ(rank_less(ids_a, ids_b), seq_a < seq_b)
          << LockSeqToString(seq_a) << " vs " << LockSeqToString(seq_b);
    }
  }
}

TEST(LockClassPoolTest, EnumerateSubsequenceIdsIncludesEmptyAndIsSorted) {
  Rng rng(41);
  LockClassPool pool;
  IdSeq seq = pool.InternSeq(RandomSeq(rng, 5));
  std::vector<IdSeq> subs = EnumerateSubsequenceIds(seq, 10);
  ASSERT_FALSE(subs.empty());
  EXPECT_TRUE(subs.front().empty());
  EXPECT_TRUE(std::is_sorted(subs.begin(), subs.end()));
  EXPECT_EQ(std::adjacent_find(subs.begin(), subs.end()), subs.end());
}

TEST(LockClassPoolTest, BoundedFallbackIdsEmitMultiplicityRuns) {
  // Mirror of the string-side regression: the bounded fallback must emit
  // k-fold repeats of one id even when the copies are not a prefix.
  IdSeq seq = {1};
  for (int i = 0; i < 3; ++i) {
    seq.push_back(0);  // {1, 0, 0, 0, pad...}
  }
  for (LockId pad = 2; pad < 12; ++pad) {
    seq.push_back(pad);
  }
  std::vector<IdSeq> subs = EnumerateSubsequenceIds(seq, 10);  // 14 ids -> fallback.
  IdSeq triple = {0, 0, 0};
  EXPECT_NE(std::find(subs.begin(), subs.end(), triple), subs.end());
  IdSeq pair = {0, 0};
  EXPECT_NE(std::find(subs.begin(), subs.end(), pair), subs.end());
  EXPECT_LT(subs.size(), 200u);
}

TEST(LockClassPoolTest, BoundedFallbackMatchesStringEnumerator) {
  // The id enumerator must produce exactly the interned image of the
  // string enumerator's output, including in the bounded fallback.
  Rng rng(97);
  LockClassPool pool;
  for (int round = 0; round < 20; ++round) {
    LockSeq seq = RandomSeq(rng, 14);  // Often deep enough to hit the fallback.
    IdSeq ids = pool.InternSeq(seq);
    std::vector<LockSeq> by_string = EnumerateSubsequences(seq, 10);
    std::vector<IdSeq> by_id = EnumerateSubsequenceIds(ids, 10);
    ASSERT_EQ(by_string.size(), by_id.size()) << "round " << round;
    std::vector<IdSeq> interned;
    interned.reserve(by_string.size());
    for (const LockSeq& sub : by_string) {
      interned.push_back(*pool.FindSeq(sub));
    }
    std::sort(interned.begin(), interned.end());
    EXPECT_EQ(interned, by_id) << "round " << round;
  }
}

}  // namespace
}  // namespace lockdoc
