#include "src/model/type_layout.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TypeLayout MakeSample() {
  TypeLayout layout("sample");
  layout.AddMember("a", 8);
  layout.AddLockMember("lock", LockType::kSpinlock);
  layout.AddAtomicMember("refcount", 4);
  layout.AddBlacklistedMember("foreign", 16);
  layout.AddMember("b", 4);
  return layout;
}

TEST(TypeLayoutTest, OffsetsAreSequential) {
  TypeLayout layout = MakeSample();
  EXPECT_EQ(layout.member(0).offset, 0u);
  EXPECT_EQ(layout.member(1).offset, 8u);   // After a (8 bytes).
  EXPECT_EQ(layout.member(2).offset, 16u);  // Lock members occupy 8 bytes.
  EXPECT_EQ(layout.member(3).offset, 20u);
  EXPECT_EQ(layout.member(4).offset, 36u);
  EXPECT_EQ(layout.size(), 40u);
}

TEST(TypeLayoutTest, MemberFlags) {
  TypeLayout layout = MakeSample();
  EXPECT_FALSE(layout.member(0).is_lock);
  EXPECT_TRUE(layout.member(1).is_lock);
  EXPECT_EQ(layout.member(1).lock_type, LockType::kSpinlock);
  EXPECT_TRUE(layout.member(2).is_atomic);
  EXPECT_TRUE(layout.member(3).blacklisted);
}

TEST(TypeLayoutTest, ResolveOffsetHitsContainingMember) {
  TypeLayout layout = MakeSample();
  EXPECT_EQ(layout.ResolveOffset(0), MemberIndex{0});
  EXPECT_EQ(layout.ResolveOffset(7), MemberIndex{0});
  EXPECT_EQ(layout.ResolveOffset(8), MemberIndex{1});
  EXPECT_EQ(layout.ResolveOffset(19), MemberIndex{2});
  EXPECT_EQ(layout.ResolveOffset(36), MemberIndex{4});
  EXPECT_EQ(layout.ResolveOffset(39), MemberIndex{4});
}

TEST(TypeLayoutTest, ResolveOffsetBeyondSizeFails) {
  TypeLayout layout = MakeSample();
  EXPECT_FALSE(layout.ResolveOffset(40).has_value());
  EXPECT_FALSE(layout.ResolveOffset(1000).has_value());
}

TEST(TypeLayoutTest, FindMemberByName) {
  TypeLayout layout = MakeSample();
  EXPECT_EQ(layout.FindMember("b"), MemberIndex{4});
  EXPECT_FALSE(layout.FindMember("nonexistent").has_value());
}

TEST(TypeLayoutTest, ObservableAndFilteredCounts) {
  TypeLayout layout = MakeSample();
  // a and b are observable; refcount (atomic) and foreign (blacklisted)
  // are filtered; the lock member is neither.
  EXPECT_EQ(layout.CountObservableMembers(), 2u);
  EXPECT_EQ(layout.CountFilteredMembers(), 2u);
}

TEST(TypeLayoutTest, BlacklistAfterDefinition) {
  TypeLayout layout = MakeSample();
  layout.Blacklist(0);
  EXPECT_TRUE(layout.member(0).blacklisted);
  EXPECT_EQ(layout.CountObservableMembers(), 1u);
}

// Property: every byte offset within the struct resolves to the member
// whose [offset, offset+size) range contains it.
class ResolveOffsetPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ResolveOffsetPropertyTest, EveryByteResolvesConsistently) {
  TypeLayout layout = MakeSample();
  uint32_t offset = GetParam();
  auto member = layout.ResolveOffset(offset);
  ASSERT_TRUE(member.has_value());
  const MemberDef& def = layout.member(*member);
  EXPECT_GE(offset, def.offset);
  EXPECT_LT(offset, def.offset + def.size);
}

INSTANTIATE_TEST_SUITE_P(AllOffsets, ResolveOffsetPropertyTest,
                         ::testing::Range(0u, 40u, 1u));

}  // namespace
}  // namespace lockdoc
