// Corner cases of the half-open interval primitives that overlap-based
// rule derivation stands on: empty, adjacent, nested, exact, and the
// "whole" (non-range) hold that covers everything.
#include <gtest/gtest.h>

#include "src/model/ids.h"

namespace lockdoc {
namespace {

TEST(RangesOverlapTest, DisjointDoNotOverlap) {
  EXPECT_FALSE(RangesOverlap(0, 4, 8, 12));
  EXPECT_FALSE(RangesOverlap(8, 12, 0, 4));
}

TEST(RangesOverlapTest, AdjacentHalfOpenDoNotOverlap) {
  // [0,4) and [4,8) share only the boundary point, which belongs to
  // neither under half-open semantics.
  EXPECT_FALSE(RangesOverlap(0, 4, 4, 8));
  EXPECT_FALSE(RangesOverlap(4, 8, 0, 4));
}

TEST(RangesOverlapTest, SingleByteOverlapCounts) {
  EXPECT_TRUE(RangesOverlap(0, 5, 4, 8));
  EXPECT_TRUE(RangesOverlap(4, 8, 0, 5));
}

TEST(RangesOverlapTest, NestedOverlap) {
  EXPECT_TRUE(RangesOverlap(0, 100, 10, 20));
  EXPECT_TRUE(RangesOverlap(10, 20, 0, 100));
}

TEST(RangesOverlapTest, ExactEqualOverlap) {
  EXPECT_TRUE(RangesOverlap(7, 9, 7, 9));
}

TEST(RangesOverlapTest, EmptyIntervalsOverlapNothing) {
  EXPECT_FALSE(RangesOverlap(4, 4, 0, 100));    // Empty vs wide.
  EXPECT_FALSE(RangesOverlap(0, 100, 4, 4));    // Wide vs empty.
  EXPECT_FALSE(RangesOverlap(4, 4, 4, 4));      // Empty vs itself.
  EXPECT_FALSE(RangesOverlap(10, 4, 0, 100));   // Inverted is empty too.
}

TEST(RangesOverlapTest, MaxBoundary) {
  const uint64_t kMax = ~0ull;
  EXPECT_TRUE(RangesOverlap(kMax - 1, kMax, kMax - 2, kMax));
  EXPECT_FALSE(RangesOverlap(0, kMax - 1, kMax - 1, kMax));
}

TEST(LockRangeTest, DefaultIsWhole) {
  LockRange range;
  EXPECT_TRUE(range.whole());
  LockRange held{0x1000, 0x2000};
  EXPECT_FALSE(held.whole());
}

TEST(RangeCoversTest, WholeCoversEverything) {
  LockRange whole;
  EXPECT_TRUE(RangeCovers(whole, 0, 1));
  EXPECT_TRUE(RangeCovers(whole, 0x1000, 0x2000));
  EXPECT_TRUE(RangeCovers(whole, ~0ull - 1, ~0ull));
}

TEST(RangeCoversTest, RangedHoldCoversOnlyOverlap) {
  LockRange held{0x1000, 0x2000};
  EXPECT_TRUE(RangeCovers(held, 0x1800, 0x1900));   // Nested.
  EXPECT_TRUE(RangeCovers(held, 0x0800, 0x1001));   // One-byte overlap.
  EXPECT_FALSE(RangeCovers(held, 0x2000, 0x3000));  // Adjacent above.
  EXPECT_FALSE(RangeCovers(held, 0x0800, 0x1000));  // Adjacent below.
  EXPECT_FALSE(RangeCovers(held, 0x4000, 0x5000));  // Disjoint.
}

TEST(RangeCoversTest, EmptySpanNeverCoveredByRangedHold) {
  LockRange held{0x1000, 0x2000};
  EXPECT_FALSE(RangeCovers(held, 0x1800, 0x1800));
}

}  // namespace
}  // namespace lockdoc
