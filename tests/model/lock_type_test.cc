#include "src/model/lock_type.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(LockTypeTest, NamesRoundTrip) {
  for (int i = 0; i < kNumLockTypes; ++i) {
    LockType type = static_cast<LockType>(i);
    auto parsed = LockTypeFromName(LockTypeName(type));
    ASSERT_TRUE(parsed.has_value()) << LockTypeName(type);
    EXPECT_EQ(*parsed, type);
  }
}

TEST(LockTypeTest, UnknownNameRejected) {
  EXPECT_FALSE(LockTypeFromName("futex").has_value());
  EXPECT_FALSE(LockTypeFromName("").has_value());
}

TEST(LockTypeTest, PseudoLockClassification) {
  EXPECT_TRUE(IsPseudoLockType(LockType::kRcu));
  EXPECT_TRUE(IsPseudoLockType(LockType::kSoftirq));
  EXPECT_TRUE(IsPseudoLockType(LockType::kHardirq));
  EXPECT_FALSE(IsPseudoLockType(LockType::kSpinlock));
  EXPECT_FALSE(IsPseudoLockType(LockType::kMutex));
}

TEST(LockTypeTest, ReaderWriterClassification) {
  EXPECT_TRUE(IsReaderWriterLockType(LockType::kRwlock));
  EXPECT_TRUE(IsReaderWriterLockType(LockType::kRwSemaphore));
  EXPECT_FALSE(IsReaderWriterLockType(LockType::kSpinlock));
  EXPECT_FALSE(IsReaderWriterLockType(LockType::kSeqlock));
}

TEST(LockTypeTest, BlockingClassification) {
  EXPECT_TRUE(IsBlockingLockType(LockType::kMutex));
  EXPECT_TRUE(IsBlockingLockType(LockType::kSemaphore));
  EXPECT_TRUE(IsBlockingLockType(LockType::kRwSemaphore));
  EXPECT_FALSE(IsBlockingLockType(LockType::kSpinlock));
  EXPECT_FALSE(IsBlockingLockType(LockType::kRcu));
  EXPECT_FALSE(IsBlockingLockType(LockType::kHardirq));
}

}  // namespace
}  // namespace lockdoc
