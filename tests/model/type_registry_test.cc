#include "src/model/type_registry.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

std::unique_ptr<TypeLayout> MakeLayout(const std::string& name) {
  auto layout = std::make_unique<TypeLayout>(name);
  layout->AddMember("field", 8);
  return layout;
}

TEST(TypeRegistryTest, RegisterAndLookup) {
  TypeRegistry registry;
  TypeId a = registry.Register(MakeLayout("alpha"));
  TypeId b = registry.Register(MakeLayout("beta"));
  EXPECT_NE(a, b);
  EXPECT_EQ(registry.type_count(), 2u);
  EXPECT_EQ(registry.layout(a).name(), "alpha");
  EXPECT_EQ(registry.FindType("beta"), b);
  EXPECT_FALSE(registry.FindType("gamma").has_value());
}

TEST(TypeRegistryTest, SubclassRegistration) {
  TypeRegistry registry;
  TypeId inode = registry.Register(MakeLayout("inode"));
  SubclassId ext4 = registry.RegisterSubclass(inode, "ext4");
  SubclassId proc = registry.RegisterSubclass(inode, "proc");
  EXPECT_NE(ext4, kNoSubclass);
  EXPECT_NE(ext4, proc);
  EXPECT_EQ(registry.SubclassName(inode, ext4), "ext4");
  EXPECT_EQ(registry.SubclassName(inode, kNoSubclass), "");
  EXPECT_EQ(registry.FindSubclass(inode, "proc"), proc);
  EXPECT_FALSE(registry.FindSubclass(inode, "nfs").has_value());
}

TEST(TypeRegistryTest, SubclassRegistrationIsIdempotent) {
  TypeRegistry registry;
  TypeId inode = registry.Register(MakeLayout("inode"));
  SubclassId first = registry.RegisterSubclass(inode, "ext4");
  SubclassId second = registry.RegisterSubclass(inode, "ext4");
  EXPECT_EQ(first, second);
  EXPECT_EQ(registry.SubclassesOf(inode).size(), 1u);
}

TEST(TypeRegistryTest, SubclassesAreIndependentPerType) {
  TypeRegistry registry;
  TypeId inode = registry.Register(MakeLayout("inode"));
  TypeId dentry = registry.Register(MakeLayout("dentry"));
  registry.RegisterSubclass(inode, "ext4");
  EXPECT_TRUE(registry.SubclassesOf(dentry).empty());
  EXPECT_FALSE(registry.FindSubclass(dentry, "ext4").has_value());
}

TEST(TypeRegistryTest, QualifiedNames) {
  TypeRegistry registry;
  TypeId inode = registry.Register(MakeLayout("inode"));
  SubclassId ext4 = registry.RegisterSubclass(inode, "ext4");
  EXPECT_EQ(registry.QualifiedName(inode, kNoSubclass), "inode");
  EXPECT_EQ(registry.QualifiedName(inode, ext4), "inode:ext4");
}

}  // namespace
}  // namespace lockdoc
