#include "src/model/lock_class.h"

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/string_util.h"

namespace lockdoc {
namespace {

TEST(LockClassTest, GlobalToString) {
  EXPECT_EQ(LockClass::Global("inode_hash_lock").ToString(), "inode_hash_lock");
}

TEST(LockClassTest, EmbeddedSameToString) {
  EXPECT_EQ(LockClass::Same("i_lock", "inode").ToString(), "ES(i_lock in inode)");
}

TEST(LockClassTest, EmbeddedOtherToString) {
  EXPECT_EQ(LockClass::Other("wb.list_lock", "backing_dev_info").ToString(),
            "EO(wb.list_lock in backing_dev_info)");
}

TEST(LockClassTest, ParseRoundTrip) {
  for (const LockClass& original :
       {LockClass::Global("rcu"), LockClass::Same("d_lock", "dentry"),
        LockClass::Other("j_state_lock", "journal_t")}) {
    auto parsed = LockClass::Parse(original.ToString());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), original);
  }
}

TEST(LockClassTest, ParseToleratesWhitespace) {
  auto parsed = LockClass::Parse("  ES( i_lock in inode )  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), LockClass::Same("i_lock", "inode"));
}

TEST(LockClassTest, ParseRejectsMalformed) {
  EXPECT_FALSE(LockClass::Parse("").ok());
  EXPECT_FALSE(LockClass::Parse("ES(i_lock)").ok());
  EXPECT_FALSE(LockClass::Parse("ES(i_lock in inode").ok());
  EXPECT_FALSE(LockClass::Parse("EO( in inode)").ok());
  EXPECT_FALSE(LockClass::Parse("bad name with spaces").ok());
}

TEST(LockClassTest, OrderingDistinguishesScope) {
  EXPECT_NE(LockClass::Same("l", "t"), LockClass::Other("l", "t"));
  EXPECT_NE(LockClass::Global("l"), LockClass::Same("l", "t"));
}

TEST(LockSeqTest, ToStringEmptyIsNoLock) { EXPECT_EQ(LockSeqToString({}), "no lock"); }

TEST(LockSeqTest, ToStringJoinsWithArrows) {
  LockSeq seq = {LockClass::Global("a"), LockClass::Same("b", "t")};
  EXPECT_EQ(LockSeqToString(seq), "a -> ES(b in t)");
}

TEST(LockSeqTest, ParseNoLock) {
  auto parsed = ParseLockSeq("no lock");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
  auto empty = ParseLockSeq("   ");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(LockSeqTest, ParseRoundTrip) {
  LockSeq seq = {LockClass::Global("inode_hash_lock"), LockClass::Same("i_lock", "inode"),
                 LockClass::Other("d_lock", "dentry")};
  auto parsed = ParseLockSeq(LockSeqToString(seq));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), seq);
}

TEST(LockSeqTest, ParsePropagatesElementErrors) {
  EXPECT_FALSE(ParseLockSeq("a -> ES(broken").ok());
}

TEST(IsSubsequenceTest, EmptyRuleMatchesEverything) {
  EXPECT_TRUE(IsSubsequence({}, {}));
  EXPECT_TRUE(IsSubsequence({}, {LockClass::Global("a")}));
}

TEST(IsSubsequenceTest, OrderMatters) {
  LockSeq ab = {LockClass::Global("a"), LockClass::Global("b")};
  LockSeq ba = {LockClass::Global("b"), LockClass::Global("a")};
  EXPECT_TRUE(IsSubsequence(ab, ab));
  EXPECT_FALSE(IsSubsequence(ba, ab));
}

TEST(IsSubsequenceTest, InterleavedLocksArePermitted) {
  // Paper Sec. 5.4: a -> c -> b complies with the rule a -> b.
  LockSeq rule = {LockClass::Global("a"), LockClass::Global("b")};
  LockSeq held = {LockClass::Global("a"), LockClass::Global("c"), LockClass::Global("b")};
  EXPECT_TRUE(IsSubsequence(rule, held));
}

TEST(IsSubsequenceTest, MissingLockFails) {
  LockSeq rule = {LockClass::Global("a"), LockClass::Global("b")};
  LockSeq held = {LockClass::Global("a")};
  EXPECT_FALSE(IsSubsequence(rule, held));
}

TEST(IsSubsequenceTest, DuplicateClassesRequireDuplicateHolds) {
  LockClass eo = LockClass::Other("i_lock", "inode");
  EXPECT_FALSE(IsSubsequence({eo, eo}, {eo}));
  EXPECT_TRUE(IsSubsequence({eo, eo}, {eo, LockClass::Global("x"), eo}));
}

// Property sweep: every contiguous and non-contiguous subsequence of a
// random sequence is accepted; random supersequences preserve matching.
class SubsequencePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SubsequencePropertyTest, MaskSubsequencesAlwaysMatch) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  LockSeq full;
  for (int i = 0; i < 8; ++i) {
    full.push_back(LockClass::Global(StrFormat("l%d", static_cast<int>(rng.Below(12)))));
  }
  for (uint64_t mask = 0; mask < 256; mask += 1 + rng.Below(7)) {
    LockSeq sub;
    for (int i = 0; i < 8; ++i) {
      if ((mask >> i) & 1) {
        sub.push_back(full[static_cast<size_t>(i)]);
      }
    }
    EXPECT_TRUE(IsSubsequence(sub, full)) << LockSeqToString(sub) << " vs "
                                          << LockSeqToString(full);
  }
}

TEST_P(SubsequencePropertyTest, InsertionPreservesMatch) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 977);
  LockSeq rule;
  for (int i = 0; i < 4; ++i) {
    rule.push_back(LockClass::Global(StrFormat("r%d", i)));
  }
  LockSeq held = rule;
  // Insert unrelated locks at random positions.
  for (int i = 0; i < 5; ++i) {
    size_t pos = rng.Below(held.size() + 1);
    held.insert(held.begin() + static_cast<ptrdiff_t>(pos),
                LockClass::Global(StrFormat("x%d", i)));
  }
  EXPECT_TRUE(IsSubsequence(rule, held));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubsequencePropertyTest, ::testing::Range(0, 10));

TEST(LockSeqHashTest, EqualSequencesHashEqual) {
  LockSeq a = {LockClass::Global("x"), LockClass::Same("l", "t")};
  LockSeq b = a;
  EXPECT_EQ(LockSeqHash()(a), LockSeqHash()(b));
}

TEST(LockSeqHashTest, ScopeAffectsHash) {
  LockSeq a = {LockClass::Same("l", "t")};
  LockSeq b = {LockClass::Other("l", "t")};
  EXPECT_NE(LockSeqHash()(a), LockSeqHash()(b));
}

}  // namespace
}  // namespace lockdoc
