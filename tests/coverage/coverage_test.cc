#include "src/coverage/coverage.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(CoverageTest, UnexecutedFunctionCountsInDenominator) {
  CoverageTracker tracker;
  tracker.RegisterFunction("fs/a.c", "called", 10, 19);
  tracker.RegisterFunction("fs/a.c", "uncalled", 30, 39);
  tracker.OnFunctionEnter("fs/a.c", "called", 10, 19);

  DirectoryCoverage cov = tracker.ReportDirectory("fs");
  EXPECT_EQ(cov.functions_total, 2u);
  EXPECT_EQ(cov.functions_hit, 1u);
  EXPECT_DOUBLE_EQ(cov.function_pct(), 50.0);
  EXPECT_EQ(cov.lines_total, 20u);
  EXPECT_GT(cov.lines_hit, 0u);
  EXPECT_LT(cov.lines_hit, 20u);
}

TEST(CoverageTest, LineExecutionRecorded) {
  CoverageTracker tracker;
  tracker.OnLineExecuted("fs/a.c", 42);
  tracker.OnLineExecuted("fs/a.c", 42);  // Idempotent.
  tracker.OnLineExecuted("fs/a.c", 43);
  DirectoryCoverage cov = tracker.ReportDirectory("fs");
  EXPECT_EQ(cov.lines_hit, 2u);
}

TEST(CoverageTest, DirectoryGroupingIsNonRecursive) {
  CoverageTracker tracker;
  tracker.RegisterFunction("fs/a.c", "f1", 1, 10);
  tracker.RegisterFunction("fs/ext4/b.c", "f2", 1, 10);
  DirectoryCoverage fs = tracker.ReportDirectory("fs");
  DirectoryCoverage ext4 = tracker.ReportDirectory("fs/ext4");
  // Tab. 3 semantics: files *directly* inside the directory.
  EXPECT_EQ(fs.functions_total, 1u);
  EXPECT_EQ(ext4.functions_total, 1u);
}

TEST(CoverageTest, ReportByDirectoryCoversAllDirs) {
  CoverageTracker tracker;
  tracker.RegisterFunction("fs/a.c", "f1", 1, 10);
  tracker.RegisterFunction("mm/b.c", "f2", 1, 10);
  tracker.RegisterFunction("toplevel.c", "f3", 1, 10);
  auto report = tracker.ReportByDirectory();
  std::set<std::string> dirs;
  for (const DirectoryCoverage& cov : report) {
    dirs.insert(cov.directory);
  }
  EXPECT_EQ(dirs, (std::set<std::string>{"fs", "mm", "."}));
}

TEST(CoverageTest, FunctionEnterImpliesStraightLinePrefix) {
  CoverageTracker tracker;
  tracker.OnFunctionEnter("fs/a.c", "f", 100, 199);
  DirectoryCoverage cov = tracker.ReportDirectory("fs");
  // 90 % of the body counts as executed (the model's straight-line prefix).
  EXPECT_EQ(cov.lines_total, 100u);
  EXPECT_EQ(cov.lines_hit, 90u);
}

TEST(CoverageTest, EmptyDirectoryIsZero) {
  CoverageTracker tracker;
  DirectoryCoverage cov = tracker.ReportDirectory("does/not/exist");
  EXPECT_EQ(cov.lines_total, 0u);
  EXPECT_DOUBLE_EQ(cov.line_pct(), 0.0);
  EXPECT_DOUBLE_EQ(cov.function_pct(), 0.0);
}

}  // namespace
}  // namespace lockdoc
