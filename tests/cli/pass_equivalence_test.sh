#!/bin/sh
# Golden equivalence: `lockdoc analyze INPUT --passes P` must be
# byte-identical (cmp) to the standalone `lockdoc P INPUT` command, for
# every registered pass, on both a raw trace and a .lockdb snapshot, and
# a multi-pass run must equal the concatenation of the standalone outputs
# at --jobs 1, 2 and 8.
#
# Usage: pass_equivalence_test.sh <lockdoc-binary> <scratch-dir>
set -eu

LOCKDOC="$1"
DIR="$2"
mkdir -p "$DIR"

"$LOCKDOC" simulate --out "$DIR/eq.trace" --ops 2000 --seed 7
"$LOCKDOC" simulate --out "$DIR/eq_old.trace" --ops 2000 --seed 7 --clean
"$LOCKDOC" import "$DIR/eq.trace" --out "$DIR/eq.lockdb"
"$LOCKDOC" import "$DIR/eq_old.trace" --out "$DIR/eq_old.lockdb"

# Every single-input pass, standalone vs analyze, trace and snapshot.
for input in "$DIR/eq.trace" "$DIR/eq.lockdb"; do
  for pass in check derive violations lock-order modes report; do
    "$LOCKDOC" "$pass" "$input" > "$DIR/standalone.txt"
    "$LOCKDOC" analyze "$input" --passes "$pass" > "$DIR/via_analyze.txt"
    cmp "$DIR/standalone.txt" "$DIR/via_analyze.txt" || {
      echo "FAIL: analyze --passes $pass differs from standalone $pass on $input" >&2
      exit 1
    }
  done
done

# Pass flags are honored identically.
"$LOCKDOC" violations "$DIR/eq.trace" --limit 3 > "$DIR/standalone.txt"
"$LOCKDOC" analyze "$DIR/eq.trace" --passes violations --limit 3 > "$DIR/via_analyze.txt"
cmp "$DIR/standalone.txt" "$DIR/via_analyze.txt"
"$LOCKDOC" modes "$DIR/eq.trace" --all > "$DIR/standalone.txt"
"$LOCKDOC" analyze "$DIR/eq.trace" --passes modes --all > "$DIR/via_analyze.txt"
cmp "$DIR/standalone.txt" "$DIR/via_analyze.txt"
"$LOCKDOC" report "$DIR/eq.trace" --full > "$DIR/standalone.txt"
"$LOCKDOC" analyze "$DIR/eq.trace" --passes report --full > "$DIR/via_analyze.txt"
cmp "$DIR/standalone.txt" "$DIR/via_analyze.txt"

# The diff pass against a baseline input equals the standalone diff.
"$LOCKDOC" diff "$DIR/eq_old.trace" "$DIR/eq.trace" > "$DIR/standalone.txt"
"$LOCKDOC" analyze "$DIR/eq.trace" --passes diff --baseline "$DIR/eq_old.trace" \
  > "$DIR/via_analyze.txt"
cmp "$DIR/standalone.txt" "$DIR/via_analyze.txt"
"$LOCKDOC" analyze "$DIR/eq.lockdb" --passes diff --baseline "$DIR/eq_old.lockdb" \
  > "$DIR/via_analyze_db.txt"
cmp "$DIR/standalone.txt" "$DIR/via_analyze_db.txt"

# A multi-pass run is the concatenation of the standalone outputs, and is
# byte-identical at any thread count.
"$LOCKDOC" check "$DIR/eq.lockdb" > "$DIR/concat.txt"
"$LOCKDOC" violations "$DIR/eq.lockdb" >> "$DIR/concat.txt"
"$LOCKDOC" report "$DIR/eq.lockdb" >> "$DIR/concat.txt"
for jobs in 1 2 8; do
  "$LOCKDOC" analyze "$DIR/eq.lockdb" --passes check,violations,report --jobs "$jobs" \
    > "$DIR/multi_j$jobs.txt"
  cmp "$DIR/concat.txt" "$DIR/multi_j$jobs.txt" || {
    echo "FAIL: multi-pass analyze at --jobs $jobs differs" >&2
    exit 1
  }
done

# A full-suite run (no --passes) covers every pass except diff, in
# registry order, at any jobs value.
"$LOCKDOC" analyze "$DIR/eq.lockdb" --jobs 1 > "$DIR/full_j1.txt"
"$LOCKDOC" analyze "$DIR/eq.lockdb" --jobs 8 > "$DIR/full_j8.txt"
cmp "$DIR/full_j1.txt" "$DIR/full_j8.txt"

# --out-dir: per-pass files match the stdout of the standalone command.
"$LOCKDOC" analyze "$DIR/eq.lockdb" --passes check,lock-order --out-dir "$DIR/passes_out" \
  > /dev/null
"$LOCKDOC" check "$DIR/eq.lockdb" > "$DIR/standalone.txt"
cmp "$DIR/standalone.txt" "$DIR/passes_out/check.txt"
"$LOCKDOC" lock-order "$DIR/eq.lockdb" > "$DIR/standalone.txt"
cmp "$DIR/standalone.txt" "$DIR/passes_out/lock-order.txt"

# --timings-json emits machine-readable timings without disturbing stdout.
"$LOCKDOC" analyze "$DIR/eq.lockdb" --passes check --timings-json "$DIR/timings.json" \
  > "$DIR/via_analyze.txt" 2> /dev/null
"$LOCKDOC" check "$DIR/eq.lockdb" > "$DIR/standalone.txt"
cmp "$DIR/standalone.txt" "$DIR/via_analyze.txt"
grep -q '"phases"' "$DIR/timings.json"

# Salvage x snapshot: importing a damaged trace with --salvage must produce
# a snapshot whose analysis is byte-identical to analyzing the damaged
# trace directly in salvage mode, for every pass, at any thread count.
head -c 60000 "$DIR/eq.trace" > "$DIR/eq_damaged.trace"
"$LOCKDOC" import "$DIR/eq_damaged.trace" --out "$DIR/eq_salvaged.lockdb" --salvage \
  > /dev/null
for pass in check derive violations lock-order modes report; do
  "$LOCKDOC" "$pass" "$DIR/eq_damaged.trace" --salvage > "$DIR/standalone.txt"
  for jobs in 1 2 8; do
    "$LOCKDOC" analyze "$DIR/eq_salvaged.lockdb" --passes "$pass" --jobs "$jobs" \
      > "$DIR/via_snapshot.txt"
    cmp "$DIR/standalone.txt" "$DIR/via_snapshot.txt" || {
      echo "FAIL: $pass on salvaged snapshot differs from --salvage trace at --jobs $jobs" >&2
      exit 1
    }
  done
done

# Cross-version equivalence: a v1 and a v2 snapshot of the same trace must
# analyze byte-identically to the trace itself, for every pass, at any
# thread count. (eq.lockdb above is the v2 default; import v1 explicitly.)
"$LOCKDOC" import "$DIR/eq.trace" --out "$DIR/eq_v1.lockdb" --format v1 > /dev/null
for pass in check derive violations lock-order modes report; do
  "$LOCKDOC" "$pass" "$DIR/eq.trace" > "$DIR/standalone.txt"
  for input in "$DIR/eq_v1.lockdb" "$DIR/eq.lockdb"; do
    for jobs in 1 2 8; do
      "$LOCKDOC" analyze "$input" --passes "$pass" --jobs "$jobs" > "$DIR/via_snapshot.txt"
      cmp "$DIR/standalone.txt" "$DIR/via_snapshot.txt" || {
        echo "FAIL: $pass on $input differs from the trace at --jobs $jobs" >&2
        exit 1
      }
    done
  done
done

# Range workload: the mm mix exercises range locks (instance-qualified
# mmap_lock spans). Every pass must be byte-identical between the trace
# and its .lockdb snapshot, at any thread count.
"$LOCKDOC" simulate --workload mm --out "$DIR/eq_mm.trace" --ops 2500 --seed 11
"$LOCKDOC" import "$DIR/eq_mm.trace" --out "$DIR/eq_mm.lockdb" > /dev/null
for pass in check derive violations lock-order modes report; do
  "$LOCKDOC" "$pass" "$DIR/eq_mm.trace" > "$DIR/standalone.txt"
  for input in "$DIR/eq_mm.trace" "$DIR/eq_mm.lockdb"; do
    for jobs in 1 2 8; do
      "$LOCKDOC" analyze "$input" --passes "$pass" --jobs "$jobs" > "$DIR/via_mm.txt"
      cmp "$DIR/standalone.txt" "$DIR/via_mm.txt" || {
        echo "FAIL: mm $pass on $input differs from the trace at --jobs $jobs" >&2
        exit 1
      }
    done
  done
done

# Structured formats: every renderer must be deterministic across thread
# counts and byte-identical between a trace and its snapshot, and `analyze
# --format F` must equal the standalone command's --format F output.
for fmt in text json html; do
  for pass in violations report; do
    "$LOCKDOC" "$pass" "$DIR/eq.trace" --format "$fmt" > "$DIR/fmt_ref.out"
    for input in "$DIR/eq.trace" "$DIR/eq.lockdb"; do
      for jobs in 1 2 8; do
        "$LOCKDOC" "$pass" "$input" --format "$fmt" --jobs "$jobs" > "$DIR/fmt_got.out"
        cmp "$DIR/fmt_ref.out" "$DIR/fmt_got.out" || {
          echo "FAIL: $pass --format $fmt on $input differs at --jobs $jobs" >&2
          exit 1
        }
      done
    done
    "$LOCKDOC" analyze "$DIR/eq.lockdb" --passes "$pass" --format "$fmt" \
      > "$DIR/fmt_got.out"
    cmp "$DIR/fmt_ref.out" "$DIR/fmt_got.out" || {
      echo "FAIL: analyze --passes $pass --format $fmt differs from standalone" >&2
      exit 1
    }
  done
done

# --out-dir names files by the format's extension and writes the same bytes
# the standalone command prints.
"$LOCKDOC" analyze "$DIR/eq.lockdb" --passes violations --format json \
  --out-dir "$DIR/fmt_out" > /dev/null
"$LOCKDOC" violations "$DIR/eq.lockdb" --format json > "$DIR/fmt_ref.out"
cmp "$DIR/fmt_ref.out" "$DIR/fmt_out/violations.json"
"$LOCKDOC" analyze "$DIR/eq.lockdb" --passes check --format html \
  --out-dir "$DIR/fmt_out" > /dev/null
"$LOCKDOC" check "$DIR/eq.lockdb" --format html > "$DIR/fmt_ref.out"
cmp "$DIR/fmt_ref.out" "$DIR/fmt_out/check.html"

# --filter-config suppression is deterministic and reported, never silent.
cat > "$DIR/filt.conf" <<'EOF'
[ignored-functions]
vfs_write
EOF
"$LOCKDOC" violations "$DIR/eq.trace" --filter-config "$DIR/filt.conf" > "$DIR/filt1.out"
"$LOCKDOC" violations "$DIR/eq.lockdb" --filter-config "$DIR/filt.conf" --jobs 8 \
  > "$DIR/filt2.out"
cmp "$DIR/filt1.out" "$DIR/filt2.out"
grep -q "blacklist suppressed" "$DIR/filt1.out" || {
  echo "FAIL: --filter-config suppressed nothing (workload drift?)" >&2
  exit 1
}

# The full suite derives rules exactly once.
derivations=$("$LOCKDOC" analyze "$DIR/eq.lockdb" --timings 2>&1 > /dev/null |
  grep -c "rule derivation (interned)")
if [ "$derivations" -ne 1 ]; then
  echo "FAIL: expected exactly 1 rule derivation in full analyze, got $derivations" >&2
  exit 1
fi

echo "pass equivalence OK"
