#!/bin/sh
# CLI exit-code matrix: every analysis command against a good trace, a good
# .lockdb snapshot, a damaged input, and a missing path — plus the strict
# flag-validation contract (unknown or inapplicable flag = usage error 64).
#
# Exit codes: 0 ok, 1 input/analysis error, 2 bad command line (usage),
# 64 strict usage error (bad flag, bad pass name, doctor misuse).
#
# Usage: exit_code_matrix_test.sh <lockdoc-binary> <scratch-dir>
set -u

LOCKDOC="$1"
DIR="$2"
mkdir -p "$DIR"
failures=0

expect() {
  want="$1"
  shift
  "$@" > /dev/null 2>&1
  got=$?
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: expected exit $want, got $got: $*" >&2
    failures=$((failures + 1))
  fi
}

# Fixtures: good trace + snapshot, damaged trace (truncated), damaged
# snapshot (flipped bytes), garbage file, missing path.
"$LOCKDOC" simulate --out "$DIR/mx.trace" --ops 1500 --seed 5 || exit 1
"$LOCKDOC" import "$DIR/mx.trace" --out "$DIR/mx.lockdb" || exit 1
head -c 50000 "$DIR/mx.trace" > "$DIR/mx_damaged.trace"
cp "$DIR/mx.lockdb" "$DIR/mx_damaged.lockdb"
printf '\377\377\377\377' | dd of="$DIR/mx_damaged.lockdb" bs=1 seek=4000 conv=notrunc 2> /dev/null
echo garbage > "$DIR/mx_garbage.trace"
MISSING="$DIR/does_not_exist.trace"

# Every analysis command: good inputs succeed, damaged and missing fail 1.
for cmd in stats derive check violations lock-order modes report analyze; do
  expect 0 "$LOCKDOC" "$cmd" "$DIR/mx.trace"
  expect 0 "$LOCKDOC" "$cmd" "$DIR/mx.lockdb"
  expect 1 "$LOCKDOC" "$cmd" "$DIR/mx_damaged.trace"
  expect 1 "$LOCKDOC" "$cmd" "$DIR/mx_damaged.lockdb"
  expect 1 "$LOCKDOC" "$cmd" "$MISSING"
done
expect 0 "$LOCKDOC" export-csv "$DIR/mx.trace" --dir "$DIR/mx_csv"
expect 1 "$LOCKDOC" export-csv "$MISSING" --dir "$DIR/mx_csv"
expect 0 "$LOCKDOC" diff "$DIR/mx.trace" "$DIR/mx.lockdb"
expect 1 "$LOCKDOC" diff "$MISSING" "$DIR/mx.trace"
expect 1 "$LOCKDOC" import "$MISSING" --out "$DIR/x.lockdb"
expect 1 "$LOCKDOC" import "$DIR/mx_damaged.trace" --out "$DIR/x.lockdb"

# Damaged traces are salvageable; damaged snapshots are not (checksums).
expect 0 "$LOCKDOC" stats "$DIR/mx_damaged.trace" --salvage
expect 1 "$LOCKDOC" stats "$DIR/mx_damaged.lockdb" --salvage

# doctor: 0 clean, 1 salvageable damage, 2 unreadable, 64 usage.
expect 0 "$LOCKDOC" doctor "$DIR/mx.trace"
expect 0 "$LOCKDOC" doctor "$DIR/mx.lockdb"
expect 1 "$LOCKDOC" doctor "$DIR/mx_damaged.trace"
expect 1 "$LOCKDOC" doctor "$DIR/mx_damaged.lockdb"
expect 2 "$LOCKDOC" doctor "$DIR/mx_garbage.trace"
expect 2 "$LOCKDOC" doctor "$MISSING"
expect 64 "$LOCKDOC" doctor
# Snapshot repair: salvageable damage still reports 1, and the repaired
# container comes out structurally clean (doctor exit 0 modulo payload).
expect 1 "$LOCKDOC" doctor "$DIR/mx_damaged.lockdb" --repair "$DIR/mx_repaired.lockdb"
[ -f "$DIR/mx_repaired.lockdb" ] || {
  echo "FAIL: doctor --repair did not write the repaired snapshot" >&2
  failures=$((failures + 1))
}

# No command line at all / unknown command: usage, exit 2.
expect 2 "$LOCKDOC"
expect 2 "$LOCKDOC" frobnicate "$DIR/mx.trace"

# Strict flag validation: a flag the command does not accept is exit 64,
# even when the input is perfectly fine.
expect 64 "$LOCKDOC" stats "$DIR/mx.trace" --tac 0.9
expect 64 "$LOCKDOC" derive "$DIR/mx.trace" --limit 3
expect 64 "$LOCKDOC" check "$DIR/mx.trace" --full
expect 64 "$LOCKDOC" violations "$DIR/mx.trace" --rules /dev/null
expect 64 "$LOCKDOC" lock-order "$DIR/mx.trace" --all
expect 64 "$LOCKDOC" modes "$DIR/mx.trace" --spec
expect 64 "$LOCKDOC" report "$DIR/mx.trace" --out-dir "$DIR/x"
expect 64 "$LOCKDOC" simulate --out "$DIR/x.trace" --salvage
expect 64 "$LOCKDOC" import "$DIR/mx.trace" --out "$DIR/x.lockdb" --bogus-flag
expect 64 "$LOCKDOC" doctor "$DIR/mx.trace" --jobs 2
expect 64 "$LOCKDOC" analyze "$DIR/mx.trace" --unknown-flag 1

# analyze-specific usage errors.
expect 64 "$LOCKDOC" analyze "$DIR/mx.trace" --passes bogus
expect 64 "$LOCKDOC" analyze "$DIR/mx.trace" --passes diff
expect 64 "$LOCKDOC" analyze "$DIR/mx.trace" --baseline
expect 64 "$LOCKDOC" check "$DIR/mx.trace" --timings-json

# --format: good values work everywhere the flag exists; a bad or bare
# value is exit 64; commands without a report document reject it.
expect 0 "$LOCKDOC" violations "$DIR/mx.trace" --format json
expect 0 "$LOCKDOC" report "$DIR/mx.lockdb" --format html
expect 0 "$LOCKDOC" analyze "$DIR/mx.trace" --format json
expect 0 "$LOCKDOC" diff "$DIR/mx.trace" "$DIR/mx.lockdb" --format json
expect 64 "$LOCKDOC" violations "$DIR/mx.trace" --format bogus
expect 64 "$LOCKDOC" violations "$DIR/mx.trace" --format
expect 64 "$LOCKDOC" analyze "$DIR/mx.trace" --format xml
expect 64 "$LOCKDOC" stats "$DIR/mx.trace" --format json

# --filter-config: a missing or malformed file is exit 64 before any input
# is loaded; a well-formed one is accepted.
printf '[ignored-functions]\nvfs_write\n' > "$DIR/mx_filter_ok.conf"
printf 'orphan-name\n' > "$DIR/mx_filter_bad.conf"
printf '[no-such-section]\n' > "$DIR/mx_filter_badsec.conf"
expect 0 "$LOCKDOC" violations "$DIR/mx.trace" --filter-config "$DIR/mx_filter_ok.conf"
expect 0 "$LOCKDOC" report "$DIR/mx.trace" --filter-config "$DIR/mx_filter_ok.conf"
expect 64 "$LOCKDOC" violations "$DIR/mx.trace" --filter-config "$MISSING"
expect 64 "$LOCKDOC" violations "$DIR/mx.trace" --filter-config "$DIR/mx_filter_bad.conf"
expect 64 "$LOCKDOC" violations "$DIR/mx.trace" --filter-config "$DIR/mx_filter_badsec.conf"
expect 64 "$LOCKDOC" violations "$DIR/mx.trace" --filter-config
expect 64 "$LOCKDOC" check "$DIR/mx.trace" --filter-config "$DIR/mx_filter_ok.conf"

# serve: strict usage validation up front (64), clean --once runs exit 0.
mkdir -p "$DIR/mx_spool/incoming"
expect 0 "$LOCKDOC" serve "$DIR/mx_spool" --once
expect 64 "$LOCKDOC" serve
expect 64 "$LOCKDOC" serve "$DIR/mx_missing_spool" --once
expect 64 "$LOCKDOC" serve "$DIR/mx_spool" --once --state
expect 64 "$LOCKDOC" serve "$DIR/mx_spool" --state "$DIR/mx_garbage.trace/state" --once
expect 64 "$LOCKDOC" serve "$DIR/mx_spool" --once --poll-ms 50
expect 64 "$LOCKDOC" serve "$DIR/mx_spool" --once --max-resident 0
expect 64 "$LOCKDOC" serve "$DIR/mx_spool" --once --max-resident abc
expect 64 "$LOCKDOC" serve "$DIR/mx_spool" --once --deadline-ms -5
expect 64 "$LOCKDOC" serve "$DIR/mx_spool" --once --bogus-flag 1

if [ "$failures" -ne 0 ]; then
  echo "$failures exit-code expectations failed" >&2
  exit 1
fi
echo "exit-code matrix OK"
