#!/bin/sh
# Structured-format validation: emit JSON and HTML reports from every
# phase-3 pass and check them with scripts/check_report_formats.py —
# JSON must parse and match the lockdoc-report-v1 schema shape, HTML must
# be tag-balanced with the expected preamble. Skips (exit 0 with a note)
# when python3 is unavailable; CI always has it.
#
# Usage: report_format_test.sh <lockdoc-binary> <checker.py> <scratch-dir>
set -eu

LOCKDOC="$1"
CHECKER="$2"
DIR="$3"
mkdir -p "$DIR"

if ! command -v python3 > /dev/null 2>&1; then
  echo "SKIP: python3 not available; structured-format validation not run"
  exit 0
fi

"$LOCKDOC" simulate --out "$DIR/fmt.trace" --ops 2000 --seed 7

for pass in check derive violations lock-order modes report; do
  "$LOCKDOC" "$pass" "$DIR/fmt.trace" --format json > "$DIR/${pass}.json"
  "$LOCKDOC" "$pass" "$DIR/fmt.trace" --format html > "$DIR/${pass}.html"
done
"$LOCKDOC" report "$DIR/fmt.trace" --full --format json > "$DIR/report_full.json"
"$LOCKDOC" report "$DIR/fmt.trace" --full --format html > "$DIR/report_full.html"

# analyze --out-dir names files by format extension; validate those too.
"$LOCKDOC" analyze "$DIR/fmt.trace" --format json --out-dir "$DIR/out_json"
"$LOCKDOC" analyze "$DIR/fmt.trace" --format html --out-dir "$DIR/out_html"

python3 "$CHECKER" json "$DIR"/*.json "$DIR/out_json"/*.json
python3 "$CHECKER" html "$DIR"/*.html "$DIR/out_html"/*.html

echo "report format validation OK"
