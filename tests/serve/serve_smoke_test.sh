#!/bin/sh
# serve smoke: a seeded spool drained with --once must answer every
# registered pass with bytes identical (cmp) to the standalone CLI command,
# honor per-request options, enforce the memory guardrail, time out
# runaway requests without dying, and run as a polling daemon.
#
# Usage: serve_smoke_test.sh <lockdoc-binary> <scratch-dir>
set -u

LOCKDOC="$1"
DIR="$2"

rm -rf "$DIR"
mkdir -p "$DIR"
failures=0

fail() {
  echo "FAIL: $*" >&2
  failures=$((failures + 1))
}

"$LOCKDOC" simulate --out "$DIR/web.trace" --ops 1500 --seed 3 > /dev/null || exit 1
"$LOCKDOC" simulate --out "$DIR/base.trace" --ops 1500 --seed 3 --clean > /dev/null || exit 1

# --- every pass, byte-identical to the CLI ---
SPOOL="$DIR/spool"
mkdir -p "$SPOOL/incoming" "$SPOOL/requests"
cp "$DIR/web.trace" "$SPOOL/incoming/web.trace"
cp "$DIR/base.trace" "$SPOOL/incoming/base.trace"
for pass in check derive violations lock-order modes report; do
  printf 'pass=%s\ninput=web\n' "$pass" > "$SPOOL/requests/$pass.req"
done
printf 'pass=diff\ninput=web\nbaseline=base\n' > "$SPOOL/requests/diff.req"
# Per-request knobs must mirror the CLI flags exactly.
printf 'pass=violations\ninput=web\nlimit=2\n' > "$SPOOL/requests/viol2.req"
printf 'pass=modes\ninput=web\nall=1\n' > "$SPOOL/requests/modesall.req"
printf 'pass=report\ninput=web\nfull=1\n' > "$SPOOL/requests/reportfull.req"
printf 'pass=derive\ninput=web\ntac=0.5\n' > "$SPOOL/requests/tac.req"
# format= mirrors the CLI's --format: same renderer, same bytes.
printf 'pass=violations\ninput=web\nformat=json\n' > "$SPOOL/requests/violjson.req"
printf 'pass=report\ninput=web\nformat=json\n' > "$SPOOL/requests/reportjson.req"
printf 'pass=report\ninput=web\nformat=html\n' > "$SPOOL/requests/reporthtml.req"
printf 'pass=check\ninput=web\nformat=text\n' > "$SPOOL/requests/checktext.req"
# Typed errors, not crashes.
printf 'pass=nope\ninput=web\n' > "$SPOOL/requests/badpass.req"
printf 'pass=check\ninput=ghost\n' > "$SPOOL/requests/badinput.req"
printf 'pass=check\ninput=../../etc/passwd\n' > "$SPOOL/requests/escape.req"
printf 'pass=check\ninput=web\nformat=bogus\n' > "$SPOOL/requests/badformat.req"

"$LOCKDOC" serve "$SPOOL" --once > /dev/null || fail "serve --once failed"

for pass in check derive violations lock-order modes report; do
  "$LOCKDOC" "$pass" "$DIR/web.trace" > "$DIR/expect.out" || fail "CLI $pass failed"
  cmp -s "$DIR/expect.out" "$SPOOL/responses/$pass.out" || fail "$pass response != CLI bytes"
done
"$LOCKDOC" diff "$DIR/base.trace" "$DIR/web.trace" > "$DIR/expect.out" || fail "CLI diff failed"
cmp -s "$DIR/expect.out" "$SPOOL/responses/diff.out" || fail "diff response != CLI bytes"
"$LOCKDOC" violations "$DIR/web.trace" --limit 2 > "$DIR/expect.out"
cmp -s "$DIR/expect.out" "$SPOOL/responses/viol2.out" || fail "limit=2 response != CLI bytes"
"$LOCKDOC" modes "$DIR/web.trace" --all > "$DIR/expect.out"
cmp -s "$DIR/expect.out" "$SPOOL/responses/modesall.out" || fail "all=1 response != CLI bytes"
"$LOCKDOC" report "$DIR/web.trace" --full > "$DIR/expect.out"
cmp -s "$DIR/expect.out" "$SPOOL/responses/reportfull.out" || fail "full=1 response != CLI bytes"
"$LOCKDOC" derive "$DIR/web.trace" --tac 0.5 > "$DIR/expect.out"
cmp -s "$DIR/expect.out" "$SPOOL/responses/tac.out" || fail "tac=0.5 response != CLI bytes"

for req in violjson reportjson; do
  pass=violations; [ "$req" = "reportjson" ] && pass=report
  "$LOCKDOC" "$pass" "$DIR/web.trace" --format json > "$DIR/expect.out"
  cmp -s "$DIR/expect.out" "$SPOOL/responses/$req.out" || fail "format=json $pass != CLI bytes"
done
"$LOCKDOC" report "$DIR/web.trace" --format html > "$DIR/expect.out"
cmp -s "$DIR/expect.out" "$SPOOL/responses/reporthtml.out" || fail "format=html != CLI bytes"
"$LOCKDOC" check "$DIR/web.trace" > "$DIR/expect.out"
cmp -s "$DIR/expect.out" "$SPOOL/responses/checktext.out" || fail "format=text != CLI bytes"
grep -q '^format=json$' "$SPOOL/responses/violjson.meta" || fail "format=json missing from meta"

grep -q '^kind=unknown-pass$' "$SPOOL/responses/badpass.meta" || fail "bad pass not typed unknown-pass"
grep -q '^kind=unknown-input$' "$SPOOL/responses/badinput.meta" || fail "bad input not typed unknown-input"
grep -q '^kind=bad-request$' "$SPOOL/responses/escape.meta" || fail "path escape not typed bad-request"
grep -q '^kind=bad-request$' "$SPOOL/responses/badformat.meta" || fail "bad format not typed bad-request"
[ -f "$SPOOL/responses/badpass.out" ] && fail "error response must not carry an .out"
[ -f "$SPOOL/responses/badformat.out" ] && fail "bad-format response must not carry an .out"

# A second --once run on the drained spool is a clean no-op.
"$LOCKDOC" serve "$SPOOL" --once > "$DIR/stats2.txt" || fail "idle serve --once failed"
grep -q 'answered_ok=0' "$DIR/stats2.txt" || fail "idle run answered something"

# --- memory guardrail: --max-resident 1 with two snapshots must evict ---
SPOOL2="$DIR/spool_lru"
mkdir -p "$SPOOL2/incoming" "$SPOOL2/requests"
cp "$DIR/web.trace" "$SPOOL2/incoming/web.trace"
cp "$DIR/base.trace" "$SPOOL2/incoming/base.trace"
printf 'pass=check\ninput=web\n' > "$SPOOL2/requests/a.req"
printf 'pass=check\ninput=base\n' > "$SPOOL2/requests/b.req"
printf 'pass=lock-order\ninput=web\n' > "$SPOOL2/requests/c.req"
"$LOCKDOC" serve "$SPOOL2" --once --max-resident 1 > "$DIR/lru_stats.txt" || fail "LRU serve failed"
grep -Eq 'evictions=[1-9]' "$DIR/lru_stats.txt" || fail "max-resident 1 never evicted"
"$LOCKDOC" check "$DIR/web.trace" > "$DIR/expect.out"
cmp -s "$DIR/expect.out" "$SPOOL2/responses/a.out" || fail "evicted-and-reloaded response differs"

# --- deadline: a 1 ms budget must produce a typed timeout, not a hang or
# --- a dead service; the same spool then answers fine without a deadline.
SPOOL3="$DIR/spool_deadline"
mkdir -p "$SPOOL3/incoming" "$SPOOL3/requests"
"$LOCKDOC" simulate --out "$SPOOL3/incoming/big.trace" --ops 20000 --seed 1 > /dev/null
printf 'pass=report\ninput=big\n' > "$SPOOL3/requests/slow.req"
"$LOCKDOC" serve "$SPOOL3" --once --deadline-ms 1 > /dev/null || fail "serve died on timeout"
grep -q '^kind=timeout$' "$SPOOL3/responses/slow.meta" || fail "no typed timeout response"
printf 'pass=check\ninput=big\n' > "$SPOOL3/requests/after.req"
"$LOCKDOC" serve "$SPOOL3" --once > /dev/null || fail "serve dead after timeout"
grep -q '^status=ok$' "$SPOOL3/responses/after.meta" || fail "input unanswerable after a timeout"

# --- concurrency matrix: answers are byte-identical at any --workers and
# --- --jobs combination (the scheduler must not change a single byte) ---
for workers in 1 2 4; do
  for jobs in 1 8; do
    SPOOLM="$DIR/spool_w${workers}_j${jobs}"
    mkdir -p "$SPOOLM/incoming" "$SPOOLM/requests"
    cp "$DIR/web.trace" "$SPOOLM/incoming/web.trace"
    cp "$DIR/base.trace" "$SPOOLM/incoming/base.trace"
    printf 'pass=check\ninput=web\n' > "$SPOOLM/requests/check.req"
    printf 'pass=report\ninput=web\n' > "$SPOOLM/requests/report.req"
    printf 'pass=diff\ninput=web\nbaseline=base\n' > "$SPOOLM/requests/diff.req"
    printf 'pass=violations\ninput=web\nlimit=2\n' > "$SPOOLM/requests/viol2.req"
    "$LOCKDOC" serve "$SPOOLM" --once --workers "$workers" --jobs "$jobs" > /dev/null \
      || fail "serve --workers $workers --jobs $jobs failed"
    "$LOCKDOC" check "$DIR/web.trace" > "$DIR/expect.out"
    cmp -s "$DIR/expect.out" "$SPOOLM/responses/check.out" \
      || fail "check differs at workers=$workers jobs=$jobs"
    "$LOCKDOC" report "$DIR/web.trace" > "$DIR/expect.out"
    cmp -s "$DIR/expect.out" "$SPOOLM/responses/report.out" \
      || fail "report differs at workers=$workers jobs=$jobs"
    "$LOCKDOC" diff "$DIR/base.trace" "$DIR/web.trace" > "$DIR/expect.out"
    cmp -s "$DIR/expect.out" "$SPOOLM/responses/diff.out" \
      || fail "diff differs at workers=$workers jobs=$jobs"
    "$LOCKDOC" violations "$DIR/web.trace" --limit 2 > "$DIR/expect.out"
    cmp -s "$DIR/expect.out" "$SPOOLM/responses/viol2.out" \
      || fail "violations differs at workers=$workers jobs=$jobs"
  done
done

# --- socket front-end: the same bytes over TCP, sharing one scheduler ---
SPOOL6="$DIR/spool_socket"
mkdir -p "$SPOOL6/incoming"
cp "$DIR/web.trace" "$SPOOL6/incoming/web.trace"
cp "$DIR/base.trace" "$SPOOL6/incoming/base.trace"
"$LOCKDOC" serve "$SPOOL6" --listen 127.0.0.1:0 --workers 4 --poll-ms 25 \
  > "$DIR/socket_stats.txt" 2> "$DIR/socket_err.txt" &
SOCKD=$!
tries=0
while ! grep -q 'listening on' "$DIR/socket_err.txt" 2> /dev/null && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1)); sleep 0.1
done
PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$DIR/socket_err.txt" | head -1)
[ -n "$PORT" ] || fail "socket daemon never announced its port"
# Wait for the ingest so queries find the snapshots.
tries=0
while { [ ! -f "$SPOOL6/responses/base.ingest.meta" ] || \
        [ ! -f "$SPOOL6/responses/web.ingest.meta" ]; } && [ "$tries" -lt 200 ]; do
  tries=$((tries + 1)); sleep 0.1
done
if [ -n "$PORT" ]; then
  for pass in check report; do
    printf 'pass=%s\ninput=web\n' "$pass" > "$DIR/sockq.req"
    "$LOCKDOC" query "127.0.0.1:$PORT" "$DIR/sockq.req" \
      > "$DIR/sockq.out" 2> "$DIR/sockq.meta" || fail "socket query $pass failed"
    "$LOCKDOC" "$pass" "$DIR/web.trace" > "$DIR/expect.out"
    cmp -s "$DIR/expect.out" "$DIR/sockq.out" || fail "socket $pass != CLI bytes"
    grep -q '^status=ok$' "$DIR/sockq.meta" || fail "socket $pass meta not ok"
  done
  printf 'pass=diff\ninput=web\nbaseline=base\n' > "$DIR/sockq.req"
  "$LOCKDOC" query "127.0.0.1:$PORT" "$DIR/sockq.req" \
    > "$DIR/sockq.out" 2> "$DIR/sockq.meta" || fail "socket diff failed"
  "$LOCKDOC" diff "$DIR/base.trace" "$DIR/web.trace" > "$DIR/expect.out"
  cmp -s "$DIR/expect.out" "$DIR/sockq.out" || fail "socket diff != CLI bytes"
  # Structured formats cross the wire byte-identically too.
  printf 'pass=violations\ninput=web\nformat=json\n' > "$DIR/sockq.req"
  "$LOCKDOC" query "127.0.0.1:$PORT" "$DIR/sockq.req" \
    > "$DIR/sockq.out" 2> "$DIR/sockq.meta" || fail "socket format=json query failed"
  "$LOCKDOC" violations "$DIR/web.trace" --format json > "$DIR/expect.out"
  cmp -s "$DIR/expect.out" "$DIR/sockq.out" || fail "socket format=json != CLI bytes"
  # Typed errors cross the wire with the same taxonomy as the spool.
  printf 'pass=nope\ninput=web\n' > "$DIR/sockq.req"
  "$LOCKDOC" query "127.0.0.1:$PORT" "$DIR/sockq.req" \
    > "$DIR/sockq.out" 2> "$DIR/sockq.meta" && fail "bad socket query exited 0"
  grep -q '^kind=unknown-pass$' "$DIR/sockq.meta" || fail "socket error not typed"
  [ -s "$DIR/sockq.out" ] && fail "socket error carried response bytes"
  # While the socket is live the spool transport still answers (one scheduler).
  printf 'pass=check\ninput=web\n' > "$SPOOL6/requests/spool_live.req"
  tries=0
  while [ ! -f "$SPOOL6/responses/spool_live.meta" ] && [ "$tries" -lt 200 ]; do
    tries=$((tries + 1)); sleep 0.1
  done
  "$LOCKDOC" check "$DIR/web.trace" > "$DIR/expect.out"
  cmp -s "$DIR/expect.out" "$SPOOL6/responses/spool_live.out" \
    || fail "spool transport broken while socket live"
fi
kill -TERM "$SOCKD" 2> /dev/null
wait "$SOCKD"
rc=$?
[ "$rc" -eq 0 ] || fail "socket daemon exited $rc on SIGTERM"

# --- daemon mode: poll loop picks up late arrivals, stops on SIGTERM ---
SPOOL4="$DIR/spool_daemon"
mkdir -p "$SPOOL4/incoming"
"$LOCKDOC" serve "$SPOOL4" --poll-ms 25 > "$DIR/daemon_stats.txt" 2>&1 &
DAEMON=$!
cp "$DIR/web.trace" "$SPOOL4/incoming/web.trace"
mkdir -p "$SPOOL4/requests"
printf 'pass=check\ninput=web\n' > "$SPOOL4/requests/late.req"
tries=0
while [ ! -f "$SPOOL4/responses/late.meta" ] && [ "$tries" -lt 200 ]; do
  tries=$((tries + 1))
  sleep 0.1
done
kill -TERM "$DAEMON" 2> /dev/null
wait "$DAEMON"
rc=$?
[ "$rc" -eq 0 ] || fail "daemon exited $rc on SIGTERM"
[ -f "$SPOOL4/responses/late.meta" ] || fail "daemon never answered the late request"
"$LOCKDOC" check "$DIR/web.trace" > "$DIR/expect.out"
cmp -s "$DIR/expect.out" "$SPOOL4/responses/late.out" || fail "daemon response != CLI bytes"

if [ "$failures" -ne 0 ]; then
  echo "$failures serve smoke expectations failed" >&2
  exit 1
fi
echo "serve smoke OK"
