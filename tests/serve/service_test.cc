// Serve building blocks (spool, requests, journal) plus the in-process
// service end to end: ingest, answer, quarantine, LRU eviction, journal
// recovery. The shell harnesses (serve_smoke_test.sh, chaos_test.sh) cover
// the process-level contract — byte identity with the CLI and seeded kills;
// these tests pin the library-level semantics.
#include "src/serve/service.h"

#include <sys/stat.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/serve/journal.h"
#include "src/serve/request.h"
#include "src/serve/socket.h"
#include "src/serve/spool.h"
#include "src/util/socket.h"
#include "src/trace/trace_io.h"
#include "src/util/file_io.h"
#include "src/vfs/mm_kernel.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

class SpoolFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = ::testing::TempDir() + "lockdoc_serve_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    ASSERT_EQ(::system(("rm -rf " + root_).c_str()), 0);
    ASSERT_EQ(::mkdir(root_.c_str(), 0755), 0);
    layout_ = MakeSpoolLayout(root_, "");
    ASSERT_TRUE(EnsureSpoolLayout(layout_).ok());
  }

  std::string root_;
  SpoolLayout layout_;
};

TEST(SpoolLayoutTest, DefaultStateLivesUnderSpool) {
  SpoolLayout layout = MakeSpoolLayout("/spool", "");
  EXPECT_EQ(layout.incoming_dir, "/spool/incoming");
  EXPECT_EQ(layout.requests_dir, "/spool/requests");
  EXPECT_EQ(layout.responses_dir, "/spool/responses");
  EXPECT_EQ(layout.state_dir, "/spool/state");
  EXPECT_EQ(layout.snapshots_dir, "/spool/state/snapshots");
  EXPECT_EQ(layout.journal_dir, "/spool/state/journal");
  EXPECT_EQ(layout.quarantine_dir, "/spool/state/quarantine");
}

TEST(SpoolLayoutTest, ExplicitStateDirIsHonored) {
  SpoolLayout layout = MakeSpoolLayout("/spool", "/elsewhere/state");
  EXPECT_EQ(layout.state_dir, "/elsewhere/state");
  EXPECT_EQ(layout.snapshots_dir, "/elsewhere/state/snapshots");
}

TEST(SpoolLayoutTest, MissingSpoolDirIsAnError) {
  // A typo'd spool path must not be silently created.
  SpoolLayout layout = MakeSpoolLayout("/nonexistent_lockdoc_spool", "");
  EXPECT_FALSE(EnsureSpoolLayout(layout).ok());
}

TEST_F(SpoolFixture, ListSpoolFilesSortsAndSkipsTemps) {
  ASSERT_TRUE(WriteFileAtomic(layout_.incoming_dir + "/b.trace", "b").ok());
  ASSERT_TRUE(WriteFileAtomic(layout_.incoming_dir + "/a.trace", "a").ok());
  ASSERT_TRUE(WriteFileAtomic(layout_.incoming_dir + "/c.req", "c").ok());
  // A half-written atomic temp must be invisible to scans.
  ASSERT_TRUE(
      WriteFileAtomic(layout_.incoming_dir + "/" + std::string(kAtomicTempPrefix) + "x", "t")
          .ok());

  auto all = ListSpoolFiles(layout_.incoming_dir);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 3u);
  EXPECT_EQ(all.value()[0], "a.trace");
  EXPECT_EQ(all.value()[1], "b.trace");
  EXPECT_EQ(all.value()[2], "c.req");

  auto reqs = ListSpoolFiles(layout_.incoming_dir, ".req");
  ASSERT_TRUE(reqs.ok());
  ASSERT_EQ(reqs.value().size(), 1u);
  EXPECT_EQ(reqs.value()[0], "c.req");
}

TEST_F(SpoolFixture, QuarantinePublishesReasonThenMovesFile) {
  ASSERT_TRUE(WriteFileAtomic(layout_.incoming_dir + "/bad.trace", "junk").ok());
  ASSERT_TRUE(QuarantineFile(layout_, layout_.incoming_dir, "bad.trace", "unreadable",
                             "no magic", "re-export the trace")
                  .ok());
  // Original gone from incoming, preserved (not deleted) in quarantine.
  EXPECT_FALSE(FileSize(layout_.incoming_dir + "/bad.trace").ok());
  auto moved = ReadFileToString(layout_.quarantine_dir + "/bad.trace");
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), "junk");
  auto reason = ReadFileToString(layout_.quarantine_dir + "/bad.trace.reason");
  ASSERT_TRUE(reason.ok());
  EXPECT_NE(reason.value().find("kind=unreadable\n"), std::string::npos);
  EXPECT_NE(reason.value().find("detail=no magic\n"), std::string::npos);
  EXPECT_NE(reason.value().find("hint=re-export the trace\n"), std::string::npos);
}

TEST(KeyValueTest, ParseSkipsBlanksAndComments) {
  auto pairs = ParseKeyValueText("# header\npass=check\n\ninput=web\npass=again\n");
  ASSERT_TRUE(pairs.ok());
  ASSERT_EQ(pairs.value().size(), 3u);
  EXPECT_EQ(pairs.value()[0].first, "pass");
  EXPECT_EQ(pairs.value()[0].second, "check");
  EXPECT_EQ(pairs.value()[2].second, "again");  // Duplicates preserved in order.
}

TEST(KeyValueTest, MalformedLineIsAnErrorWithItsNumber) {
  auto pairs = ParseKeyValueText("pass=check\nnot a record\n");
  ASSERT_FALSE(pairs.ok());
  EXPECT_NE(pairs.status().message().find("line 2"), std::string::npos);
}

TEST(KeyValueTest, LineRoundTrips) {
  EXPECT_EQ(KeyValueLine("kind", "timeout"), "kind=timeout\n");
  auto pairs = ParseKeyValueText(KeyValueLine("a", "b=c"));
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs.value()[0].second, "b=c");  // First '=' splits; rest is value.
}

TEST(ServeRequestTest, ParsesFullRequest) {
  auto request = ParseServeRequest(
      "r1", "pass=diff\ninput=web\nbaseline=base\ntac=0.5\nlimit=3\n");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().id, "r1");
  EXPECT_EQ(request.value().pass, "diff");
  EXPECT_EQ(request.value().input, "web");
  EXPECT_EQ(request.value().baseline, "base");
  EXPECT_DOUBLE_EQ(request.value().tac, 0.5);
  EXPECT_EQ(request.value().pass_options.violation_limit, 3u);
}

TEST(ServeRequestTest, ParsesFormatKey) {
  auto request = ParseServeRequest("r1", "pass=violations\ninput=web\nformat=json\n");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().format, ReportFormat::kJson);
  EXPECT_TRUE(request.value().has_format);
  // Omitted: defaults to text without marking the key as present.
  auto plain = ParseServeRequest("r2", "pass=violations\ninput=web\n");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().format, ReportFormat::kText);
  EXPECT_FALSE(plain.value().has_format);
}

TEST(ServeRequestTest, RejectsBadFormat) {
  auto request = ParseServeRequest("r", "pass=check\ninput=web\nformat=bogus\n");
  ASSERT_FALSE(request.ok());
  EXPECT_NE(request.status().message().find("expected text, json or html"),
            std::string::npos);
}

TEST(ServeRequestTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseServeRequest("r", "input=web\n").ok());       // No pass.
  EXPECT_FALSE(ParseServeRequest("r", "pass=check\n").ok());      // No input.
  EXPECT_FALSE(ParseServeRequest("r", "pass=check\ninput=web\ntac=2\n").ok());
  EXPECT_FALSE(ParseServeRequest("r", "pass=check\ninput=web\ntac=abc\n").ok());
  EXPECT_FALSE(ParseServeRequest("r", "pass=check\ninput=web\nbogus=1\n").ok());
  // Names that could escape the snapshots directory.
  EXPECT_FALSE(ParseServeRequest("r", "pass=check\ninput=../../etc/passwd\n").ok());
  EXPECT_FALSE(ParseServeRequest("r", "pass=check\ninput=..\n").ok());
  EXPECT_FALSE(ParseServeRequest("r", "pass=diff\ninput=web\nbaseline=a/b\n").ok());
}

TEST_F(SpoolFixture, ResponseMetaCarriesTaxonomyAndExtras) {
  ServeResponseMeta meta;
  meta.ok = false;
  meta.kind = kServeErrorTimeout;
  meta.error = "deadline\nexceeded";
  meta.extra.push_back({"pass", "report"});
  ASSERT_TRUE(WriteResponseMeta(layout_, "slow", meta).ok());
  auto text = ReadFileToString(layout_.responses_dir + "/slow.meta");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text.value().find("status=error\n"), std::string::npos);
  EXPECT_NE(text.value().find("kind=timeout\n"), std::string::npos);
  // Newlines collapsed so the meta stays line-oriented.
  EXPECT_NE(text.value().find("error=deadline exceeded\n"), std::string::npos);
  EXPECT_NE(text.value().find("pass=report\n"), std::string::npos);
}

TEST_F(SpoolFixture, JournalRoundTripsEntries) {
  ImportJournal journal(&layout_);
  JournalEntry entry;
  entry.name = "web";
  entry.source = "web.trace";
  entry.attempts = 2;
  ASSERT_TRUE(journal.Record(entry).ok());

  auto loaded = journal.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].name, "web");
  EXPECT_EQ(loaded.value()[0].source, "web.trace");
  EXPECT_EQ(loaded.value()[0].attempts, 2u);

  ASSERT_TRUE(journal.Clear("web").ok());
  ASSERT_TRUE(journal.Clear("web").ok());  // Idempotent.
  loaded = journal.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST_F(SpoolFixture, MalformedJournalEntrySaturatesAttempts) {
  // A corrupt journal file must steer recovery toward quarantine, not
  // crash-loop the service on its own journal.
  ASSERT_TRUE(WriteFileAtomic(layout_.journal_dir + "/web.job", "garbage content").ok());
  ImportJournal journal(&layout_);
  auto loaded = journal.Load();
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].name, "web");
  EXPECT_GE(loaded.value()[0].attempts, kMaxImportAttempts);
}

// --- the service itself, in process ---

class ServeServiceTest : public SpoolFixture {
 protected:
  void SetUp() override {
    SpoolFixture::SetUp();
    MixOptions mix;
    mix.ops = 600;
    mix.seed = 11;
    sim_ = SimulateKernelRun(mix, FaultPlan{});
    options_.pipeline.filter = VfsKernel::MakeFilterConfig();
    options_.documented_rules_text = VfsKernel::DocumentedRulesText();
  }

  void DropTrace(const std::string& name) {
    ASSERT_TRUE(WriteTraceToFile(sim_.trace, layout_.incoming_dir + "/" + name).ok());
  }

  void DropRequest(const std::string& id, const std::string& text) {
    ASSERT_TRUE(WriteFileAtomic(layout_.requests_dir + "/" + id + ".req", text).ok());
  }

  std::string MetaText(const std::string& stem) {
    auto text = ReadFileToString(layout_.responses_dir + "/" + stem + ".meta");
    return text.ok() ? text.value() : "<missing: " + text.status().message() + ">";
  }

  SimulationResult sim_;
  ServeServiceOptions options_;
};

TEST_F(ServeServiceTest, IngestsAnswersAndAcks) {
  DropTrace("web.trace");
  DropRequest("q", "pass=check\ninput=web\n");

  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  auto handled = service.ProcessOnce();
  ASSERT_TRUE(handled.ok()) << handled.status().ToString();
  EXPECT_EQ(handled.value(), 2u);  // One ingest + one answer.

  // Snapshot published, source consumed, journal clear.
  EXPECT_TRUE(FileSize(layout_.snapshots_dir + "/web.lockdb").ok());
  EXPECT_FALSE(FileSize(layout_.incoming_dir + "/web.trace").ok());
  EXPECT_NE(MetaText("web.ingest").find("status=ok\n"), std::string::npos);
  EXPECT_NE(MetaText("q").find("status=ok\n"), std::string::npos);
  auto out = ReadFileToString(layout_.responses_dir + "/q.out");
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out.value().empty());
  EXPECT_EQ(service.stats().ingested, 1u);
  EXPECT_EQ(service.stats().answered_ok, 1u);

  // An idle follow-up scan touches nothing.
  handled = service.ProcessOnce();
  ASSERT_TRUE(handled.ok());
  EXPECT_EQ(handled.value(), 0u);
}

TEST_F(ServeServiceTest, MmTracesSelectExtendedRegistry) {
  MixOptions mix;
  mix.ops = 800;
  mix.seed = 7;
  SimulationResult mm = SimulateMmRun(mix, FaultPlan::Clean());
  ASSERT_TRUE(WriteTraceToFile(mm.trace, layout_.incoming_dir + "/mm.trace").ok());
  DropTrace("web.trace");
  DropRequest("qmm", "pass=derive\ninput=mm\n");
  DropRequest("qvfs", "pass=derive\ninput=web\n");

  VfsIds mm_ids;
  std::unique_ptr<TypeRegistry> extended = BuildVfsMmRegistry(&mm_ids);
  options_.extended_documented_rules_text =
      VfsKernel::DocumentedRulesText() + MmKernel::DocumentedRulesText();
  ServeService service(layout_, sim_.registry.get(), options_, extended.get());
  ASSERT_TRUE(service.Recover().ok());
  auto handled = service.ProcessOnce();
  ASSERT_TRUE(handled.ok()) << handled.status().ToString();
  EXPECT_EQ(handled.value(), 4u);  // Two ingests + two answers.

  // The mm trace was ingested and answered against the extended registry.
  auto mm_out = ReadFileToString(layout_.responses_dir + "/qmm.out");
  ASSERT_TRUE(mm_out.ok());
  EXPECT_NE(mm_out.value().find("mm_struct"), std::string::npos);
  EXPECT_NE(mm_out.value().find("vm_area_struct"), std::string::npos);
  // The vfs trace still derives against the base registry only.
  auto vfs_out = ReadFileToString(layout_.responses_dir + "/qvfs.out");
  ASSERT_TRUE(vfs_out.ok());
  EXPECT_EQ(vfs_out.value().find("mm_struct"), std::string::npos);
}

TEST_F(ServeServiceTest, MmSnapshotReloadsWithExtendedRegistry) {
  MixOptions mix;
  mix.ops = 800;
  mix.seed = 7;
  SimulationResult mm = SimulateMmRun(mix, FaultPlan::Clean());
  ASSERT_TRUE(WriteTraceToFile(mm.trace, layout_.incoming_dir + "/mm.trace").ok());

  VfsIds mm_ids;
  std::unique_ptr<TypeRegistry> extended = BuildVfsMmRegistry(&mm_ids);
  options_.extended_documented_rules_text =
      VfsKernel::DocumentedRulesText() + MmKernel::DocumentedRulesText();
  {
    ServeService ingest_service(layout_, sim_.registry.get(), options_, extended.get());
    ASSERT_TRUE(ingest_service.Recover().ok());
    ASSERT_TRUE(ingest_service.ProcessOnce().ok());
    ASSERT_TRUE(FileSize(layout_.snapshots_dir + "/mm.lockdb").ok());
  }
  // A fresh service must re-pick the extended registry when loading the
  // published snapshot from disk (the LoadResident path, not ingest).
  DropRequest("q2", "pass=check\ninput=mm\n");
  ServeService service(layout_, sim_.registry.get(), options_, extended.get());
  ASSERT_TRUE(service.Recover().ok());
  auto handled = service.ProcessOnce();
  ASSERT_TRUE(handled.ok()) << handled.status().ToString();
  EXPECT_NE(MetaText("q2").find("status=ok\n"), std::string::npos);
  auto out = ReadFileToString(layout_.responses_dir + "/q2.out");
  ASSERT_TRUE(out.ok());
  // check ran against the extended documented rules, so the mm types show.
  EXPECT_NE(out.value().find("mm_struct"), std::string::npos);
}

TEST_F(ServeServiceTest, TypedErrorsForBadRequests) {
  DropTrace("web.trace");
  DropRequest("badpass", "pass=nope\ninput=web\n");
  DropRequest("badinput", "pass=check\ninput=ghost\n");
  DropRequest("malformed", "no equals sign here\n");

  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.ProcessOnce().ok());

  EXPECT_NE(MetaText("badpass").find("kind=unknown-pass\n"), std::string::npos);
  EXPECT_NE(MetaText("badinput").find("kind=unknown-input\n"), std::string::npos);
  EXPECT_NE(MetaText("malformed").find("kind=bad-request\n"), std::string::npos);
  EXPECT_EQ(service.stats().answered_error, 3u);
  // Typed errors never carry response bytes.
  EXPECT_FALSE(FileSize(layout_.responses_dir + "/badpass.out").ok());
}

TEST_F(ServeServiceTest, EmptyFileIsQuarantinedTyped) {
  ASSERT_TRUE(WriteFileAtomic(layout_.incoming_dir + "/empty.trace", "").ok());
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.ProcessOnce().ok());

  auto reason = ReadFileToString(layout_.quarantine_dir + "/empty.trace.reason");
  ASSERT_TRUE(reason.ok());
  EXPECT_NE(reason.value().find("kind=empty\n"), std::string::npos);
  EXPECT_EQ(service.stats().quarantined, 1u);
}

TEST_F(ServeServiceTest, OversizedFileIsQuarantinedBeforeParsing) {
  DropTrace("web.trace");
  options_.max_trace_bytes = 16;
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.ProcessOnce().ok());

  auto reason = ReadFileToString(layout_.quarantine_dir + "/web.trace.reason");
  ASSERT_TRUE(reason.ok());
  EXPECT_NE(reason.value().find("kind=oversized\n"), std::string::npos);
}

TEST_F(ServeServiceTest, LruEvictsBeyondMaxResident) {
  DropTrace("a.trace");
  DropTrace("b.trace");
  DropRequest("qa", "pass=check\ninput=a\n");
  DropRequest("qb", "pass=check\ninput=b\n");

  options_.max_resident = 1;
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.ProcessOnce().ok());

  EXPECT_NE(MetaText("qa").find("status=ok\n"), std::string::npos);
  EXPECT_NE(MetaText("qb").find("status=ok\n"), std::string::npos);
  EXPECT_GE(service.stats().evictions, 1u);

  // The evicted snapshot reloads from disk and still answers.
  DropRequest("qa2", "pass=check\ninput=a\n");
  ASSERT_TRUE(service.ProcessOnce().ok());
  EXPECT_NE(MetaText("qa2").find("status=ok\n"), std::string::npos);
}

TEST_F(ServeServiceTest, RecoverReplaysAnOrphanedJournalEntry) {
  // Simulate a crash immediately after the journal record was published:
  // the source is still in incoming, nothing else happened.
  DropTrace("web.trace");
  {
    ImportJournal journal(&layout_);
    JournalEntry entry;
    entry.name = "web";
    entry.source = "web.trace";
    entry.attempts = 1;
    ASSERT_TRUE(journal.Record(entry).ok());
  }
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  EXPECT_EQ(service.stats().recovered, 1u);
  EXPECT_TRUE(FileSize(layout_.snapshots_dir + "/web.lockdb").ok());
  EXPECT_FALSE(FileSize(layout_.incoming_dir + "/web.trace").ok());
  auto pending = ImportJournal(&layout_).Load();
  ASSERT_TRUE(pending.ok());
  EXPECT_TRUE(pending.value().empty());
}

TEST_F(ServeServiceTest, RepeatedCrashesQuarantineInsteadOfLooping) {
  // An entry already at the attempt cap: recovery must quarantine the
  // source, not retry it forever.
  DropTrace("web.trace");
  {
    ImportJournal journal(&layout_);
    JournalEntry entry;
    entry.name = "web";
    entry.source = "web.trace";
    entry.attempts = kMaxImportAttempts;
    ASSERT_TRUE(journal.Record(entry).ok());
  }
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  auto reason = ReadFileToString(layout_.quarantine_dir + "/web.trace.reason");
  ASSERT_TRUE(reason.ok());
  EXPECT_NE(reason.value().find("kind=crash-loop\n"), std::string::npos);
  EXPECT_FALSE(FileSize(layout_.snapshots_dir + "/web.lockdb").ok());
}

TEST_F(ServeServiceTest, DeadlineTimesOutAndServiceSurvives) {
  DropTrace("web.trace");
  DropRequest("slow", "pass=report\ninput=web\nfull=1\n");
  options_.deadline_ms = 1;  // Guaranteed to expire on any machine.
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.ProcessOnce().ok());

  // Either the tiny trace finished inside 1 ms (fast machine) or it timed
  // out; both are legal, but a timeout must be typed and non-fatal.
  std::string meta = MetaText("slow");
  if (meta.find("status=ok\n") == std::string::npos) {
    EXPECT_NE(meta.find("kind=timeout\n"), std::string::npos);
    EXPECT_EQ(service.stats().timeouts, 1u);
  }
  // The service keeps answering afterward either way.
  DropRequest("after", "pass=check\ninput=web\n");
  ASSERT_TRUE(service.ProcessOnce().ok());
  EXPECT_TRUE(service.DrainZombies(5000));
}

TEST_F(ServeServiceTest, FailedDispatchIsNotCountedAsHandled) {
  // Regression: a journal write failure used to count as "handled", making
  // the daemon loop believe it made progress and skip its poll sleep — a
  // busy-loop against a broken state dir. A failed dispatch must count 0
  // and leave the input in incoming for the next scan.
  DropTrace("web.trace");
  ASSERT_EQ(::system(("rm -rf " + layout_.journal_dir).c_str()), 0);
  // A regular file where the journal dir should be: every Record fails.
  ASSERT_TRUE(WriteFileAtomic(layout_.journal_dir, "not a directory").ok());

  ServeService service(layout_, sim_.registry.get(), options_);
  auto handled = service.ProcessOnce();
  ASSERT_TRUE(handled.ok());
  EXPECT_EQ(handled.value(), 0u);  // No terminal state reached, no credit.
  EXPECT_TRUE(FileSize(layout_.incoming_dir + "/web.trace").ok());
  EXPECT_EQ(service.stats().ingested, 0u);
  EXPECT_EQ(service.stats().quarantined, 0u);

  // Heal the state dir: the very next scan completes the import.
  ASSERT_EQ(::unlink(layout_.journal_dir.c_str()), 0);
  ASSERT_EQ(::mkdir(layout_.journal_dir.c_str(), 0755), 0);
  handled = service.ProcessOnce();
  ASSERT_TRUE(handled.ok());
  EXPECT_EQ(handled.value(), 1u);
  EXPECT_EQ(service.stats().ingested, 1u);
}

TEST_F(ServeServiceTest, ParallelWorkersAnswerEveryRequestIdentically) {
  DropTrace("web.trace");
  options_.workers = 4;
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.ProcessOnce().ok());  // Ingest first.

  for (int i = 0; i < 8; ++i) {
    DropRequest("q" + std::to_string(i), "pass=check\ninput=web\n");
  }
  auto handled = service.ProcessOnce();
  ASSERT_TRUE(handled.ok());
  EXPECT_EQ(handled.value(), 8u);
  EXPECT_EQ(service.stats().answered_ok, 8u);

  auto first = ReadFileToString(layout_.responses_dir + "/q0.out");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().empty());
  for (int i = 1; i < 8; ++i) {
    auto other = ReadFileToString(layout_.responses_dir + "/q" + std::to_string(i) + ".out");
    ASSERT_TRUE(other.ok());
    EXPECT_EQ(other.value(), first.value()) << "q" << i << " bytes differ";
  }
}

TEST_F(ServeServiceTest, AnswerFromTextSharesTheResidentStore) {
  // The socket transport's entry point: same taxonomy, same bytes, same
  // stats as the spool, with no files involved.
  DropTrace("web.trace");
  options_.workers = 2;
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.ProcessOnce().ok());

  auto ok = service.AnswerFromText("s1", "pass=check\ninput=web\n");
  EXPECT_TRUE(ok.meta.ok);
  EXPECT_FALSE(ok.text.empty());

  DropRequest("q", "pass=check\ninput=web\n");
  ASSERT_TRUE(service.ProcessOnce().ok());
  auto spooled = ReadFileToString(layout_.responses_dir + "/q.out");
  ASSERT_TRUE(spooled.ok());
  EXPECT_EQ(ok.text, spooled.value());  // Transport must not change bytes.

  auto bad = service.AnswerFromText("s2", "pass=check\ninput=ghost\n");
  EXPECT_FALSE(bad.meta.ok);
  EXPECT_EQ(bad.meta.kind, kServeErrorUnknownInput);
  auto malformed = service.AnswerFromText("s3", "no equals\n");
  EXPECT_FALSE(malformed.meta.ok);
  EXPECT_EQ(malformed.meta.kind, kServeErrorBadRequest);
  EXPECT_EQ(service.stats().answered_ok, 2u);
  EXPECT_EQ(service.stats().answered_error, 2u);
}

TEST_F(ServeServiceTest, RunLoopBacksOffWhenIdleAndResetsOnWork) {
  // The injectable sleeper observes the idle schedule without wall-clock
  // time: consecutive idle scans double the delay (capped at 8x the poll
  // interval); any handled work resets the ramp.
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());

  std::vector<uint64_t> delays;
  std::atomic<bool> stop{false};
  Status status = service.RunLoop(stop, 50, [&](uint64_t ms) {
    delays.push_back(ms);
    if (delays.size() == 6) {
      // Work arrives after the ramp topped out: the next idle delay must
      // restart from the base interval.
      (void)WriteFileAtomic(layout_.requests_dir + "/mid.req", "pass=nope\ninput=x\n");
    }
    if (delays.size() >= 8) {
      stop.store(true);
    }
  });
  ASSERT_TRUE(status.ok());
  ASSERT_GE(delays.size(), 8u);
  EXPECT_EQ(delays[0], 50u);   // First idle scan: the base interval.
  EXPECT_EQ(delays[1], 100u);  // Doubling...
  EXPECT_EQ(delays[2], 200u);
  EXPECT_EQ(delays[3], 400u);  // ...capped at 8x.
  EXPECT_EQ(delays[4], 400u);
  EXPECT_EQ(delays[5], 400u);
  EXPECT_EQ(delays[6], 50u);   // Reset: the answered request counted as work.
  EXPECT_EQ(delays[7], 100u);  // And the ramp restarts from the base.
}

TEST_F(ServeServiceTest, SocketRoundTripMatchesSpoolBytes) {
  DropTrace("web.trace");
  options_.workers = 2;
  ServeService service(layout_, sim_.registry.get(), options_);
  ASSERT_TRUE(service.Recover().ok());
  ASSERT_TRUE(service.ProcessOnce().ok());

  ServeSocketOptions socket_options;
  socket_options.port = 0;
  ServeSocketServer server(&service, socket_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto conn = ConnectTcp("127.0.0.1", server.port());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  ASSERT_TRUE(WriteFrame(conn.value().get(), "pass=check\ninput=web\n").ok());
  FrameRead meta = ReadFrame(conn.value().get(), 10000, 10000, 0);
  ASSERT_EQ(meta.status, FrameStatus::kOk) << meta.error;
  EXPECT_NE(meta.payload.find("status=ok\n"), std::string::npos);
  FrameRead out = ReadFrame(conn.value().get(), 10000, 10000, 0);
  ASSERT_EQ(out.status, FrameStatus::kOk) << out.error;

  // Byte-identity across transports, meta and payload both.
  DropRequest("q", "pass=check\ninput=web\n");
  ASSERT_TRUE(service.ProcessOnce().ok());
  auto spool_out = ReadFileToString(layout_.responses_dir + "/q.out");
  ASSERT_TRUE(spool_out.ok());
  EXPECT_EQ(out.payload, spool_out.value());

  // A second exchange on the same connection (pipelining).
  ASSERT_TRUE(WriteFrame(conn.value().get(), "pass=nope\ninput=web\n").ok());
  meta = ReadFrame(conn.value().get(), 10000, 10000, 0);
  ASSERT_EQ(meta.status, FrameStatus::kOk);
  EXPECT_NE(meta.payload.find("kind=unknown-pass\n"), std::string::npos);
  out = ReadFrame(conn.value().get(), 10000, 10000, 0);
  ASSERT_EQ(out.status, FrameStatus::kOk);
  EXPECT_TRUE(out.payload.empty());  // Errors never carry response bytes.

  server.Stop();
}

}  // namespace
}  // namespace lockdoc
