#!/bin/sh
# Deterministic chaos harness for `lockdoc serve` (the PR's three pinned
# invariants, checked across every scenario):
#
#   1. no wrong answer is ever emitted: any response meta that says ok has
#      an .out byte-identical to the equivalent standalone CLI command,
#   2. every dropped input ends in exactly one terminal state — answered
#      (ingest ack) XOR quarantined — and every request gets a meta,
#   3. the service always restarts cleanly: after any kill, a fresh
#      `serve --once` exits 0 and leaves incoming/, requests/ and the
#      journal empty, with no atomic-temp debris anywhere.
#
# Scenarios are generated from a seed counter: kills at seeded crash points
# mid-import and mid-response (LOCKDOC_SERVE_CRASH_AT), corrupted /
# truncated / zero-byte / oversized drops, damaged snapshot drops, and
# kill+corruption combinations. Everything — corruption sites, crash
# points, request passes — derives from the seed, so a failure reproduces
# exactly.
#
# Usage: chaos_test.sh <lockdoc-binary> <chaos-driver> <scratch-dir> [scenarios]
set -u

LOCKDOC="$1"
DRIVER="$2"
DIR="$3"
SCENARIOS="${4:-200}"

rm -rf "$DIR"
mkdir -p "$DIR/ref"
failures=0
scenario=0

fail() {
  echo "FAIL(scenario $scenario): $*" >&2
  failures=$((failures + 1))
}

# --- fixtures (built once; every scenario damages copies of these) ---
"$LOCKDOC" simulate --out "$DIR/fixture.trace" --ops 400 --seed 7 > /dev/null || exit 1
"$LOCKDOC" import "$DIR/fixture.trace" --out "$DIR/fixture.lockdb" > /dev/null || exit 1
FIXTURE_SIZE=$(wc -c < "$DIR/fixture.trace")
PASSES="check violations lock-order modes report derive"
for pass in $PASSES; do
  "$LOCKDOC" "$pass" "$DIR/fixture.trace" > "$DIR/ref/$pass.out" || exit 1
done
# Reference snapshot: what a crash-free import of the fixture publishes.
mkdir -p "$DIR/refspool/incoming"
cp "$DIR/fixture.trace" "$DIR/refspool/incoming/web.trace"
"$LOCKDOC" serve "$DIR/refspool" --once --workers 4 > /dev/null || exit 1
REF_SNAPSHOT="$DIR/refspool/state/snapshots/web.lockdb"
[ -f "$REF_SNAPSHOT" ] || exit 1

pick_pass() {
  # Deterministic pass choice from the seed: the n-th word of $PASSES.
  n=$(( ($1 / 64) % 6 + 1 ))
  echo "$PASSES" | tr ' ' '\n' | sed -n "${n}p"
}

# Invariants 2 + 3 for the scenario spool. $1 = spool, $2 = dropped input
# file name (empty if none), $3 = request id (empty if none).
check_invariants() {
  spool="$1"
  input="$2"
  req="$3"
  "$LOCKDOC" serve "$spool" --once --workers 4 > /dev/null 2>&1 || fail "restart not clean"
  [ -n "$(ls -A "$spool/incoming" 2> /dev/null)" ] && fail "incoming not drained"
  [ -n "$(ls -A "$spool/requests" 2> /dev/null)" ] && fail "requests not drained"
  [ -n "$(ls -A "$spool/state/journal" 2> /dev/null)" ] && fail "journal not empty"
  find "$spool" -name '.tmp.*' 2> /dev/null | grep -q . && fail "atomic temp debris left behind"
  if [ -n "$input" ]; then
    name="${input%.*}"
    ack=0
    quar=0
    [ -f "$spool/responses/$name.ingest.meta" ] && ack=1
    [ -f "$spool/state/quarantine/$input.reason" ] && quar=1
    [ $((ack + quar)) -eq 1 ] || fail "input '$input' in $((ack + quar)) terminal states (want exactly 1)"
  fi
  if [ -n "$req" ]; then
    [ -f "$spool/responses/$req.meta" ] || fail "request '$req' never answered"
  fi
}

# Invariant 1: if the request was answered ok, its bytes must equal the
# standalone CLI's. $1 = spool, $2 = request id, $3 = pass, $4 = source
# file, $5 = extra CLI flag (--salvage for damaged sources, empty else).
check_answer() {
  spool="$1"
  req="$2"
  pass="$3"
  source="$4"
  flag="${5:-}"
  [ -f "$spool/responses/$req.meta" ] || return 0
  if grep -q '^status=ok$' "$spool/responses/$req.meta"; then
    if [ -n "$flag" ]; then
      "$LOCKDOC" "$pass" "$source" "$flag" > "$DIR/expected.out" 2> /dev/null \
        || fail "serve answered ok but CLI cannot ($pass $source $flag)"
    else
      "$LOCKDOC" "$pass" "$source" > "$DIR/expected.out" 2> /dev/null \
        || fail "serve answered ok but CLI cannot ($pass $source)"
    fi
    cmp -s "$DIR/expected.out" "$spool/responses/$req.out" \
      || fail "WRONG ANSWER: $pass response differs from CLI bytes"
  fi
}

seed=0
while [ "$seed" -lt "$SCENARIOS" ]; do
  seed=$((seed + 1))
  scenario=$seed
  spool="$DIR/spool"
  rm -rf "$spool"
  mkdir -p "$spool/incoming"
  kind=$(( (seed / 8) % 6 ))
  pass=$(pick_pass "$seed")

  case $((seed % 8)) in
    0)
      # Kill mid-import at a seeded crash point; the journal must replay to
      # a snapshot byte-identical to the crash-free import.
      p=$(( (seed / 8) % 12 + 1 ))
      cp "$DIR/fixture.trace" "$spool/incoming/web.trace"
      mkdir -p "$spool/requests"
      printf 'pass=%s\ninput=web\n' "$pass" > "$spool/requests/q.req"
      LOCKDOC_SERVE_CRASH_AT=$p "$LOCKDOC" serve "$spool" --once --workers 4 > /dev/null 2>&1
      rc=$?
      [ "$rc" -eq 42 ] || [ "$rc" -eq 0 ] || fail "crash run exited $rc (want 42 or 0)"
      check_invariants "$spool" web.trace q
      cmp -s "$REF_SNAPSHOT" "$spool/state/snapshots/web.lockdb" \
        || fail "recovered snapshot differs from crash-free import"
      check_answer "$spool" q "$pass" "$DIR/fixture.trace"
      ;;
    1)
      # Corrupted trace: salvaged-and-answered or quarantined, never wrong.
      # (The damaged original is kept outside the spool: when serve answers,
      # the bytes must match the CLI running --salvage on the same damage.)
      "$DRIVER" corrupt "$DIR/fixture.trace" "$DIR/damaged.trace" "$kind" "$seed" > /dev/null || fail "corruptor failed"
      cp "$DIR/damaged.trace" "$spool/incoming/web.trace"
      mkdir -p "$spool/requests"
      printf 'pass=%s\ninput=web\n' "$pass" > "$spool/requests/q.req"
      "$LOCKDOC" serve "$spool" --once --workers 4 > /dev/null 2>&1 || fail "serve crashed on corrupted input"
      check_invariants "$spool" web.trace q
      check_answer "$spool" q "$pass" "$DIR/damaged.trace" --salvage
      ;;
    2)
      # Truncated trace (always keeps the magic, may cut mid-frame).
      keep=$(( (seed * 997) % (FIXTURE_SIZE - 8) + 8 ))
      "$DRIVER" truncate "$DIR/fixture.trace" "$DIR/damaged.trace" "$keep" || fail "truncate failed"
      cp "$DIR/damaged.trace" "$spool/incoming/web.trace"
      mkdir -p "$spool/requests"
      printf 'pass=%s\ninput=web\n' "$pass" > "$spool/requests/q.req"
      "$LOCKDOC" serve "$spool" --once --workers 4 > /dev/null 2>&1 || fail "serve crashed on truncated input"
      check_invariants "$spool" web.trace q
      check_answer "$spool" q "$pass" "$DIR/damaged.trace" --salvage
      ;;
    3)
      # Zero-byte drop: typed quarantine, not a crash and not a loop.
      : > "$spool/incoming/web.trace"
      "$LOCKDOC" serve "$spool" --once --workers 4 > /dev/null 2>&1 || fail "serve crashed on empty file"
      check_invariants "$spool" web.trace ''
      grep -q '^kind=empty$' "$spool/state/quarantine/web.trace.reason" 2> /dev/null \
        || fail "zero-byte file not quarantined as kind=empty"
      ;;
    4)
      # Oversized drop: rejected by the guardrail before a byte is parsed.
      cp "$DIR/fixture.trace" "$spool/incoming/web.trace"
      "$LOCKDOC" serve "$spool" --once --workers 4 --max-trace-bytes 1000 > /dev/null 2>&1 \
        || fail "serve crashed on oversized file"
      check_invariants "$spool" web.trace ''
      grep -q '^kind=oversized$' "$spool/state/quarantine/web.trace.reason" 2> /dev/null \
        || fail "oversized file not quarantined as kind=oversized"
      ;;
    5)
      # Damaged .lockdb drop: validated before publication, so the resident
      # store never sees it.
      "$DRIVER" corrupt "$DIR/fixture.lockdb" "$spool/incoming/web.lockdb" "$kind" "$seed" > /dev/null || fail "corruptor failed"
      "$LOCKDOC" serve "$spool" --once --workers 4 > /dev/null 2>&1 || fail "serve crashed on damaged snapshot"
      check_invariants "$spool" web.lockdb ''
      ;;
    6)
      # Kill mid-response: the request is re-answered deterministically.
      p=$(( (seed / 8) % 3 + 8 ))
      cp "$DIR/fixture.trace" "$spool/incoming/web.trace"
      mkdir -p "$spool/requests"
      printf 'pass=%s\ninput=web\n' "$pass" > "$spool/requests/q.req"
      LOCKDOC_SERVE_CRASH_AT=$p "$LOCKDOC" serve "$spool" --once --workers 4 > /dev/null 2>&1
      rc=$?
      [ "$rc" -eq 42 ] || [ "$rc" -eq 0 ] || fail "crash run exited $rc (want 42 or 0)"
      check_invariants "$spool" web.trace q
      check_answer "$spool" q "$pass" "$DIR/fixture.trace"
      grep -q '^status=ok$' "$spool/responses/q.meta" || fail "clean input not answered ok"
      ;;
    7)
      # Corruption AND a kill: the worst day. Still: one terminal state,
      # clean restart, no wrong answer.
      p=$(( (seed / 8) % 10 + 1 ))
      "$DRIVER" corrupt "$DIR/fixture.trace" "$DIR/damaged.trace" "$kind" "$seed" > /dev/null || fail "corruptor failed"
      cp "$DIR/damaged.trace" "$spool/incoming/web.trace"
      mkdir -p "$spool/requests"
      printf 'pass=%s\ninput=web\n' "$pass" > "$spool/requests/q.req"
      LOCKDOC_SERVE_CRASH_AT=$p "$LOCKDOC" serve "$spool" --once --workers 4 > /dev/null 2>&1
      rc=$?
      [ "$rc" -eq 42 ] || [ "$rc" -eq 0 ] || fail "crash run exited $rc (want 42 or 0)"
      check_invariants "$spool" web.trace q
      check_answer "$spool" q "$pass" "$DIR/damaged.trace" --salvage
      ;;
  esac
done

# --- socket chaos: abusive TCP peers against a live daemon. After every
# --- abuse round a well-formed query must still get CLI-identical bytes —
# --- a misbehaving peer can cost itself, never the service.
scenario=socket
SPOOLS="$DIR/spool_socket"
rm -rf "$SPOOLS"
mkdir -p "$SPOOLS/incoming"
cp "$DIR/fixture.trace" "$SPOOLS/incoming/web.trace"
"$LOCKDOC" serve "$SPOOLS" --listen 127.0.0.1:0 --workers 4 --poll-ms 25 \
  --max-trace-bytes 10000000 > "$DIR/socket_stats.txt" 2> "$DIR/socket_err.txt" &
SOCKD=$!
tries=0
while ! grep -q 'listening on' "$DIR/socket_err.txt" 2> /dev/null && [ "$tries" -lt 100 ]; do
  tries=$((tries + 1)); sleep 0.1
done
PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\)$/\1/p' "$DIR/socket_err.txt" | head -1)
tries=0
while [ ! -f "$SPOOLS/responses/web.ingest.meta" ] && [ "$tries" -lt 200 ]; do
  tries=$((tries + 1)); sleep 0.1
done
if [ -n "$PORT" ]; then
  printf 'pass=check\ninput=web\n' > "$DIR/good.req"
  round=0
  for mode in partial-header partial-frame kill-mid-read oversized-frame \
              partial-frame oversized-frame kill-mid-read partial-header; do
    round=$((round + 1))
    scenario="socket-$round-$mode"
    "$DRIVER" abuse "127.0.0.1:$PORT" "$mode" || fail "abuse $mode misbehaved"
    "$LOCKDOC" query "127.0.0.1:$PORT" "$DIR/good.req" \
      > "$DIR/good.out" 2> /dev/null || fail "service wedged after $mode"
    cmp -s "$DIR/ref/check.out" "$DIR/good.out" \
      || fail "WRONG ANSWER over socket after $mode"
  done
else
  fail "socket daemon never announced its port"
fi
kill -TERM "$SOCKD" 2> /dev/null
wait "$SOCKD"
rc=$?
scenario=socket
[ "$rc" -eq 0 ] || fail "socket daemon exited $rc on SIGTERM"
check_invariants "$SPOOLS" web.trace ''

if [ "$failures" -ne 0 ]; then
  echo "$failures chaos invariant violations across $SCENARIOS scenarios" >&2
  exit 1
fi
echo "chaos: $SCENARIOS scenarios OK at --workers 4 (+ socket abuse; no wrong answers, one terminal state each, clean restarts)"
