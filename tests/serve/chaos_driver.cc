// Fault-injection sidecar for the serve chaos harness (chaos_test.sh).
// Wraps the deterministic trace corruptor so the shell harness can damage
// fixtures reproducibly from a scenario seed:
//
//   chaos_driver corrupt IN OUT KIND SEED   damage IN with corruption kind
//                                           KIND (index, modulo the kind
//                                           count) and the given seed
//   chaos_driver truncate IN OUT BYTES      keep the first BYTES bytes
//   chaos_driver kinds                      print the kind count
//
// Works on any framed file — serialized traces and .lockdb snapshots share
// the frame layout, so the same mutators exercise both readers.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/trace/corruptor.h"
#include "src/util/file_io.h"

using namespace lockdoc;

namespace {

constexpr size_t kKindCount = sizeof(kAllCorruptionKinds) / sizeof(kAllCorruptionKinds[0]);

int Die(const char* message) {
  std::fprintf(stderr, "chaos_driver: %s\n", message);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "kinds") {
    std::printf("%zu\n", kKindCount);
    return 0;
  }
  if (argc == 6 && std::string(argv[1]) == "corrupt") {
    auto bytes = ReadFileToString(argv[2]);
    if (!bytes.ok()) {
      return Die(bytes.status().message().c_str());
    }
    CorruptionKind kind =
        kAllCorruptionKinds[std::strtoull(argv[4], nullptr, 10) % kKindCount];
    uint64_t seed = std::strtoull(argv[5], nullptr, 10);
    std::string damaged = CorruptTraceBytes(bytes.value(), kind, seed);
    Status written = WriteFileAtomic(argv[3], damaged);
    if (!written.ok()) {
      return Die(written.message().c_str());
    }
    std::printf("%s\n", CorruptionKindName(kind));
    return 0;
  }
  if (argc == 5 && std::string(argv[1]) == "truncate") {
    auto bytes = ReadFileToString(argv[2]);
    if (!bytes.ok()) {
      return Die(bytes.status().message().c_str());
    }
    uint64_t keep = std::strtoull(argv[4], nullptr, 10);
    if (keep > bytes.value().size()) {
      keep = bytes.value().size();
    }
    Status written = WriteFileAtomic(argv[3], bytes.value().substr(0, keep));
    if (!written.ok()) {
      return Die(written.message().c_str());
    }
    return 0;
  }
  return Die("usage: corrupt IN OUT KIND SEED | truncate IN OUT BYTES | kinds");
}
