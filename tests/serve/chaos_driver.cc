// Fault-injection sidecar for the serve chaos harness (chaos_test.sh).
// Wraps the deterministic trace corruptor so the shell harness can damage
// fixtures reproducibly from a scenario seed:
//
//   chaos_driver corrupt IN OUT KIND SEED   damage IN with corruption kind
//                                           KIND (index, modulo the kind
//                                           count) and the given seed
//   chaos_driver truncate IN OUT BYTES      keep the first BYTES bytes
//   chaos_driver kinds                      print the kind count
//
// Works on any framed file — serialized traces and .lockdb snapshots share
// the frame layout, so the same mutators exercise both readers.
//
// It is also the abusive TCP peer for the socket front-end:
//
//   chaos_driver abuse HOST:PORT MODE       misbehave at the wire level and
//                                           exit 0 if the server reacted per
//                                           contract. MODE is one of:
//     partial-header   send 2 of the 4 length bytes, then vanish
//     partial-frame    announce 4096 payload bytes, send 16, then vanish
//     kill-mid-read    send a valid request, read 4 response bytes, vanish
//     oversized-frame  announce a payload beyond the server's frame cap;
//                      expect a kind=oversized error meta back
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <sys/socket.h>

#include "src/trace/corruptor.h"
#include "src/util/file_io.h"
#include "src/util/socket.h"

using namespace lockdoc;

namespace {

constexpr size_t kKindCount = sizeof(kAllCorruptionKinds) / sizeof(kAllCorruptionKinds[0]);

int Die(const char* message) {
  std::fprintf(stderr, "chaos_driver: %s\n", message);
  return 2;
}

// Raw send of exactly `len` bytes — the abusive peer bypasses WriteFrame on
// purpose to produce wire states a correct client never would.
bool SendRaw(int fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      return false;
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

int Abuse(const std::string& endpoint, const std::string& mode) {
  std::string host;
  uint16_t port = 0;
  if (Status status = ParseHostPort(endpoint, &host, &port); !status.ok()) {
    return Die(status.message().c_str());
  }
  auto conn = ConnectTcp(host, port);
  if (!conn.ok()) {
    return Die(conn.status().message().c_str());
  }
  int fd = conn.value().get();

  if (mode == "partial-header") {
    const unsigned char half[2] = {0x00, 0x00};
    SendRaw(fd, half, sizeof(half));
    return 0;  // Vanish: UniqueFd closes with 2 of 4 header bytes sent.
  }
  if (mode == "partial-frame") {
    const unsigned char header[4] = {0x00, 0x00, 0x10, 0x00};  // Claims 4096.
    if (!SendRaw(fd, header, sizeof(header))) {
      return Die("partial-frame: header send failed");
    }
    SendRaw(fd, "pass=check\ninput=", 16);  // 16 of the promised 4096.
    return 0;  // Vanish mid-frame.
  }
  if (mode == "kill-mid-read") {
    if (Status status = WriteFrame(fd, "pass=check\ninput=web\n"); !status.ok()) {
      return Die(status.message().c_str());
    }
    char first[4];
    ::recv(fd, first, sizeof(first), 0);  // Take a bite of the response...
    return 0;  // ...then vanish; the server's next write must not kill it.
  }
  if (mode == "oversized-frame") {
    const unsigned char header[4] = {0x7f, 0xff, 0xff, 0xff};  // ~2 GiB claim.
    if (!SendRaw(fd, header, sizeof(header))) {
      return Die("oversized-frame: header send failed");
    }
    FrameRead meta = ReadFrame(fd, 10000, 10000, 1 << 20);
    if (meta.status != FrameStatus::kOk) {
      return Die("oversized-frame: no error meta came back");
    }
    if (meta.payload.find("kind=oversized\n") == std::string::npos) {
      return Die("oversized-frame: reply not typed kind=oversized");
    }
    return 0;
  }
  return Die("unknown abuse mode");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "kinds") {
    std::printf("%zu\n", kKindCount);
    return 0;
  }
  if (argc == 6 && std::string(argv[1]) == "corrupt") {
    auto bytes = ReadFileToString(argv[2]);
    if (!bytes.ok()) {
      return Die(bytes.status().message().c_str());
    }
    CorruptionKind kind =
        kAllCorruptionKinds[std::strtoull(argv[4], nullptr, 10) % kKindCount];
    uint64_t seed = std::strtoull(argv[5], nullptr, 10);
    std::string damaged = CorruptTraceBytes(bytes.value(), kind, seed);
    Status written = WriteFileAtomic(argv[3], damaged);
    if (!written.ok()) {
      return Die(written.message().c_str());
    }
    std::printf("%s\n", CorruptionKindName(kind));
    return 0;
  }
  if (argc == 4 && std::string(argv[1]) == "abuse") {
    return Abuse(argv[2], argv[3]);
  }
  if (argc == 5 && std::string(argv[1]) == "truncate") {
    auto bytes = ReadFileToString(argv[2]);
    if (!bytes.ok()) {
      return Die(bytes.status().message().c_str());
    }
    uint64_t keep = std::strtoull(argv[4], nullptr, 10);
    if (keep > bytes.value().size()) {
      keep = bytes.value().size();
    }
    Status written = WriteFileAtomic(argv[3], bytes.value().substr(0, keep));
    if (!written.ok()) {
      return Die(written.message().c_str());
    }
    return 0;
  }
  return Die(
      "usage: corrupt IN OUT KIND SEED | truncate IN OUT BYTES | kinds | "
      "abuse HOST:PORT MODE");
}
