#include "src/workload/workloads.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"

namespace lockdoc {
namespace {

TEST(WorkloadsTest, MixContainsSevenWorkloads) {
  auto mix = MakeBenchmarkMix();
  EXPECT_EQ(mix.size(), 7u);
  std::set<std::string> names;
  for (const auto& workload : mix) {
    names.insert(std::string(workload->name()));
  }
  EXPECT_TRUE(names.count("fsstress"));
  EXPECT_TRUE(names.count("fs_inod"));
  EXPECT_TRUE(names.count("fs-bench-test2"));
  EXPECT_TRUE(names.count("pipe-test"));
  EXPECT_TRUE(names.count("symlink-test"));
  EXPECT_TRUE(names.count("chmod-test"));
  EXPECT_TRUE(names.count("misc-fs"));
}

TEST(WorkloadsTest, SimulationRunsRequestedOps) {
  MixOptions options;
  options.ops = 500;
  options.seed = 3;
  SimulationResult result = SimulateKernelRun(options, FaultPlan{});
  EXPECT_EQ(result.mix.ops_executed, 500u);
  EXPECT_GT(result.trace.size(), 1000u);
}

TEST(WorkloadsTest, SameSeedYieldsIdenticalTrace) {
  MixOptions options;
  options.ops = 400;
  options.seed = 77;
  SimulationResult a = SimulateKernelRun(options, FaultPlan{});
  SimulationResult b = SimulateKernelRun(options, FaultPlan{});
  ASSERT_EQ(a.trace.size(), b.trace.size());
  // Byte-identical serialized traces: the whole simulation is deterministic.
  std::ostringstream out_a;
  std::ostringstream out_b;
  WriteTrace(a.trace, out_a);
  WriteTrace(b.trace, out_b);
  EXPECT_EQ(out_a.str(), out_b.str());
}

TEST(WorkloadsTest, DifferentSeedsDiverge) {
  MixOptions options;
  options.ops = 400;
  options.seed = 1;
  SimulationResult a = SimulateKernelRun(options, FaultPlan{});
  options.seed = 2;
  SimulationResult b = SimulateKernelRun(options, FaultPlan{});
  std::ostringstream out_a;
  std::ostringstream out_b;
  WriteTrace(a.trace, out_a);
  WriteTrace(b.trace, out_b);
  EXPECT_NE(out_a.str(), out_b.str());
}

TEST(WorkloadsTest, AllObservedTypesAppearInTrace) {
  MixOptions options;
  options.ops = 4000;
  options.seed = 5;
  SimulationResult result = SimulateKernelRun(options, FaultPlan{});
  std::set<TypeId> allocated;
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind == EventKind::kAlloc) {
      allocated.insert(e.type);
    }
  }
  EXPECT_EQ(allocated.size(), result.registry->type_count());
}

TEST(WorkloadsTest, InterruptsAppearInTrace) {
  MixOptions options;
  options.ops = 2000;
  options.seed = 5;
  SimulationResult result = SimulateKernelRun(options, FaultPlan{});
  bool softirq = false;
  bool hardirq = false;
  for (const TraceEvent& e : result.trace.events()) {
    softirq |= e.context == ContextKind::kSoftirq;
    hardirq |= e.context == ContextKind::kHardirq;
  }
  EXPECT_TRUE(softirq);
  EXPECT_TRUE(hardirq);
}

TEST(WorkloadsTest, TraceIsBalanced) {
  MixOptions options;
  options.ops = 1000;
  options.seed = 9;
  SimulationResult result = SimulateKernelRun(options, FaultPlan{});
  TraceStats stats = ComputeTraceStats(result.trace);
  EXPECT_EQ(stats.lock_acquires, stats.lock_releases);
  EXPECT_EQ(stats.allocations, stats.deallocations);
}

TEST(WorkloadsTest, MmRunIsDeterministicAndBalanced) {
  MixOptions options;
  options.ops = 800;
  options.seed = 5;
  SimulationResult a = SimulateMmRun(options, FaultPlan{});
  SimulationResult b = SimulateMmRun(options, FaultPlan{});
  ASSERT_EQ(a.trace.size(), b.trace.size());
  std::ostringstream sa;
  std::ostringstream sb;
  WriteTrace(a.trace, sa);
  WriteTrace(b.trace, sb);
  EXPECT_EQ(sa.str(), sb.str());
  TraceStats stats = ComputeTraceStats(a.trace);
  EXPECT_EQ(stats.lock_acquires, stats.lock_releases);
  EXPECT_EQ(stats.allocations, stats.deallocations);
}

TEST(WorkloadsTest, MmRunUsesExtendedRegistryAndRanges) {
  MixOptions options;
  options.ops = 800;
  options.seed = 5;
  SimulationResult result = SimulateMmRun(options, FaultPlan{});
  ASSERT_TRUE(result.ids.has_mm());
  EXPECT_EQ(result.registry->type_count(), VfsBaseTypeCount() + 2);
  bool saw_ranged_acquire = false;
  bool saw_mm_alloc = false;
  bool saw_vma_span = false;
  for (size_t i = 0; i < result.trace.size(); ++i) {
    const TraceEvent& e = result.trace.event(i);
    if (e.kind == EventKind::kLockAcquire && e.has_range) {
      EXPECT_EQ(e.lock_type, LockType::kRangeLock);
      EXPECT_LT(e.range_start, e.range_end);
      saw_ranged_acquire = true;
    }
    if (e.kind == EventKind::kAlloc && e.type == result.ids.mm_struct) {
      saw_mm_alloc = true;
    }
    if (e.kind == EventKind::kAlloc && e.type == result.ids.vm_area_struct) {
      EXPECT_TRUE(e.has_range);  // Every vma records its ground-truth span.
      saw_vma_span = true;
    }
  }
  EXPECT_TRUE(saw_ranged_acquire);
  EXPECT_TRUE(saw_mm_alloc);
  EXPECT_TRUE(saw_vma_span);
}

TEST(WorkloadsTest, MmRunCleanPlanSuppressesFaults) {
  MixOptions options;
  options.ops = 800;
  options.seed = 5;
  SimulationResult faulty = SimulateMmRun(options, FaultPlan{});
  SimulationResult clean = SimulateMmRun(options, FaultPlan::Clean());
  std::ostringstream sf;
  std::ostringstream sc;
  WriteTrace(faulty.trace, sf);
  WriteTrace(clean.trace, sc);
  EXPECT_NE(sf.str(), sc.str());  // The seeded bugs change the trace.
}

}  // namespace
}  // namespace lockdoc
