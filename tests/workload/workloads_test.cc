#include "src/workload/workloads.h"

#include <gtest/gtest.h>

#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"

namespace lockdoc {
namespace {

TEST(WorkloadsTest, MixContainsSevenWorkloads) {
  auto mix = MakeBenchmarkMix();
  EXPECT_EQ(mix.size(), 7u);
  std::set<std::string> names;
  for (const auto& workload : mix) {
    names.insert(std::string(workload->name()));
  }
  EXPECT_TRUE(names.count("fsstress"));
  EXPECT_TRUE(names.count("fs_inod"));
  EXPECT_TRUE(names.count("fs-bench-test2"));
  EXPECT_TRUE(names.count("pipe-test"));
  EXPECT_TRUE(names.count("symlink-test"));
  EXPECT_TRUE(names.count("chmod-test"));
  EXPECT_TRUE(names.count("misc-fs"));
}

TEST(WorkloadsTest, SimulationRunsRequestedOps) {
  MixOptions options;
  options.ops = 500;
  options.seed = 3;
  SimulationResult result = SimulateKernelRun(options, FaultPlan{});
  EXPECT_EQ(result.mix.ops_executed, 500u);
  EXPECT_GT(result.trace.size(), 1000u);
}

TEST(WorkloadsTest, SameSeedYieldsIdenticalTrace) {
  MixOptions options;
  options.ops = 400;
  options.seed = 77;
  SimulationResult a = SimulateKernelRun(options, FaultPlan{});
  SimulationResult b = SimulateKernelRun(options, FaultPlan{});
  ASSERT_EQ(a.trace.size(), b.trace.size());
  // Byte-identical serialized traces: the whole simulation is deterministic.
  std::ostringstream out_a;
  std::ostringstream out_b;
  WriteTrace(a.trace, out_a);
  WriteTrace(b.trace, out_b);
  EXPECT_EQ(out_a.str(), out_b.str());
}

TEST(WorkloadsTest, DifferentSeedsDiverge) {
  MixOptions options;
  options.ops = 400;
  options.seed = 1;
  SimulationResult a = SimulateKernelRun(options, FaultPlan{});
  options.seed = 2;
  SimulationResult b = SimulateKernelRun(options, FaultPlan{});
  std::ostringstream out_a;
  std::ostringstream out_b;
  WriteTrace(a.trace, out_a);
  WriteTrace(b.trace, out_b);
  EXPECT_NE(out_a.str(), out_b.str());
}

TEST(WorkloadsTest, AllObservedTypesAppearInTrace) {
  MixOptions options;
  options.ops = 4000;
  options.seed = 5;
  SimulationResult result = SimulateKernelRun(options, FaultPlan{});
  std::set<TypeId> allocated;
  for (const TraceEvent& e : result.trace.events()) {
    if (e.kind == EventKind::kAlloc) {
      allocated.insert(e.type);
    }
  }
  EXPECT_EQ(allocated.size(), result.registry->type_count());
}

TEST(WorkloadsTest, InterruptsAppearInTrace) {
  MixOptions options;
  options.ops = 2000;
  options.seed = 5;
  SimulationResult result = SimulateKernelRun(options, FaultPlan{});
  bool softirq = false;
  bool hardirq = false;
  for (const TraceEvent& e : result.trace.events()) {
    softirq |= e.context == ContextKind::kSoftirq;
    hardirq |= e.context == ContextKind::kHardirq;
  }
  EXPECT_TRUE(softirq);
  EXPECT_TRUE(hardirq);
}

TEST(WorkloadsTest, TraceIsBalanced) {
  MixOptions options;
  options.ops = 1000;
  options.seed = 9;
  SimulationResult result = SimulateKernelRun(options, FaultPlan{});
  TraceStats stats = ComputeTraceStats(result.trace);
  EXPECT_EQ(stats.lock_acquires, stats.lock_releases);
  EXPECT_EQ(stats.allocations, stats.deallocations);
}

}  // namespace
}  // namespace lockdoc
