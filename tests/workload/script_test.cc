#include "src/workload/script.h"

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/trace/trace_stats.h"

namespace lockdoc {
namespace {

struct ScriptFixture {
  ScriptFixture() {
    registry = BuildVfsRegistry(&ids);
    sim = std::make_unique<SimKernel>(&trace, registry.get());
    vfs = std::make_unique<VfsKernel>(sim.get(), registry.get(), ids, FaultPlan::Clean());
    vfs->MountAll();
  }
  ~ScriptFixture() {
    vfs->UnmountAll();
    sim->CheckQuiescent();
  }

  Status RunText(const std::string& text) {
    auto script = WorkloadScript::Parse(text);
    if (!script.ok()) {
      return script.status();
    }
    Rng rng(7);
    return script.value().Run(*vfs, rng);
  }

  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
  std::unique_ptr<SimKernel> sim;
  std::unique_ptr<VfsKernel> vfs;
};

TEST(WorkloadScriptTest, ParseAcceptsAllShapes) {
  auto script = WorkloadScript::Parse(
      "# comment\n"
      "create ext4\n"
      "write ext4 0   # trailing comment\n"
      "pipe-create\n"
      "pipe-write 0\n"
      "commit\n"
      "\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  EXPECT_EQ(script.value().steps().size(), 5u);
  EXPECT_EQ(script.value().steps()[1].verb, "write");
  EXPECT_EQ(script.value().steps()[1].fs, "ext4");
  EXPECT_EQ(script.value().steps()[1].index, 0u);
}

TEST(WorkloadScriptTest, ParseRejectsBadInput) {
  EXPECT_FALSE(WorkloadScript::Parse("explode ext4\n").ok());      // Unknown verb.
  EXPECT_FALSE(WorkloadScript::Parse("create\n").ok());            // Missing fs.
  EXPECT_FALSE(WorkloadScript::Parse("write ext4\n").ok());        // Missing index.
  EXPECT_FALSE(WorkloadScript::Parse("write ext4 zero\n").ok());   // Bad index.
  EXPECT_FALSE(WorkloadScript::Parse("commit now\n").ok());        // Extra arg.
}

TEST(WorkloadScriptTest, EndToEndScenario) {
  ScriptFixture f;
  Status status = f.RunText(
      "create ext4\n"
      "write ext4 0\n"
      "mkdir ext4\n"
      "link ext4 0\n"
      "stat ext4 0\n"
      "unlink ext4 0\n"
      "read ext4 2\n"      // The hard link still works.
      "unlink ext4 2\n"
      "rmdir ext4 1\n"
      "pipe-create\n"
      "pipe-write 0\n"
      "pipe-read 0\n"
      "pipe-release 0\n"
      "commit\n"
      "writeback\n"
      "sync ext4\n");
  EXPECT_TRUE(status.ok()) << status.ToString();
  TraceStats stats = ComputeTraceStats(f.trace);
  EXPECT_EQ(stats.lock_acquires, stats.lock_releases);
}

TEST(WorkloadScriptTest, RuntimeErrorsNameTheLine) {
  ScriptFixture f;
  Status status = f.RunText("write ext4 0\n");  // No file 0 yet.
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 1"), std::string::npos);

  status = f.RunText("create nosuchfs\n");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("unknown filesystem"), std::string::npos);
}

TEST(WorkloadScriptTest, LinkOfDirectoryRefused) {
  ScriptFixture f;
  Status status = f.RunText(
      "mkdir tmpfs\n"
      "link tmpfs 0\n");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("hard-link a directory"), std::string::npos);
}

TEST(WorkloadScriptTest, ScriptedTraceAnalyzes) {
  ScriptFixture f;
  ASSERT_TRUE(f.RunText(
                   "create tmpfs\n"
                   "write tmpfs 0\n"
                   "write tmpfs 0\n"
                   "read tmpfs 0\n"
                   "unlink tmpfs 0\n")
                  .ok());
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  PipelineResult result = RunPipeline(f.trace, *f.registry, options);
  EXPECT_FALSE(result.rules.empty());
}

TEST(WorkloadScriptTest, KnownVerbsListIsComplete) {
  // Every verb in the list must parse with dummy arguments of its shape.
  for (const std::string& verb : WorkloadScript::KnownVerbs()) {
    bool parsed = WorkloadScript::Parse(verb + "\n").ok() ||
                  WorkloadScript::Parse(verb + " ext4\n").ok() ||
                  WorkloadScript::Parse(verb + " 0\n").ok() ||
                  WorkloadScript::Parse(verb + " ext4 0\n").ok();
    EXPECT_TRUE(parsed) << verb;
  }
}

}  // namespace
}  // namespace lockdoc
