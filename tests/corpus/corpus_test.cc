#include <gtest/gtest.h>

#include "src/corpus/corpus_model.h"
#include "src/corpus/scanner.h"

namespace lockdoc {
namespace {

TEST(CorpusModelTest, ThirtyNineReleases) {
  KernelCorpusModel model;
  EXPECT_EQ(model.release_count(), 39u);  // v3.0..v3.19 + v4.0..v4.18.
  std::vector<std::string> names = model.ReleaseNames();
  EXPECT_EQ(names.front(), "v3.0");
  EXPECT_EQ(names.back(), "v4.18");
}

TEST(CorpusModelTest, GenerationIsDeterministic) {
  KernelCorpusModel model;
  CorpusRelease a = model.Generate(10);
  CorpusRelease b = model.Generate(10);
  ASSERT_EQ(a.files.size(), b.files.size());
  for (size_t i = 0; i < a.files.size(); ++i) {
    EXPECT_EQ(a.files[i].path, b.files[i].path);
    EXPECT_EQ(a.files[i].content, b.files[i].content);
  }
}

TEST(CorpusModelTest, FilesSpreadAcrossDirectories) {
  KernelCorpusModel model;
  CorpusRelease release = model.Generate(0);
  std::set<std::string> dirs;
  for (const CorpusFile& file : release.files) {
    dirs.insert(file.path.substr(0, file.path.rfind('/')));
  }
  EXPECT_GE(dirs.size(), 5u);
  EXPECT_TRUE(dirs.count("fs"));
  EXPECT_TRUE(dirs.count("drivers/net"));
}

TEST(ScannerTest, CalibratedGrowthMatchesPaperEndpoints) {
  KernelCorpusModel model;
  LockUsageScanner scanner;
  LockUsageCounts first = scanner.Scan(model.Generate(0));
  LockUsageCounts last = scanner.Scan(model.Generate(model.release_count() - 1));

  auto growth = [](uint64_t from, uint64_t to) {
    return (static_cast<double>(to) - static_cast<double>(from)) / static_cast<double>(from);
  };
  EXPECT_NEAR(growth(first.mutex, last.mutex), 0.81, 0.05);        // Paper: +81 %.
  EXPECT_NEAR(growth(first.spinlock, last.spinlock), 0.45, 0.05);  // Paper: +45 %.
  EXPECT_NEAR(growth(first.loc, last.loc), 0.73, 0.05);            // Paper: +73 %.
  EXPECT_GT(growth(first.rcu, last.rcu), 1.0);
}

TEST(ScannerTest, SpinlockDipInLateReleases) {
  KernelCorpusModel model;
  LockUsageScanner scanner;
  uint64_t peak = 0;
  for (size_t i = 0; i < model.release_count(); ++i) {
    peak = std::max(peak, scanner.Scan(model.Generate(i)).spinlock);
  }
  uint64_t final_count = scanner.Scan(model.Generate(model.release_count() - 1)).spinlock;
  EXPECT_GT(peak, final_count);  // "Despite the slight decrease..." (Sec. 2.1).
}

TEST(ScannerTest, CountsKnownPatterns) {
  CorpusRelease release;
  release.version = "test";
  release.files.push_back(
      {"fs/x.c",
       "spin_lock_init(&a);\nstatic DEFINE_MUTEX(m);\ncall_rcu(&h, f);\n\nint x;\n"
       "mutex_init(&b);\n__SPIN_LOCK_UNLOCKED(c),\n"});
  LockUsageScanner scanner;
  LockUsageCounts counts = scanner.Scan(release);
  EXPECT_EQ(counts.spinlock, 2u);
  EXPECT_EQ(counts.mutex, 2u);
  EXPECT_EQ(counts.rcu, 1u);
  EXPECT_EQ(counts.loc, 6u * kLocScale);  // Non-empty lines only.
}

TEST(ScannerTest, CountsMatchModelIntent) {
  // The scanner finds roughly as many lock sites as the model placed —
  // nothing is lost by embedding sites into the generated text.
  KernelCorpusModel model;
  LockUsageScanner scanner;
  LockUsageCounts counts = scanner.Scan(model.Generate(0));
  CorpusModelOptions defaults;
  EXPECT_NEAR(static_cast<double>(counts.spinlock),
              static_cast<double>(defaults.base_spinlock), defaults.base_spinlock * 0.10);
  EXPECT_NEAR(static_cast<double>(counts.mutex), static_cast<double>(defaults.base_mutex),
              defaults.base_mutex * 0.10);
  EXPECT_NEAR(static_cast<double>(counts.loc), static_cast<double>(defaults.base_loc),
              defaults.base_loc * 0.10);
}

}  // namespace
}  // namespace lockdoc
