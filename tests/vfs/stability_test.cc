// Calibration stability: the evaluation results must not depend on the
// workload seed. For several seeds, the documented-rule verdicts (Tab. 4)
// and the zero-violation populations (Tab. 7) have to come out identical.
#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/core/rule_checker.h"
#include "src/core/violation_finder.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

class SeedStabilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedStabilityTest, Tab4VerdictsAndCleanTypesAreSeedIndependent) {
  MixOptions mix;
  mix.ops = 12000;
  mix.seed = GetParam();
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  PipelineResult result = RunPipeline(sim.trace, *sim.registry, options);

  // Tab. 4 verdict counts for struct inode (the paper's headline row).
  auto rules = RuleSet::ParseText(VfsKernel::DocumentedRulesText());
  ASSERT_TRUE(rules.ok());
  RuleChecker checker(sim.registry.get(), &result.snapshot.observations);
  auto summaries = RuleChecker::Summarize(checker.CheckAll(rules.value()));
  for (const RuleCheckSummary& summary : summaries) {
    if (summary.type_name == "inode") {
      EXPECT_EQ(summary.documented, 14u);
      EXPECT_EQ(summary.unobserved, 3u);
      EXPECT_EQ(summary.correct, 2u);
      EXPECT_EQ(summary.ambivalent, 5u);
      EXPECT_EQ(summary.incorrect, 4u);
    }
    if (summary.type_name == "transaction_t") {
      EXPECT_EQ(summary.unobserved, 13u);
      EXPECT_EQ(summary.incorrect, 2u);
    }
  }

  // Tab. 7's violation-free populations stay violation-free.
  ViolationFinder finder(&result.snapshot.db, sim.registry.get(), &result.snapshot.observations);
  auto rows = finder.Summarize(finder.FindAll(result.rules));
  for (const ViolationSummaryRow& row : rows) {
    for (const char* clean :
         {"cdev", "journal_head", "transaction_t", "inode:anon_inodefs", "inode:debugfs",
          "inode:pipefs", "inode:proc", "inode:sockfs"}) {
      if (row.type_name == clean) {
        EXPECT_EQ(row.events, 0u) << row.type_name << " seed " << GetParam();
      }
    }
    // And the known-bug populations stay flagged.
    if (row.type_name == "inode:ext4" || row.type_name == "backing_dev_info" ||
        row.type_name == "buffer_head") {
      EXPECT_GT(row.events, 0u) << row.type_name << " seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedStabilityTest, ::testing::Values(3, 17, 101));

}  // namespace
}  // namespace lockdoc
