// The decisive end-to-end property the paper could not have: with every
// injected deviation disabled, the kernel follows its ground-truth locking
// discipline perfectly — so LockDoc must find zero rule violations, and the
// mined rules for key members must match the implemented discipline.
#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/core/violation_finder.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

PipelineResult RunCleanKernel(SimulationResult* sim_out, size_t ops = 6000) {
  MixOptions mix;
  mix.ops = ops;
  mix.seed = 11;
  *sim_out = SimulateKernelRun(mix, FaultPlan::Clean());
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  return RunPipeline(sim_out->trace, *sim_out->registry, options);
}

TEST(GroundTruthTest, CleanKernelHasZeroViolations) {
  SimulationResult sim;
  PipelineResult result = RunCleanKernel(&sim);
  ViolationFinder finder(&result.snapshot.db, sim.registry.get(), &result.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(result.rules);
  EXPECT_TRUE(violations.empty());
  if (!violations.empty()) {
    for (const ViolationExample& ex : finder.Examples(violations, 5)) {
      ADD_FAILURE() << ex.member << " rule {" << ex.rule << "} held {" << ex.held << "} at "
                    << ex.location;
    }
  }
}

TEST(GroundTruthTest, MinedRulesMatchImplementedDiscipline) {
  SimulationResult sim;
  PipelineResult result = RunCleanKernel(&sim);
  const TypeRegistry& registry = *sim.registry;
  TypeId inode = *registry.FindType("inode");
  SubclassId ext4 = *registry.FindSubclass(inode, "ext4");

  auto winner = [&](const char* member_name, AccessType access) -> std::string {
    MemberObsKey key;
    key.type = inode;
    key.subclass = ext4;
    key.member = *registry.layout(inode).FindMember(member_name);
    RuleDerivator derivator;
    DerivationResult derived = derivator.Derive(result.snapshot.observations, key, access);
    if (!derived.winner.has_value()) {
      return "<unobserved>";
    }
    return LockSeqToString(derived.winner->locks);
  };

  // i_state writes always take i_lock (possibly nested inside other locks —
  // the winner must at least contain ES(i_lock)).
  EXPECT_NE(winner("i_state", AccessType::kWrite).find("ES(i_lock in inode)"),
            std::string::npos);
  // i_bytes writes happen in inode_add_bytes under i_lock.
  EXPECT_NE(winner("i_bytes", AccessType::kWrite).find("ES(i_lock in inode)"),
            std::string::npos);
  // i_io_list belongs to the writeback list lock (EO in the bdi).
  EXPECT_NE(winner("i_io_list", AccessType::kWrite)
                .find("EO(wb.list_lock in backing_dev_info)"),
            std::string::npos);
  // i_size writes are governed by i_rwsem, never i_lock.
  std::string i_size = winner("i_size", AccessType::kWrite);
  EXPECT_NE(i_size.find("i_rwsem"), std::string::npos);
  EXPECT_EQ(i_size.find("i_lock"), std::string::npos);
  // Lockless reads stay lockless.
  EXPECT_EQ(winner("i_rdev", AccessType::kRead), "no lock");
}

TEST(GroundTruthTest, CleanJournalDisciplineRecovered) {
  SimulationResult sim;
  PipelineResult result = RunCleanKernel(&sim);
  const TypeRegistry& registry = *sim.registry;
  TypeId journal = *registry.FindType("journal_t");

  MemberObsKey key;
  key.type = journal;
  key.subclass = kNoSubclass;
  key.member = *registry.layout(journal).FindMember("j_committing_transaction");
  RuleDerivator derivator;
  DerivationResult derived = derivator.Derive(result.snapshot.observations, key, AccessType::kWrite);
  ASSERT_TRUE(derived.winner.has_value());
  std::string rule = LockSeqToString(derived.winner->locks);
  EXPECT_NE(rule.find("ES(j_state_lock in journal_t)"), std::string::npos);
  EXPECT_NE(rule.find("ES(j_list_lock in journal_t)"), std::string::npos);
  EXPECT_DOUBLE_EQ(derived.winner->sr, 1.0);
}

TEST(GroundTruthTest, FaultPlanCreatesViolationsCleanPlanDoesNot) {
  MixOptions mix;
  mix.ops = 6000;
  mix.seed = 11;
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();

  SimulationResult faulty = SimulateKernelRun(mix, FaultPlan{});
  PipelineResult faulty_result = RunPipeline(faulty.trace, *faulty.registry, options);
  ViolationFinder faulty_finder(&faulty_result.snapshot.db, faulty.registry.get(),
                                &faulty_result.snapshot.observations);
  EXPECT_FALSE(faulty_finder.FindAll(faulty_result.rules).empty());
}

}  // namespace
}  // namespace lockdoc
