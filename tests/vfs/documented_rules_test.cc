// Sanity of the shipped "documented" rules: they parse, reference only real
// members, and their per-type counts match the paper's Tab. 4 #R column.
#include <map>

#include <gtest/gtest.h>

#include "src/core/rule.h"
#include "src/vfs/vfs_kernel.h"

namespace lockdoc {
namespace {

RuleSet ParseDocumented() {
  auto rules = RuleSet::ParseText(VfsKernel::DocumentedRulesText());
  EXPECT_TRUE(rules.ok()) << rules.status().ToString();
  return rules.ok() ? rules.value() : RuleSet{};
}

TEST(DocumentedRulesTest, PerTypeCountsMatchTab4) {
  RuleSet rules = ParseDocumented();
  std::map<std::string, size_t> counts;
  for (const LockingRule& rule : rules.rules()) {
    ++counts[rule.member.type_name];
  }
  EXPECT_EQ(counts["inode"], 14u);
  EXPECT_EQ(counts["dentry"], 22u);
  EXPECT_EQ(counts["journal_t"], 38u);
  EXPECT_EQ(counts["transaction_t"], 42u);
  EXPECT_EQ(counts["journal_head"], 26u);
  EXPECT_EQ(counts.size(), 5u);
}

TEST(DocumentedRulesTest, EveryRuleReferencesARealMember) {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  RuleSet rules = ParseDocumented();
  for (const LockingRule& rule : rules.rules()) {
    auto type = registry->FindType(rule.member.type_name);
    ASSERT_TRUE(type.has_value()) << rule.ToString();
    EXPECT_TRUE(registry->layout(*type).FindMember(rule.member.member_name).has_value())
        << rule.ToString();
  }
}

TEST(DocumentedRulesTest, EveryRuleLockReferencesARealLockOrGlobal) {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  RuleSet rules = ParseDocumented();
  for (const LockingRule& rule : rules.rules()) {
    for (const LockClass& lock : rule.locks) {
      if (lock.scope == LockScope::kGlobal) {
        continue;  // Globals are validated against the trace at runtime.
      }
      auto owner = registry->FindType(lock.owner_type);
      ASSERT_TRUE(owner.has_value()) << rule.ToString();
      auto member = registry->layout(*owner).FindMember(lock.lock_name);
      ASSERT_TRUE(member.has_value()) << rule.ToString();
      EXPECT_TRUE(registry->layout(*owner).member(*member).is_lock) << rule.ToString();
    }
  }
}

TEST(DocumentedRulesTest, CoversBothAccessDirections) {
  RuleSet rules = ParseDocumented();
  size_t reads = 0;
  size_t writes = 0;
  for (const LockingRule& rule : rules.rules()) {
    (rule.access == AccessType::kRead ? reads : writes) += 1;
  }
  EXPECT_GT(reads, 40u);
  EXPECT_GT(writes, 60u);
  EXPECT_EQ(reads + writes, 142u);
}

}  // namespace
}  // namespace lockdoc
