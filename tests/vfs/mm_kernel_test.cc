// End-to-end coverage of the range-lock model: the mm workload's traces
// must let the miner recover the documented mm rules with no false
// violations, surface the seeded non-overlap write as a violation, and
// close the seeded 3-class lock-order cycle with range-annotated
// instance witnesses.
#include "src/vfs/mm_kernel.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/core/importer.h"
#include "src/core/lock_order.h"
#include "src/core/pipeline.h"
#include "src/core/rule_checker.h"
#include "src/core/violation_finder.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

SimulationResult RunMm(uint64_t ops, uint64_t seed, const FaultPlan& plan) {
  MixOptions mix;
  mix.ops = ops;
  mix.seed = seed;
  return SimulateMmRun(mix, plan);
}

PipelineResult Analyze(const SimulationResult& sim) {
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  return RunPipeline(sim.trace, *sim.registry, options);
}

TEST(MmKernelTest, DocumentedRulesParseAndReferenceRealMembers) {
  auto rules = RuleSet::ParseText(MmKernel::DocumentedRulesText());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsMmRegistry(&ids);
  ASSERT_TRUE(ids.has_mm());
  for (const LockingRule& rule : rules.value().rules()) {
    auto type = registry->FindType(rule.member.type_name);
    ASSERT_TRUE(type.has_value()) << rule.ToString();
    EXPECT_TRUE(registry->layout(*type).FindMember(rule.member.member_name).has_value())
        << rule.ToString();
  }
}

TEST(MmKernelTest, CleanRunMatchesDocumentedGroundTruth) {
  SimulationResult sim = RunMm(3000, 7, FaultPlan::Clean());
  PipelineResult result = Analyze(sim);
  auto documented = RuleSet::ParseText(MmKernel::DocumentedRulesText());
  ASSERT_TRUE(documented.ok());
  RuleChecker checker(sim.registry.get(), &result.snapshot.observations);
  std::vector<RuleCheckResult> checks = checker.CheckAll(documented.value());
  size_t observed = 0;
  for (const RuleCheckResult& check : checks) {
    if (check.verdict == RuleVerdict::kUnobserved) {
      continue;
    }
    ++observed;
    EXPECT_EQ(check.verdict, RuleVerdict::kCorrect)
        << check.rule.ToString() << " sr=" << check.sr;
  }
  // Both mm types exercise a healthy share of their documented rules.
  EXPECT_GE(observed, 15u);
}

TEST(MmKernelTest, CleanRunHasNoViolations) {
  SimulationResult sim = RunMm(3000, 7, FaultPlan::Clean());
  PipelineResult result = Analyze(sim);
  ViolationFinder finder(&result.snapshot.db, sim.registry.get(),
                         &result.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(result.rules);
  // Overlap-aware derivation must not flag disjoint-span holds (mremap's
  // two simultaneous holds, page-granular faults) as violations.
  EXPECT_TRUE(violations.empty());
}

TEST(MmKernelTest, SeededNonOverlapWriteIsCaught) {
  FaultPlan plan = FaultPlan::Clean();
  plan.mmap_nonoverlap_write = true;
  SimulationResult sim = RunMm(4000, 7, plan);
  PipelineResult result = Analyze(sim);
  ViolationFinder finder(&result.snapshot.db, sim.registry.get(),
                         &result.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(result.rules);
  ASSERT_FALSE(violations.empty());
  // The bug writes vm_flags of a vma the held span does not overlap: a
  // hold that covers nothing counts as no lock at all.
  bool saw_vma_violation = false;
  for (const ViolationSummaryRow& row : finder.Summarize(violations)) {
    if (row.type_name == "vm_area_struct") {
      EXPECT_GT(row.events, 0u);
      saw_vma_violation = true;
    }
  }
  EXPECT_TRUE(saw_vma_violation);
}

TEST(MmKernelTest, SeededCycleClosesLockOrderPaths) {
  FaultPlan plan = FaultPlan::Clean();
  plan.mm_lock_cycle = true;
  SimulationResult sim = RunMm(4000, 7, plan);
  Database db;
  TraceImporter importer(sim.registry.get(), VfsKernel::MakeFilterConfig());
  importer.Import(sim.trace, &db);
  LockOrderGraph graph = LockOrderGraph::Build(db, *sim.registry);

  // The inverted stats path closes mmap_lock -> page_table_lock ->
  // vm_committed_lock -> mmap_lock: one nontrivial SCC, at least one
  // enumerated cycle path, and an ABBA conflict.
  std::vector<std::vector<LockClass>> sccs = graph.StronglyConnectedComponents();
  ASSERT_FALSE(sccs.empty());
  size_t largest = 0;
  for (const auto& scc : sccs) {
    largest = std::max(largest, scc.size());
  }
  EXPECT_GE(largest, 2u);
  EXPECT_FALSE(graph.ConflictingPairs().empty());

  std::vector<LockOrderCyclePath> paths = graph.FindCyclePaths();
  ASSERT_FALSE(paths.empty());
  for (const LockOrderCyclePath& path : paths) {
    ASSERT_GE(path.edges.size(), 2u);
    for (size_t i = 0; i < path.edges.size(); ++i) {
      const LockOrderEdge& edge = path.edges[i];
      const LockOrderEdge& next = path.edges[(i + 1) % path.edges.size()];
      EXPECT_EQ(edge.to.ToString(), next.from.ToString());
      EXPECT_GT(edge.support, 0u);
      EXPECT_NE(edge.witness_from.addr, 0u);
      EXPECT_NE(edge.witness_to.addr, 0u);
    }
  }

  // mmap_lock is a range lock, so at least one witness carries its span.
  bool saw_range_witness = false;
  for (const LockOrderEdge& edge : graph.edges()) {
    if (edge.witness_from.has_range || edge.witness_to.has_range) {
      saw_range_witness = true;
    }
  }
  EXPECT_TRUE(saw_range_witness);

  std::string report = graph.Report(db);
  EXPECT_NE(report.find("cycle"), std::string::npos);
}

TEST(MmKernelTest, DerivedVmaRulesRequireOverlappingMmapLock) {
  SimulationResult sim = RunMm(3000, 7, FaultPlan::Clean());
  PipelineResult result = Analyze(sim);
  auto vma_type = sim.registry->FindType("vm_area_struct");
  ASSERT_TRUE(vma_type.has_value());
  const TypeLayout& layout = sim.registry->layout(*vma_type);
  bool saw_vma_rule = false;
  for (const DerivationResult& derived : result.rules) {
    if (derived.key.type != *vma_type || !derived.winner.has_value()) {
      continue;
    }
    saw_vma_rule = true;
    // Every observed vma member access happened under an overlapping
    // mmap_lock hold, so the winner must name it (never "no lock").
    EXPECT_FALSE(derived.winner->is_no_lock())
        << layout.member(derived.key.member).name;
    EXPECT_NE(LockSeqToString(derived.winner->locks).find("mmap_lock"), std::string::npos)
        << layout.member(derived.key.member).name;
  }
  EXPECT_TRUE(saw_vma_rule);
}

}  // namespace
}  // namespace lockdoc
