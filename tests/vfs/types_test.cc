// The simulated kernel's layouts must match the paper's Tab. 6 member
// population exactly (#M and #Bl columns).
#include "src/vfs/types.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

struct TypeExpectation {
  const char* name;
  size_t members;   // Paper #M.
  size_t filtered;  // Paper #Bl (locks + atomics + blacklisted).
};

class Tab6LayoutTest : public ::testing::TestWithParam<TypeExpectation> {};

TEST_P(Tab6LayoutTest, MemberAndFilteredCountsMatchPaper) {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  auto type = registry->FindType(GetParam().name);
  ASSERT_TRUE(type.has_value()) << GetParam().name;
  const TypeLayout& layout = registry->layout(*type);
  EXPECT_EQ(layout.member_count(), GetParam().members);
  size_t filtered = 0;
  for (const MemberDef& def : layout.members()) {
    if (def.is_lock || def.is_atomic || def.blacklisted) {
      ++filtered;
    }
  }
  EXPECT_EQ(filtered, GetParam().filtered);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable6, Tab6LayoutTest,
    ::testing::Values(TypeExpectation{"backing_dev_info", 43, 2},
                      TypeExpectation{"block_device", 21, 2},
                      TypeExpectation{"buffer_head", 13, 0}, TypeExpectation{"cdev", 6, 0},
                      TypeExpectation{"dentry", 21, 1}, TypeExpectation{"inode", 65, 5},
                      TypeExpectation{"journal_head", 15, 0},
                      TypeExpectation{"journal_t", 58, 11},
                      TypeExpectation{"pipe_inode_info", 16, 1},
                      TypeExpectation{"super_block", 56, 3},
                      TypeExpectation{"transaction_t", 27, 1}),
    [](const ::testing::TestParamInfo<TypeExpectation>& info) {
      return std::string(info.param.name);
    });

TEST(VfsTypesTest, ElevenTypesRegistered) {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  EXPECT_EQ(registry->type_count(), 11u);
}

TEST(VfsTypesTest, ElevenInodeSubclasses) {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  EXPECT_EQ(registry->SubclassesOf(ids.inode).size(), 11u);
  EXPECT_EQ(ids.all_filesystems.size(), 11u);
  EXPECT_EQ(registry->QualifiedName(ids.inode, ids.fs_ext4), "inode:ext4");
  EXPECT_EQ(registry->QualifiedName(ids.inode, ids.fs_anon_inodefs), "inode:anon_inodefs");
}

TEST(VfsTypesTest, KeyLockMembersExist) {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  struct LockSpec {
    TypeId type;
    const char* member;
    LockType lock_type;
  };
  for (const auto& [type, member, lock_type] :
       std::initializer_list<LockSpec>{{ids.inode, "i_lock", LockType::kSpinlock},
                                       {ids.inode, "i_rwsem", LockType::kRwSemaphore},
                                       {ids.dentry, "d_lock", LockType::kSpinlock},
                                       {ids.journal, "j_state_lock", LockType::kRwlock},
                                       {ids.journal, "j_list_lock", LockType::kSpinlock},
                                       {ids.journal, "j_checkpoint_mutex", LockType::kMutex},
                                       {ids.pipe, "mutex", LockType::kMutex},
                                       {ids.block_device, "bd_mutex", LockType::kMutex},
                                       {ids.bdi, "wb.list_lock", LockType::kSpinlock}}) {
    const TypeLayout& layout = registry->layout(type);
    auto index = layout.FindMember(member);
    ASSERT_TRUE(index.has_value()) << member;
    EXPECT_TRUE(layout.member(*index).is_lock) << member;
    EXPECT_EQ(layout.member(*index).lock_type, lock_type) << member;
  }
}

TEST(VfsTypesTest, UnionsAreUnrolled) {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  const TypeLayout& inode = registry->layout(ids.inode);
  // The i_pipe/i_bdev/i_cdev/i_link union alternatives have distinct offsets.
  auto pipe = inode.FindMember("i_pipe");
  auto bdev = inode.FindMember("i_bdev");
  auto cdev = inode.FindMember("i_cdev");
  auto link = inode.FindMember("i_link");
  ASSERT_TRUE(pipe && bdev && cdev && link);
  EXPECT_NE(inode.member(*pipe).offset, inode.member(*bdev).offset);
  EXPECT_NE(inode.member(*bdev).offset, inode.member(*cdev).offset);
  EXPECT_NE(inode.member(*cdev).offset, inode.member(*link).offset);
}

TEST(VfsTypesTest, MLookupHelperChecks) {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  EXPECT_EQ(M(*registry, ids.inode, "i_state"),
            *registry->layout(ids.inode).FindMember("i_state"));
}

}  // namespace
}  // namespace lockdoc
