// Per-operation trace-shape checks: each kernel op must emit the lock and
// access pattern its ground-truth discipline promises. These tests pin the
// contract the whole evaluation calibration rests on.
#include <gtest/gtest.h>

#include "src/vfs/vfs_kernel.h"

namespace lockdoc {
namespace {

class OpShapeTest : public ::testing::Test {
 protected:
  OpShapeTest() {
    registry_ = BuildVfsRegistry(&ids_);
    sim_ = std::make_unique<SimKernel>(&trace_, registry_.get());
    vfs_ = std::make_unique<VfsKernel>(sim_.get(), registry_.get(), ids_, FaultPlan::Clean());
    vfs_->MountAll();
    mount_end_ = trace_.size();
  }
  ~OpShapeTest() override {
    vfs_->UnmountAll();
    sim_->CheckQuiescent();
  }

  // Events emitted after construction (i.e. by the ops under test).
  std::vector<TraceEvent> OpEvents() const {
    return {trace_.events().begin() + static_cast<ptrdiff_t>(mount_end_),
            trace_.events().end()};
  }

  // True if some op event is an acquisition of `lock_name` (for embedded
  // locks: the lock member's name resolved via the address).
  bool AcquiredEmbedded(const ObjectRef& obj, std::string_view member_name) const {
    const TypeLayout& layout = registry_->layout(obj.type);
    MemberIndex member = *layout.FindMember(member_name);
    Address lock_addr = obj.addr + layout.member(member).offset;
    for (const TraceEvent& e : OpEvents()) {
      if (e.kind == EventKind::kLockAcquire && e.addr == lock_addr) {
        return true;
      }
    }
    return false;
  }

  // Count writes to a member of `obj` among the op events.
  size_t WritesTo(const ObjectRef& obj, std::string_view member_name) const {
    const TypeLayout& layout = registry_->layout(obj.type);
    MemberIndex member = *layout.FindMember(member_name);
    Address addr = obj.addr + layout.member(member).offset;
    size_t count = 0;
    for (const TraceEvent& e : OpEvents()) {
      if (e.kind == EventKind::kMemWrite && e.addr == addr) {
        ++count;
      }
    }
    return count;
  }

  // Find the inode object of a file by replaying alloc events.
  ObjectRef InodeOf(SubclassId fs, size_t index) {
    // VfsKernel does not expose objects; recover the newest inode alloc of
    // the right subclass from the trace.
    ObjectRef result;
    std::map<Address, TraceEvent> live;
    for (const TraceEvent& e : trace_.events()) {
      if (e.kind == EventKind::kAlloc) {
        live[e.addr] = e;
      } else if (e.kind == EventKind::kFree) {
        live.erase(e.addr);
      }
    }
    (void)index;
    for (const auto& [addr, e] : live) {
      if (e.type == ids_.inode && e.subclass == fs) {
        result.addr = addr;
        result.type = e.type;
        result.subclass = e.subclass;
      }
    }
    return result;
  }

  VfsIds ids_;
  std::unique_ptr<TypeRegistry> registry_;
  Trace trace_;
  std::unique_ptr<SimKernel> sim_;
  std::unique_ptr<VfsKernel> vfs_;
  size_t mount_end_ = 0;
  Rng rng_{99};
};

TEST_F(OpShapeTest, CreateFileTakesDirRwsemAndHashLocks) {
  size_t index = vfs_->CreateFile(ids_.fs_ext4, rng_);
  (void)index;
  bool hash_lock = false;
  for (const TraceEvent& e : OpEvents()) {
    if (e.kind == EventKind::kLockAcquire &&
        e.lock_type == LockType::kSpinlock) {
      hash_lock = true;
    }
  }
  EXPECT_TRUE(hash_lock);
  // The new inode's i_hash was written exactly once (no neighbour writes in
  // the clean plan).
  ObjectRef inode = InodeOf(ids_.fs_ext4, index);
  ASSERT_TRUE(inode.valid());
  EXPECT_EQ(WritesTo(inode, "i_hash"), 1u);
}

TEST_F(OpShapeTest, WriteFileUpdatesSizeUnderRwsem) {
  size_t index = vfs_->CreateFile(ids_.fs_tmpfs, rng_);
  ObjectRef inode = InodeOf(ids_.fs_tmpfs, index);
  ASSERT_TRUE(inode.valid());
  size_t before = trace_.size();
  vfs_->WriteFile(ids_.fs_tmpfs, index, rng_);
  mount_end_ = before;  // Restrict the window to the write op.
  EXPECT_TRUE(AcquiredEmbedded(inode, "i_rwsem"));
  EXPECT_GE(WritesTo(inode, "i_size"), 1u);
  EXPECT_GE(WritesTo(inode, "i_size_seqcount"), 1u);
  // Dirtying took i_lock and the bdi list lock.
  EXPECT_TRUE(AcquiredEmbedded(inode, "i_lock"));
}

TEST_F(OpShapeTest, ChmodWritesModeUnderRwsem) {
  size_t index = vfs_->CreateFile(ids_.fs_rootfs, rng_);
  ObjectRef inode = InodeOf(ids_.fs_rootfs, index);
  size_t before = trace_.size();
  vfs_->ChmodFile(ids_.fs_rootfs, index, rng_);
  mount_end_ = before;
  EXPECT_TRUE(AcquiredEmbedded(inode, "i_rwsem"));
  EXPECT_GE(WritesTo(inode, "i_mode"), 1u);
  EXPECT_GE(WritesTo(inode, "i_ctime"), 1u);
}

TEST_F(OpShapeTest, StatIsReadMostly) {
  size_t index = vfs_->CreateFile(ids_.fs_ext4, rng_);
  ObjectRef inode = InodeOf(ids_.fs_ext4, index);
  size_t before = trace_.size();
  vfs_->StatFile(ids_.fs_ext4, index, rng_);
  mount_end_ = before;
  size_t reads = 0;
  size_t writes = 0;
  for (const TraceEvent& e : OpEvents()) {
    reads += e.kind == EventKind::kMemRead ? 1 : 0;
    writes += e.kind == EventKind::kMemWrite ? 1 : 0;
  }
  EXPECT_GT(reads, 8u);
  EXPECT_EQ(writes, 0u);
  EXPECT_EQ(WritesTo(inode, "i_mode"), 0u);
}

TEST_F(OpShapeTest, TruncateIsJournaledOnExt4) {
  size_t index = vfs_->CreateFile(ids_.fs_ext4, rng_);
  size_t before = trace_.size();
  vfs_->TruncateFile(ids_.fs_ext4, index, rng_);
  mount_end_ = before;
  bool saw_journal_frame = false;
  for (const TraceEvent& e : OpEvents()) {
    if (e.stack == kInvalidStack) {
      continue;
    }
    if (trace_.FormatStack(e.stack).find("ext4_truncate") != std::string::npos) {
      saw_journal_frame = true;
    }
  }
  EXPECT_TRUE(saw_journal_frame);
}

TEST_F(OpShapeTest, UnlinkFreesInodeAndDentry) {
  size_t index = vfs_->CreateFile(ids_.fs_tmpfs, rng_);
  size_t before = trace_.size();
  vfs_->UnlinkFile(ids_.fs_tmpfs, index, rng_);
  mount_end_ = before;
  size_t frees = 0;
  for (const TraceEvent& e : OpEvents()) {
    frees += e.kind == EventKind::kFree ? 1 : 0;
  }
  EXPECT_EQ(frees, 2u);  // Inode + dentry.
  EXPECT_FALSE(vfs_->file_alive(ids_.fs_tmpfs, index));
}

TEST_F(OpShapeTest, ReadSymlinkUsesRcu) {
  size_t index = vfs_->CreateSymlink(ids_.fs_ext4, rng_);
  size_t before = trace_.size();
  vfs_->ReadSymlink(ids_.fs_ext4, index, rng_);
  mount_end_ = before;
  bool rcu = false;
  for (const TraceEvent& e : OpEvents()) {
    if (e.kind == EventKind::kLockAcquire && e.lock_type == LockType::kRcu) {
      rcu = true;
    }
  }
  EXPECT_TRUE(rcu);
}

TEST_F(OpShapeTest, MkdirCreatesRemovableEmptyDirectory) {
  size_t dir = vfs_->MkdirDir(ids_.fs_ext4, rng_);
  EXPECT_TRUE(vfs_->IsDirectory(ids_.fs_ext4, dir));
  EXPECT_TRUE(vfs_->CanUnlink(ids_.fs_ext4, dir));
  EXPECT_TRUE(vfs_->RmdirDir(ids_.fs_ext4, dir, rng_));
  EXPECT_FALSE(vfs_->file_alive(ids_.fs_ext4, dir));
  sim_->CheckQuiescent();
}

TEST_F(OpShapeTest, NonEmptyDirectoryCannotBeRemoved) {
  size_t dir = vfs_->MkdirDir(ids_.fs_tmpfs, rng_);
  // Create children until one lands inside the new directory (parent
  // selection is probabilistic).
  bool has_child = false;
  for (int i = 0; i < 200 && !has_child; ++i) {
    size_t child = vfs_->CreateFile(ids_.fs_tmpfs, rng_);
    has_child = !vfs_->CanUnlink(ids_.fs_tmpfs, dir);
    (void)child;
  }
  ASSERT_TRUE(has_child);
  EXPECT_FALSE(vfs_->RmdirDir(ids_.fs_tmpfs, dir, rng_));
  EXPECT_TRUE(vfs_->file_alive(ids_.fs_tmpfs, dir));
}

TEST_F(OpShapeTest, HardLinkSharesInodeUntilLastUnlink) {
  size_t original = vfs_->CreateFile(ids_.fs_ext4, rng_);
  ObjectRef inode = InodeOf(ids_.fs_ext4, original);
  ASSERT_TRUE(inode.valid());
  size_t link = vfs_->LinkFile(ids_.fs_ext4, original, rng_);
  EXPECT_NE(link, original);

  // Unlinking one name keeps the inode alive (no free event for it).
  size_t before = trace_.size();
  vfs_->UnlinkFile(ids_.fs_ext4, original, rng_);
  mount_end_ = before;
  for (const TraceEvent& e : OpEvents()) {
    if (e.kind == EventKind::kFree) {
      EXPECT_NE(e.addr, inode.addr) << "inode freed while a hard link remains";
    }
  }
  EXPECT_TRUE(vfs_->file_alive(ids_.fs_ext4, link));

  // The last unlink frees it.
  before = trace_.size();
  vfs_->UnlinkFile(ids_.fs_ext4, link, rng_);
  mount_end_ = before;
  bool inode_freed = false;
  for (const TraceEvent& e : OpEvents()) {
    inode_freed |= e.kind == EventKind::kFree && e.addr == inode.addr;
  }
  EXPECT_TRUE(inode_freed);
  sim_->CheckQuiescent();
}

TEST_F(OpShapeTest, ProcWritesAreLockless) {
  size_t before = trace_.size();
  for (int i = 0; i < 20; ++i) {
    vfs_->ProcReadEntry(rng_);
  }
  mount_end_ = before;
  for (const TraceEvent& e : OpEvents()) {
    EXPECT_NE(e.kind, EventKind::kLockAcquire)
        << "proc ops must not take locks (Sec. 5.3 subclassing motivation)";
  }
}

}  // namespace
}  // namespace lockdoc
