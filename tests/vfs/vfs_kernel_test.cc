#include "src/vfs/vfs_kernel.h"

#include <gtest/gtest.h>

#include "src/trace/trace_stats.h"

namespace lockdoc {
namespace {

struct VfsFixture {
  VfsFixture() {
    registry = BuildVfsRegistry(&ids);
    sim = std::make_unique<SimKernel>(&trace, registry.get());
    vfs = std::make_unique<VfsKernel>(sim.get(), registry.get(), ids, FaultPlan{});
    vfs->MountAll();
  }
  ~VfsFixture() {
    if (vfs) {
      vfs->UnmountAll();
      sim->CheckQuiescent();
    }
  }

  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
  std::unique_ptr<SimKernel> sim;
  std::unique_ptr<VfsKernel> vfs;
};

TEST(VfsKernelTest, MountCreatesSuperblocksAndRoots) {
  VfsFixture f;
  TraceStats stats = ComputeTraceStats(f.trace);
  // 11 super blocks + 11 root inodes + 11 root dentries + journal +
  // transaction + bdi + 24 buffers + 12 journal heads.
  EXPECT_GE(stats.allocations, 11u * 3 + 3);
  EXPECT_EQ(stats.deallocations, 0u);
}

TEST(VfsKernelTest, EveryOpLeavesKernelQuiescent) {
  VfsFixture f;
  Rng rng(5);
  size_t file = f.vfs->CreateFile(f.ids.fs_ext4, rng);
  f.sim->CheckQuiescent();
  f.vfs->WriteFile(f.ids.fs_ext4, file, rng);
  f.sim->CheckQuiescent();
  f.vfs->ReadFile(f.ids.fs_ext4, file, rng);
  f.vfs->StatFile(f.ids.fs_ext4, file, rng);
  f.vfs->ChmodFile(f.ids.fs_ext4, file, rng);
  f.vfs->ChownFile(f.ids.fs_ext4, file, rng);
  f.vfs->LookupFile(f.ids.fs_ext4, file, rng);
  f.vfs->RenameFile(f.ids.fs_ext4, file, rng);
  f.sim->CheckQuiescent();
  f.vfs->JournalCommit(rng);
  f.vfs->JournalCheckpoint(rng);
  f.vfs->WritebackRun(rng);
  f.vfs->SyncFilesystem(f.ids.fs_ext4, rng);
  f.vfs->JournalStatsProcShow(rng);
  f.vfs->BufferLruScan(rng);
  f.sim->CheckQuiescent();
  f.vfs->UnlinkFile(f.ids.fs_ext4, file, rng);
  f.sim->CheckQuiescent();
}

TEST(VfsKernelTest, FileLifecycle) {
  VfsFixture f;
  Rng rng(6);
  size_t file = f.vfs->CreateFile(f.ids.fs_tmpfs, rng);
  EXPECT_TRUE(f.vfs->file_alive(f.ids.fs_tmpfs, file));
  f.vfs->UnlinkFile(f.ids.fs_tmpfs, file, rng);
  EXPECT_FALSE(f.vfs->file_alive(f.ids.fs_tmpfs, file));
}

TEST(VfsKernelTest, SymlinkLifecycle) {
  VfsFixture f;
  Rng rng(7);
  size_t link = f.vfs->CreateSymlink(f.ids.fs_ext4, rng);
  EXPECT_TRUE(f.vfs->file_alive(f.ids.fs_ext4, link));
  f.vfs->ReadSymlink(f.ids.fs_ext4, link, rng);
  f.sim->CheckQuiescent();
}

TEST(VfsKernelTest, PipeLifecycle) {
  VfsFixture f;
  Rng rng(8);
  size_t pipe = f.vfs->PipeCreate(rng);
  EXPECT_TRUE(f.vfs->pipe_alive(pipe));
  f.vfs->PipeWrite(pipe, rng);
  f.vfs->PipeRead(pipe, rng);
  f.vfs->PipePoll(pipe, rng);
  f.vfs->PipeRelease(pipe, rng);
  EXPECT_FALSE(f.vfs->pipe_alive(pipe));
  f.sim->CheckQuiescent();
}

TEST(VfsKernelTest, SpecialFilesystemsAndDevices) {
  VfsFixture f;
  Rng rng(9);
  f.vfs->ProcReadEntry(rng);
  f.vfs->SysfsReadAttr(rng);
  f.vfs->SysfsWriteAttr(rng);
  f.vfs->SockCreateAndUse(rng);
  f.vfs->AnonInodeUse(rng);
  f.vfs->DebugfsCreate(rng);
  f.vfs->BdevOpen(rng);
  f.vfs->BdevRelease(rng);
  f.vfs->CdevAddAndOpen(rng);
  f.sim->CheckQuiescent();
  EXPECT_GE(f.vfs->file_count(f.ids.fs_proc), 1u);
  EXPECT_GE(f.vfs->file_count(f.ids.fs_sockfs), 1u);
}

TEST(VfsKernelTest, UnmountFreesEverything) {
  VfsIds ids;
  auto registry = BuildVfsRegistry(&ids);
  Trace trace;
  SimKernel sim(&trace, registry.get());
  {
    VfsKernel vfs(&sim, registry.get(), ids, FaultPlan{});
    vfs.MountAll();
    Rng rng(10);
    size_t file = vfs.CreateFile(ids.fs_ext4, rng);
    vfs.WriteFile(ids.fs_ext4, file, rng);
    vfs.PipeCreate(rng);
    vfs.JournalCommit(rng);
    vfs.UnmountAll();
    sim.CheckQuiescent();
  }
  TraceStats stats = ComputeTraceStats(trace);
  EXPECT_EQ(stats.allocations, stats.deallocations);
}

TEST(VfsKernelTest, DocumentedRulesParseTo142Rules) {
  auto rules = RuleSet::ParseText(VfsKernel::DocumentedRulesText());
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  EXPECT_EQ(rules.value().size(), 142u);  // Sec. 7.3: "142 locking rules".
}

TEST(VfsKernelTest, FilterConfigCoversLifecycleFunctions) {
  FilterConfig config = VfsKernel::MakeFilterConfig();
  EXPECT_TRUE(config.init_teardown_functions.count("inode_init_always"));
  EXPECT_TRUE(config.init_teardown_functions.count("alloc_pipe_info"));
  EXPECT_TRUE(config.ignored_functions.count("atomic_read"));
}

TEST(FaultPlanTest, CleanDisablesEverything) {
  FaultPlan clean = FaultPlan::Clean();
  EXPECT_FALSE(clean.inode_set_flags_bug);
  EXPECT_FALSE(clean.remove_inode_hash_neighbors);
  EXPECT_FALSE(clean.libfs_d_subdirs_rcu_walk);
  EXPECT_FALSE(clean.ext4_committing_txn_peek);
  EXPECT_EQ(clean.buffer_head_sloppiness, 0.0);
  EXPECT_EQ(clean.bdi_stats_sloppiness, 0.0);
  EXPECT_EQ(clean.journal_stats_sloppiness, 0.0);
  EXPECT_EQ(clean.sb_flags_sloppiness, 0.0);
}

}  // namespace
}  // namespace lockdoc
