#include "src/util/stats.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(RunningStatsTest, BasicMoments) {
  RunningStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    stats.Add(v);
  }
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_NEAR(stats.stddev(), 1.2909944, 1e-6);
}

TEST(RunningStatsTest, EmptyMeanIsZero) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.count(), 0u);
}

TEST(RunningStatsTest, SingleSampleStddevIsZero) {
  RunningStats stats;
  stats.Add(5.0);
  EXPECT_DOUBLE_EQ(stats.stddev(), 0.0);
}

TEST(RunningStatsTest, Percentiles) {
  RunningStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(stats.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(stats.Percentile(100), 100.0);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"A", "Long Header"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer", "2"});
  std::string text = table.ToString();
  EXPECT_NE(text.find("| A      | Long Header |"), std::string::npos);
  EXPECT_NE(text.find("| longer | 2           |"), std::string::npos);
}

TEST(TextTableTest, SeparatorRendersRule) {
  TextTable table({"A"});
  table.AddRow({"1"});
  table.AddSeparator();
  table.AddRow({"2"});
  std::string text = table.ToString();
  // Header rule + separator + trailing rule = at least 4 horizontal rules.
  size_t rules = 0;
  size_t pos = 0;
  while ((pos = text.find("+-", pos)) != std::string::npos) {
    ++rules;
    pos += 2;
  }
  EXPECT_GE(rules, 4u);
}

TEST(TextTableTest, EmptyTableStillRendersHeader) {
  TextTable table({"Col"});
  EXPECT_NE(table.ToString().find("Col"), std::string::npos);
}

}  // namespace
}  // namespace lockdoc
