#include "src/util/logging.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() : saved_(GetLogThreshold()) {}
  ~LoggingTest() override { SetLogThreshold(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, ThresholdRoundTrips) {
  SetLogThreshold(LogLevel::kDebug);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kDebug);
  SetLogThreshold(LogLevel::kError);
  EXPECT_EQ(GetLogThreshold(), LogLevel::kError);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelName(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelName(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(LogLevelName(LogLevel::kWarning), "WARN");
  EXPECT_STREQ(LogLevelName(LogLevel::kError), "ERROR");
}

TEST_F(LoggingTest, MessagesBelowThresholdAreSuppressed) {
  SetLogThreshold(LogLevel::kError);
  ::testing::internal::CaptureStderr();
  LOCKDOC_LOG(kInfo) << "hidden";
  LOCKDOC_LOG(kError) << "visible";
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("hidden"), std::string::npos);
  EXPECT_NE(err.find("visible"), std::string::npos);
}

TEST_F(LoggingTest, MessageCarriesBasenameAndLine) {
  SetLogThreshold(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  LOCKDOC_LOG(kWarning) << "payload " << 42;
  std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("logging_test.cc:"), std::string::npos);
  EXPECT_EQ(err.find("tests/util"), std::string::npos);  // Basename only.
  EXPECT_NE(err.find("payload 42"), std::string::npos);
  EXPECT_NE(err.find("[lockdoc WARN]"), std::string::npos);
}

TEST_F(LoggingTest, CheckPassesOnTrueCondition) {
  LOCKDOC_CHECK(1 + 1 == 2);  // Must not abort.
}

TEST(LoggingDeathTest, CheckAbortsWithMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(LOCKDOC_CHECK(false && "intentional"), "CHECK failed");
}

}  // namespace
}  // namespace lockdoc
