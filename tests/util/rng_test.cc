#include "src/util/rng.h"

#include <set>

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.Below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    uint64_t value = rng.Range(5, 7);
    EXPECT_GE(value, 5u);
    EXPECT_LE(value, 7u);
  }
  EXPECT_EQ(rng.Range(4, 4), 4u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.Chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.02);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continued stream.
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent.Next() != child.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 28);
}

TEST(SplitMix64Test, DeterministicSequence) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  EXPECT_EQ(SplitMix64(s1), SplitMix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace lockdoc
