#include "src/util/string_util.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(SplitTest, BasicFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, EmptyFieldsPreserved) {
  EXPECT_EQ(Split(",a,,b,", ','), (std::vector<std::string>{"", "a", "", "b", ""}));
}

TEST(SplitTest, EmptyInputYieldsOneEmptyField) {
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitAndTrimTest, TrimsAndDropsEmpty) {
  EXPECT_EQ(SplitAndTrim("  a , ,b ,  c  ", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyVector) { EXPECT_EQ(Join({}, ", "), ""); }

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hello\t\n "), "hello");
  EXPECT_EQ(Trim("\t \n"), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_TRUE(EndsWith("x", ""));
}

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(ParseUint64Test, ValidValues) {
  uint64_t value = 0;
  EXPECT_TRUE(ParseUint64("0", &value));
  EXPECT_EQ(value, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &value));
  EXPECT_EQ(value, UINT64_MAX);
}

TEST(ParseUint64Test, RejectsInvalid) {
  uint64_t value = 0;
  EXPECT_FALSE(ParseUint64("", &value));
  EXPECT_FALSE(ParseUint64("-1", &value));
  EXPECT_FALSE(ParseUint64("12x", &value));
  EXPECT_FALSE(ParseUint64("18446744073709551616", &value));  // Overflow.
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double value = 0;
  EXPECT_TRUE(ParseDouble("0.5", &value));
  EXPECT_DOUBLE_EQ(value, 0.5);
  EXPECT_TRUE(ParseDouble("-2e3", &value));
  EXPECT_DOUBLE_EQ(value, -2000.0);
  EXPECT_FALSE(ParseDouble("", &value));
  EXPECT_FALSE(ParseDouble("1.5abc", &value));
}

TEST(FormatPercentTest, TwoDecimals) {
  EXPECT_EQ(FormatPercent(0.9412), "94.12%");
  EXPECT_EQ(FormatPercent(1.0), "100.00%");
  EXPECT_EQ(FormatPercent(0.0), "0.00%");
}

TEST(FormatWithCommasTest, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(27400000), "27,400,000");
}

}  // namespace
}  // namespace lockdoc
