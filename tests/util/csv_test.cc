#include "src/util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(CsvEscapeTest, PlainFieldUnquoted) { EXPECT_EQ(CsvEscape("hello"), "hello"); }

TEST(CsvEscapeTest, QuotesSpecialCharacters) {
  EXPECT_EQ(CsvEscape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvEscape("line\nbreak"), "\"line\nbreak\"");
}

TEST(CsvEncodeRowTest, JoinsEscapedFields) {
  EXPECT_EQ(CsvEncodeRow({"a", "b,c", ""}), "a,\"b,c\",");
}

TEST(CsvParseLineTest, RoundTripsEncodedRow) {
  std::vector<std::string> fields = {"plain", "with,comma", "with \"quote\"", "", "end"};
  auto parsed = CsvParseLine(CsvEncodeRow(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), fields);
}

TEST(ParseCsvTest, MultipleRows) {
  auto parsed = ParseCsv("a,b\nc,d\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(parsed.value()[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsvTest, QuotedFieldWithNewline) {
  auto parsed = ParseCsv("a,\"x\ny\"\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0][1], "x\ny");
}

TEST(ParseCsvTest, CrLfLineEndings) {
  auto parsed = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[1][1], "d");
}

TEST(ParseCsvTest, MissingTrailingNewline) {
  auto parsed = ParseCsv("a,b\nc,d");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);
}

TEST(ParseCsvTest, TrailingEmptyField) {
  auto parsed = ParseCsv("a,\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value()[0], (std::vector<std::string>{"a", ""}));
}

TEST(ParseCsvTest, RejectsUnterminatedQuote) {
  EXPECT_FALSE(ParseCsv("a,\"unterminated\n").ok());
}

TEST(ParseCsvTest, RejectsQuoteInsideUnquotedField) {
  EXPECT_FALSE(ParseCsv("ab\"cd,e\n").ok());
}

TEST(ParseCsvTest, EmptyDocumentHasNoRows) {
  auto parsed = ParseCsv("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().empty());
}

TEST(CsvWriterTest, WritesRowsWithNewlines) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.WriteRow({"a", "b"});
  writer.WriteRow({"c"});
  EXPECT_EQ(out.str(), "a,b\nc\n");
  EXPECT_EQ(writer.rows_written(), 2u);
}

}  // namespace
}  // namespace lockdoc
