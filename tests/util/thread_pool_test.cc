#include "src/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(ThreadPoolTest, ZeroItemsIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, SingleItemRunsInline) {
  ThreadPool pool(4);
  std::vector<int> slots(1, 0);
  pool.ParallelFor(1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      slots[i] = 1;
    }
  });
  EXPECT_EQ(slots[0], 1);
}

TEST(ThreadPoolTest, PoolOfOneRunsSerially) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<size_t> slots(100, 0);
  pool.ParallelFor(slots.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      slots[i] = i + 1;
    }
  });
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], i + 1);
  }
}

TEST(ThreadPoolTest, EveryIndexVisitedExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10007;  // Prime, so chunks never divide it evenly.
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(1000, [&](size_t begin, size_t end) {
      uint64_t local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += i;
      }
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 1000ull * 999 / 2);
  }
}

// The determinism contract: per-index slot writes produce identical output
// at every pool size.
TEST(ThreadPoolTest, SlotOutputsIdenticalAcrossPoolSizes) {
  constexpr size_t kN = 4096;
  auto run = [](size_t threads) {
    ThreadPool pool(threads);
    std::vector<uint64_t> slots(kN);
    pool.ParallelFor(kN, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        slots[i] = i * 2654435761u;
      }
    });
    return slots;
  };
  std::vector<uint64_t> serial = run(1);
  for (size_t threads : {2, 4, 8}) {
    EXPECT_EQ(run(threads), serial) << threads << " threads";
  }
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool pool;  // 0 = DefaultThreadCount.
  EXPECT_EQ(pool.thread_count(), ThreadPool::DefaultThreadCount());
}

TEST(ThreadPoolTest, StressManySmallJobs) {
  ThreadPool pool(8);
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.ParallelFor(17, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200ull * 17);
}

}  // namespace
}  // namespace lockdoc
