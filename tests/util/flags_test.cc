#include "src/util/flags.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

FlagSet ParseOk(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  FlagSet flags;
  std::string error;
  EXPECT_TRUE(flags.Parse(static_cast<int>(args.size()), args.data(), &error)) << error;
  return flags;
}

TEST(FlagsTest, EqualsForm) {
  FlagSet flags = ParseOk({"--ops=500", "--name=test"});
  EXPECT_EQ(flags.GetUint64("ops", 0), 500u);
  EXPECT_EQ(flags.GetString("name", ""), "test");
}

TEST(FlagsTest, SpaceSeparatedForm) {
  FlagSet flags = ParseOk({"--ops", "500"});
  EXPECT_EQ(flags.GetUint64("ops", 0), 500u);
}

TEST(FlagsTest, BareBooleanFlag) {
  FlagSet flags = ParseOk({"--verbose"});
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_TRUE(flags.Has("verbose"));
  EXPECT_FALSE(flags.Has("quiet"));
}

TEST(FlagsTest, BoolFalseValues) {
  FlagSet flags = ParseOk({"--a=false", "--b=0", "--c=true"});
  EXPECT_FALSE(flags.GetBool("a", true));
  EXPECT_FALSE(flags.GetBool("b", true));
  EXPECT_TRUE(flags.GetBool("c", false));
}

TEST(FlagsTest, DefaultsWhenAbsentOrMalformed) {
  FlagSet flags = ParseOk({"--n=notanumber"});
  EXPECT_EQ(flags.GetUint64("n", 7), 7u);
  EXPECT_EQ(flags.GetUint64("missing", 9), 9u);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 0.5), 0.5);
}

TEST(FlagsTest, DoubleValues) {
  FlagSet flags = ParseOk({"--tac=0.95"});
  EXPECT_DOUBLE_EQ(flags.GetDouble("tac", 0.0), 0.95);
}

TEST(FlagsTest, PositionalArguments) {
  FlagSet flags = ParseOk({"input.trace", "--ops=5", "other"});
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"input.trace", "other"}));
}

TEST(FlagsTest, DoubleDashTerminatesFlags) {
  FlagSet flags = ParseOk({"--a=1", "--", "--not-a-flag"});
  EXPECT_EQ(flags.positional(), (std::vector<std::string>{"--not-a-flag"}));
}

TEST(FlagsTest, EmptyNameIsError) {
  const char* args[] = {"prog", "--=x"};
  FlagSet flags;
  std::string error;
  EXPECT_FALSE(flags.Parse(2, args, &error));
  EXPECT_FALSE(error.empty());
}

TEST(FlagsTest, EmptyValueViaEquals) {
  FlagSet flags = ParseOk({"--name="});
  EXPECT_TRUE(flags.Has("name"));
  EXPECT_EQ(flags.GetString("name", "default"), "");
}

TEST(FlagsTest, NamesAreSortedAndSkipPositionals) {
  FlagSet flags = ParseOk({"input.trace", "--zeta=1", "--alpha", "--mid", "5"});
  EXPECT_EQ(flags.names(), (std::vector<std::string>{"alpha", "mid", "zeta"}));
  EXPECT_TRUE(ParseOk({"positional-only"}).names().empty());
}

}  // namespace
}  // namespace lockdoc
