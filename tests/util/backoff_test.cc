// Deterministic retry schedule: the backoff curve is a pure function of the
// policy, and RetryWithBackoff stops at the first success or the attempt
// cap. A recorded sleeper keeps the tests off the wall clock.
#include "src/util/backoff.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

namespace lockdoc {
namespace {

TEST(BackoffTest, DelayScheduleIsExponentialAndCapped) {
  BackoffPolicy policy;  // base 10, multiplier 4, cap 250.
  EXPECT_EQ(BackoffDelayMs(policy, 1), 10u);
  EXPECT_EQ(BackoffDelayMs(policy, 2), 40u);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 160u);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 250u);  // 640 hits the cap.
  EXPECT_EQ(BackoffDelayMs(policy, 10), 250u);
}

TEST(BackoffTest, DelayScheduleHonorsCustomPolicy) {
  BackoffPolicy policy;
  policy.base_delay_ms = 3;
  policy.multiplier = 2;
  policy.max_delay_ms = 20;
  EXPECT_EQ(BackoffDelayMs(policy, 1), 3u);
  EXPECT_EQ(BackoffDelayMs(policy, 2), 6u);
  EXPECT_EQ(BackoffDelayMs(policy, 3), 12u);
  EXPECT_EQ(BackoffDelayMs(policy, 4), 20u);
}

TEST(BackoffTest, FirstSuccessSkipsAllSleeps) {
  std::vector<uint64_t> sleeps;
  int calls = 0;
  Status status = RetryWithBackoff(
      BackoffPolicy{},
      [&] {
        ++calls;
        return Status::Ok();
      },
      [&](uint64_t ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(BackoffTest, TransientFailureRecoversAfterOneSleep) {
  std::vector<uint64_t> sleeps;
  int calls = 0;
  Status status = RetryWithBackoff(
      BackoffPolicy{},
      [&] {
        ++calls;
        return calls < 2 ? Status::Error("transient") : Status::Ok();
      },
      [&](uint64_t ms) { sleeps.push_back(ms); });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 2);
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_EQ(sleeps[0], 10u);
}

TEST(BackoffTest, ExhaustionReturnsLastFailure) {
  std::vector<uint64_t> sleeps;
  int calls = 0;
  Status status = RetryWithBackoff(
      BackoffPolicy{},
      [&] {
        ++calls;
        return Status::Error("attempt " + std::to_string(calls));
      },
      [&](uint64_t ms) { sleeps.push_back(ms); });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "attempt 3");
  EXPECT_EQ(calls, 3);
  // Sleeps happen between attempts only: 2 sleeps for 3 attempts.
  ASSERT_EQ(sleeps.size(), 2u);
  EXPECT_EQ(sleeps[0], 10u);
  EXPECT_EQ(sleeps[1], 40u);
}

TEST(BackoffTest, SingleAttemptPolicyDisablesRetrying) {
  BackoffPolicy policy;
  policy.max_attempts = 1;
  std::vector<uint64_t> sleeps;
  int calls = 0;
  Status status = RetryWithBackoff(
      policy,
      [&] {
        ++calls;
        return Status::Error("nope");
      },
      [&](uint64_t ms) { sleeps.push_back(ms); });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

}  // namespace
}  // namespace lockdoc
