// Hardened file I/O: the regression suite for short reads, partial writes,
// and atomic publication. The pipe-based tests reproduce exactly the
// conditions that broke the old std::fstream paths — a reader that gets
// fewer bytes than asked must loop, not truncate.
#include "src/util/file_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "gtest/gtest.h"

namespace lockdoc {
namespace {

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "lockdoc_file_io_" + name;
}

TEST(FileIoTest, ReadFdLoopsShortReadsOnPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // A pipe writer dribbling small chunks guarantees the reader sees short
  // reads: every read() returns at most one chunk, never the whole payload.
  std::string payload;
  for (int i = 0; i < 1000; ++i) {
    payload += "chunk-" + std::to_string(i) + ";";
  }
  std::thread writer([&] {
    size_t offset = 0;
    while (offset < payload.size()) {
      size_t n = std::min<size_t>(113, payload.size() - offset);
      ASSERT_EQ(::write(fds[1], payload.data() + offset, n), static_cast<ssize_t>(n));
      offset += n;
    }
    ::close(fds[1]);
  });
  auto read = ReadFdToString(fds[0], "pipe");
  writer.join();
  ::close(fds[0]);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), payload);
}

TEST(FileIoTest, WriteAllLoopsPartialWritesOnPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  // 1 MiB through a 64 KiB pipe buffer: write() cannot take it in one call.
  std::string payload(1 << 20, 'x');
  for (size_t i = 0; i < payload.size(); i += 4096) {
    payload[i] = static_cast<char>('a' + (i / 4096) % 26);
  }
  std::string received;
  std::thread reader([&] {
    char buffer[8192];
    ssize_t n;
    while ((n = ::read(fds[0], buffer, sizeof(buffer))) > 0) {
      received.append(buffer, static_cast<size_t>(n));
    }
  });
  Status status = WriteAllToFd(fds[1], payload, "pipe");
  ::close(fds[1]);
  reader.join();
  ::close(fds[0]);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(received, payload);
}

TEST(FileIoTest, ReadFileToStringHandlesProcPseudoFiles) {
  // /proc files stat as size 0 but stream real content; a size-based
  // preallocation-and-single-read would come back empty.
  auto read = ReadFileToString("/proc/self/status");
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_NE(read.value().find("Pid:"), std::string::npos);
}

TEST(FileIoTest, WriteFileAtomicRoundTrip) {
  std::string path = TestPath("atomic.bin");
  std::string bytes = "first\0version", updated = "second";
  bytes.resize(13);  // Keep the embedded NUL.
  ASSERT_TRUE(WriteFileAtomic(path, bytes).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), bytes);
  // Atomic replace of an existing file.
  ASSERT_TRUE(WriteFileAtomic(path, updated).ok());
  read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), updated);
  auto size = FileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), updated.size());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(FileIoTest, WriteFileAtomicLeavesNoTempOnFailure) {
  // Unwritable destination directory: the write must fail cleanly, and the
  // target must not exist.
  std::string path = TestPath("no_such_dir") + "/file.bin";
  Status status = WriteFileAtomic(path, "bytes");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(FileSize(path).ok());
}

TEST(FileIoTest, FileSizeReportsMissingAsError) {
  auto size = FileSize(TestPath("missing.bin"));
  EXPECT_FALSE(size.ok());
}

TEST(FileIoTest, RemoveFileIfExistsIsIdempotent) {
  std::string path = TestPath("removable.bin");
  ASSERT_TRUE(WriteFileAtomic(path, "x").ok());
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
  // Second removal: ENOENT is success by contract.
  EXPECT_TRUE(RemoveFileIfExists(path).ok());
}

TEST(FileIoTest, ReadMissingFileIsError) {
  auto read = ReadFileToString(TestPath("absent.bin"));
  EXPECT_FALSE(read.ok());
}

}  // namespace
}  // namespace lockdoc
