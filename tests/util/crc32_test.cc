#include "src/util/crc32.h"

#include <string>

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "frame payload with some entropy 0123456789";
  uint32_t whole = Crc32(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32Update(0, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data(64, '\x5a');
  uint32_t clean = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = data;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_NE(Crc32(mutated), clean);
    }
  }
}

}  // namespace
}  // namespace lockdoc
