#include "src/util/crc32.h"

#include <string>

#include <gtest/gtest.h>

#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace lockdoc {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(Crc32(""), 0x00000000u);
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32("The quick brown fox jumps over the lazy dog"), 0x414FA339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  std::string data = "frame payload with some entropy 0123456789";
  uint32_t whole = Crc32(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32Update(0, data.data(), split);
    crc = Crc32Update(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::string data(64, '\x5a');
  uint32_t clean = Crc32(data);
  for (size_t byte = 0; byte < data.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = data;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      EXPECT_NE(Crc32(mutated), clean);
    }
  }
}

TEST(Crc32Test, UnalignedStartsMatchAlignedResult) {
  // The slice-by-8 inner loop peels unaligned leading bytes; the CRC must
  // not depend on where in memory the buffer happens to live.
  std::string data(1024 + 16, '\0');
  Rng rng(11);
  for (char& c : data) {
    c = static_cast<char>(rng.Next());
  }
  for (size_t shift = 0; shift < 8; ++shift) {
    std::string_view window(data.data() + shift, 1024);
    uint32_t direct = Crc32(window);
    uint32_t incremental = 0;
    for (size_t pos = 0; pos < window.size(); pos += 7) {
      incremental = Crc32Update(incremental, window.data() + pos,
                                std::min<size_t>(7, window.size() - pos));
    }
    EXPECT_EQ(direct, incremental) << "shift " << shift;
  }
}

TEST(Crc32Test, EverySizeAcrossTheSimdThresholdMatchesBitwiseReference) {
  // The bulk path switches implementation (table loop vs carry-less
  // multiply folding) at an internal size threshold. Pin every length
  // through and well past it against a first-principles bit-at-a-time CRC
  // so no vectorized variant can diverge on any size or tail shape.
  auto reference = [](std::string_view bytes) {
    uint32_t crc = ~0u;
    for (unsigned char byte : bytes) {
      crc ^= byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
      }
    }
    return ~crc;
  };
  Rng rng(17);
  std::string data(1024, '\0');
  for (char& c : data) {
    c = static_cast<char>(rng.Next());
  }
  for (size_t size = 0; size <= data.size(); ++size) {
    std::string_view window(data.data(), size);
    ASSERT_EQ(Crc32(window), reference(window)) << "size " << size;
  }
}

TEST(Crc32Test, CombineMatchesConcatenation) {
  Rng rng(23);
  std::string a(12345, '\0');
  std::string b(54321, '\0');
  for (char& c : a) {
    c = static_cast<char>(rng.Next());
  }
  for (char& c : b) {
    c = static_cast<char>(rng.Next());
  }
  uint32_t whole = Crc32(a + b);
  EXPECT_EQ(Crc32Combine(Crc32(a), Crc32(b), b.size()), whole);
  // Degenerate pieces.
  EXPECT_EQ(Crc32Combine(Crc32(a), Crc32(""), 0), Crc32(a));
  EXPECT_EQ(Crc32Combine(Crc32(""), Crc32(b), b.size()), Crc32(b));
}

TEST(Crc32Test, CombineChainsAcrossManyChunks) {
  Rng rng(31);
  std::string data(100000, '\0');
  for (char& c : data) {
    c = static_cast<char>(rng.Next());
  }
  uint32_t whole = Crc32(data);
  for (size_t chunk : {1u, 13u, 4096u, 99999u}) {
    uint32_t crc = 0;
    bool first = true;
    for (size_t pos = 0; pos < data.size(); pos += chunk) {
      size_t len = std::min(chunk, data.size() - pos);
      uint32_t piece = Crc32(data.data() + pos, len);
      crc = first ? piece : Crc32Combine(crc, piece, len);
      first = false;
    }
    EXPECT_EQ(crc, whole) << "chunk " << chunk;
  }
}

TEST(Crc32Test, ParallelMatchesSerialAtAnyThreadCount) {
  Rng rng(47);
  // Larger than the parallel cutoff so the pooled path actually runs.
  std::string data(5 << 20, '\0');
  for (char& c : data) {
    c = static_cast<char>(rng.Next());
  }
  uint32_t serial = Crc32(data);
  EXPECT_EQ(Crc32Parallel(data.data(), data.size(), nullptr), serial);
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(Crc32Parallel(data.data(), data.size(), &pool), serial)
        << threads << " threads";
  }
}

}  // namespace
}  // namespace lockdoc
