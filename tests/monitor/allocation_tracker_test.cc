#include "src/monitor/allocation_tracker.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

TraceEvent Alloc(Address addr, uint32_t size, TypeId type = 1, uint64_t seq = 0) {
  TraceEvent e;
  e.kind = EventKind::kAlloc;
  e.addr = addr;
  e.size = size;
  e.type = type;
  e.seq = seq;
  return e;
}

TraceEvent Free(Address addr, uint64_t seq = 0) {
  TraceEvent e;
  e.kind = EventKind::kFree;
  e.addr = addr;
  e.seq = seq;
  return e;
}

TEST(AllocationTrackerTest, FindHitsInterior) {
  AllocationTracker tracker;
  AllocationId id = tracker.OnAlloc(Alloc(0x1000, 64));
  EXPECT_EQ(tracker.Find(0x1000), id);
  EXPECT_EQ(tracker.Find(0x103f), id);
  EXPECT_FALSE(tracker.Find(0x1040).has_value());
  EXPECT_FALSE(tracker.Find(0xfff).has_value());
}

TEST(AllocationTrackerTest, FreeEndsLifetime) {
  AllocationTracker tracker;
  AllocationId id = tracker.OnAlloc(Alloc(0x1000, 64, 1, 5));
  auto freed = tracker.OnFree(Free(0x1000, 9));
  ASSERT_TRUE(freed.has_value());
  EXPECT_EQ(*freed, id);
  EXPECT_FALSE(tracker.Find(0x1000).has_value());
  EXPECT_EQ(tracker.info(id).alloc_seq, 5u);
  EXPECT_EQ(tracker.info(id).free_seq, 9u);
}

TEST(AllocationTrackerTest, UntrackedFreeIsTolerated) {
  AllocationTracker tracker;
  EXPECT_FALSE(tracker.OnFree(Free(0xdead)).has_value());
}

TEST(AllocationTrackerTest, AddressReuseCreatesNewIdentity) {
  AllocationTracker tracker;
  AllocationId first = tracker.OnAlloc(Alloc(0x1000, 64));
  tracker.OnFree(Free(0x1000));
  AllocationId second = tracker.OnAlloc(Alloc(0x1000, 64));
  EXPECT_NE(first, second);
  EXPECT_EQ(tracker.Find(0x1010), second);
  EXPECT_EQ(tracker.allocation_count(), 2u);
}

TEST(AllocationTrackerTest, MultipleLiveAllocationsResolved) {
  AllocationTracker tracker;
  AllocationId a = tracker.OnAlloc(Alloc(0x1000, 0x40));
  AllocationId b = tracker.OnAlloc(Alloc(0x2000, 0x80, 2));
  EXPECT_EQ(tracker.Find(0x1020), a);
  EXPECT_EQ(tracker.Find(0x2070), b);
  EXPECT_FALSE(tracker.Find(0x1800).has_value());
  EXPECT_EQ(tracker.info(b).type, TypeId{2});
}

TEST(AllocationTrackerTest, LiveAllocationHasOpenFreeSeq) {
  AllocationTracker tracker;
  AllocationId id = tracker.OnAlloc(Alloc(0x1000, 16));
  EXPECT_EQ(tracker.info(id).free_seq, UINT64_MAX);
}

}  // namespace
}  // namespace lockdoc
