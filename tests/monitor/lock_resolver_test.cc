#include "src/monitor/lock_resolver.h"

#include <gtest/gtest.h>

namespace lockdoc {
namespace {

class LockResolverTest : public ::testing::Test {
 protected:
  LockResolverTest() {
    auto layout = std::make_unique<TypeLayout>("obj");
    data_ = layout->AddMember("data", 8);
    lock_ = layout->AddLockMember("lock", LockType::kSpinlock);
    type_ = registry_.Register(std::move(layout));
    resolver_ = std::make_unique<LockResolver>(&registry_, &tracker_);
  }

  TraceEvent Acquire(Address addr, LockType lock_type = LockType::kSpinlock) {
    TraceEvent e;
    e.kind = EventKind::kLockAcquire;
    e.addr = addr;
    e.lock_type = lock_type;
    return e;
  }

  TypeRegistry registry_;
  AllocationTracker tracker_;
  std::unique_ptr<LockResolver> resolver_;
  TypeId type_ = kInvalidTypeId;
  MemberIndex data_ = kInvalidMember;
  MemberIndex lock_ = kInvalidMember;
};

TEST_F(LockResolverTest, DeclaredStaticLockKeepsName) {
  TraceEvent def;
  def.kind = EventKind::kStaticLockDef;
  def.addr = 0x100;
  def.lock_type = LockType::kMutex;
  def.name = 42;
  resolver_->OnStaticLockDef(def);

  LockInstanceId id = resolver_->Resolve(Acquire(0x100, LockType::kMutex));
  const LockInstance& instance = resolver_->instance(id);
  EXPECT_TRUE(instance.is_static);
  EXPECT_EQ(instance.name, StringId{42});
  EXPECT_EQ(instance.type, LockType::kMutex);
}

TEST_F(LockResolverTest, UndeclaredStaticLockIsAnonymous) {
  LockInstanceId id = resolver_->Resolve(Acquire(0x9999));
  const LockInstance& instance = resolver_->instance(id);
  EXPECT_TRUE(instance.is_static);
  EXPECT_EQ(instance.name, StringId{0});
}

TEST_F(LockResolverTest, RepeatedResolveReturnsSameInstance) {
  EXPECT_EQ(resolver_->Resolve(Acquire(0x100)), resolver_->Resolve(Acquire(0x100)));
  EXPECT_EQ(resolver_->instance_count(), 1u);
}

TEST_F(LockResolverTest, EmbeddedLockResolvedToOwnerMember) {
  TraceEvent alloc;
  alloc.kind = EventKind::kAlloc;
  alloc.addr = 0x1000;
  alloc.size = registry_.layout(type_).size();
  alloc.type = type_;
  AllocationId owner = tracker_.OnAlloc(alloc);

  Address lock_addr = 0x1000 + registry_.layout(type_).member(lock_).offset;
  LockInstanceId id = resolver_->Resolve(Acquire(lock_addr));
  const LockInstance& instance = resolver_->instance(id);
  EXPECT_FALSE(instance.is_static);
  EXPECT_EQ(instance.owner, owner);
  EXPECT_EQ(instance.owner_type, type_);
  EXPECT_EQ(instance.owner_member, lock_);
}

TEST_F(LockResolverTest, AddressReuseYieldsFreshInstance) {
  TraceEvent alloc;
  alloc.kind = EventKind::kAlloc;
  alloc.addr = 0x1000;
  alloc.size = registry_.layout(type_).size();
  alloc.type = type_;
  tracker_.OnAlloc(alloc);

  Address lock_addr = 0x1000 + registry_.layout(type_).member(lock_).offset;
  LockInstanceId first = resolver_->Resolve(Acquire(lock_addr));

  TraceEvent free_event;
  free_event.kind = EventKind::kFree;
  free_event.addr = 0x1000;
  tracker_.OnFree(free_event);
  tracker_.OnAlloc(alloc);  // Same address, new lifetime.

  LockInstanceId second = resolver_->Resolve(Acquire(lock_addr));
  EXPECT_NE(first, second);
}

}  // namespace
}  // namespace lockdoc
