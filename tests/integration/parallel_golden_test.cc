// The determinism contract, end to end: every user-visible analysis artifact
// (full report, generated documentation, rule checking, violations) must be
// byte-identical at any --jobs value. Runs the built-in workloads — including
// a damaged trace read back through salvage — at 1, 2, and 8 jobs and
// compares the rendered output against the serial run.
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/doc_generator.h"
#include "src/core/pipeline.h"
#include "src/core/report.h"
#include "src/core/rule_checker.h"
#include "src/core/violation_finder.h"
#include "src/trace/trace_io.h"
#include "src/util/string_util.h"
#include "src/util/thread_pool.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

// Renders everything downstream of a trace into one deterministic blob.
std::string AnalyzeToText(const Trace& trace, const TypeRegistry& registry, size_t jobs) {
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  options.jobs = jobs;
  PipelineResult result = RunPipeline(trace, registry, options);
  ThreadPool pool(jobs);

  std::string out;

  // 1. The full report (mining summary, violations, lock order, modes,
  //    generated documentation).
  ReportOptions report_options;
  report_options.documented_rules_text = VfsKernel::DocumentedRulesText();
  report_options.full_documentation = true;
  out += RenderReport(registry, result, report_options);

  // 2. Rule checking against the documented rules.
  auto rules = RuleSet::ParseText(VfsKernel::DocumentedRulesText());
  if (rules.ok()) {
    RuleChecker checker(&registry, &result.snapshot.observations);
    for (const RuleCheckResult& r : checker.CheckAll(rules.value(), &pool)) {
      out += StrFormat("%s %s sa=%llu total=%llu sr=%.6f\n",
                       std::string(RuleVerdictSymbol(r.verdict)).c_str(),
                       r.rule.ToString().c_str(), static_cast<unsigned long long>(r.sa),
                       static_cast<unsigned long long>(r.total), r.sr);
    }
  }

  // 3. Violations, raw and as rendered examples.
  ViolationFinder finder(&result.snapshot.db, &registry, &result.snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(result.rules, &pool);
  for (const Violation& v : violations) {
    out += StrFormat("violation rule=%s held=%s events=%zu first=%llu\n",
                     LockSeqToString(v.rule).c_str(), LockSeqToString(v.held).c_str(),
                     v.seqs.size(),
                     static_cast<unsigned long long>(v.seqs.empty() ? 0 : v.seqs[0]));
  }
  for (const ViolationExample& ex : finder.Examples(violations, 25)) {
    out += StrFormat("example %s [%s] rule=%s held=%s at=%s stack=%s events=%llu\n",
                     ex.member.c_str(), ex.access.c_str(), ex.rule.c_str(), ex.held.c_str(),
                     ex.location.c_str(), ex.stack.c_str(),
                     static_cast<unsigned long long>(ex.events));
  }

  // 4. Documentation for every population, comment and rule-spec form.
  DocGenOptions doc_options;
  doc_options.include_support = true;
  DocGenerator generator(&registry, doc_options);
  for (TypeId type = 0; type < registry.type_count(); ++type) {
    std::vector<SubclassId> subclasses = {kNoSubclass};
    for (SubclassId sub : registry.SubclassesOf(type)) {
      subclasses.push_back(sub);
    }
    for (SubclassId sub : subclasses) {
      out += generator.Generate(type, sub, result.rules);
      out += generator.GenerateRuleSpec(type, sub, result.rules);
    }
  }
  return out;
}

void ExpectIdenticalAcrossJobCounts(const Trace& trace, const TypeRegistry& registry) {
  std::string serial = AnalyzeToText(trace, registry, 1);
  ASSERT_FALSE(serial.empty());
  for (size_t jobs : {2, 8}) {
    std::string parallel = AnalyzeToText(trace, registry, jobs);
    ASSERT_EQ(parallel, serial) << "output diverged at jobs=" << jobs;
  }
}

TEST(ParallelGoldenTest, StandardMixIsByteIdenticalAcrossJobCounts) {
  MixOptions mix;
  mix.ops = 8000;
  mix.seed = 7;
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});
  ExpectIdenticalAcrossJobCounts(sim.trace, *sim.registry);
}

TEST(ParallelGoldenTest, CleanRunIsByteIdenticalAcrossJobCounts) {
  MixOptions mix;
  mix.ops = 6000;
  mix.seed = 11;
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan::Clean());
  ExpectIdenticalAcrossJobCounts(sim.trace, *sim.registry);
}

// A truncated archive read back through salvage exercises the importer's
// EOF path (transactions forced closed at end of trace) under parallelism.
TEST(ParallelGoldenTest, SalvagedTruncatedTraceIsByteIdenticalAcrossJobCounts) {
  MixOptions mix;
  mix.ops = 8000;
  mix.seed = 13;
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});

  std::string path = ::testing::TempDir() + "/parallel_golden_truncated.trace";
  ASSERT_TRUE(WriteTraceToFile(sim.trace, path).ok());
  uintmax_t size = std::filesystem::file_size(path);
  ASSERT_GT(size, 4096u);
  std::filesystem::resize_file(path, size - size / 3);  // Cut mid-record.

  TraceReadOptions read_options;
  read_options.salvage = true;
  TraceReadReport report;
  auto salvaged = ReadTraceFromFile(path, read_options, &report);
  ASSERT_TRUE(salvaged.ok());
  ASSERT_GT(salvaged.value().size(), 0u);
  ASSERT_LT(salvaged.value().size(), sim.trace.size());

  ExpectIdenticalAcrossJobCounts(salvaged.value(), *sim.registry);
}

}  // namespace
}  // namespace lockdoc
