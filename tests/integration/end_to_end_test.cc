// Full-pipeline integration: simulate -> archive/restore trace -> import ->
// derive -> check documentation -> find violations, asserting the
// cross-stage invariants the paper's workflow depends on.
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/core/rule_checker.h"
#include "src/core/violation_finder.h"
#include "src/db/schema.h"
#include "src/trace/trace_io.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    MixOptions mix;
    mix.ops = 20000;
    mix.seed = 2;
    sim_ = new SimulationResult(SimulateKernelRun(mix, FaultPlan{}));
    PipelineOptions options;
    options.filter = VfsKernel::MakeFilterConfig();
    result_ = new PipelineResult(RunPipeline(sim_->trace, *sim_->registry, options));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete sim_;
    result_ = nullptr;
    sim_ = nullptr;
  }

  static SimulationResult* sim_;
  static PipelineResult* result_;
};

SimulationResult* EndToEndTest::sim_ = nullptr;
PipelineResult* EndToEndTest::result_ = nullptr;

TEST_F(EndToEndTest, ArchivedTraceAnalyzesIdentically) {
  std::ostringstream out;
  WriteTrace(sim_->trace, out);
  std::istringstream in(out.str());
  auto restored = ReadTrace(in);
  ASSERT_TRUE(restored.ok());

  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  PipelineResult replay = RunPipeline(restored.value(), *sim_->registry, options);
  EXPECT_EQ(replay.snapshot.import_stats.accesses_kept, result_->snapshot.import_stats.accesses_kept);
  EXPECT_EQ(replay.snapshot.import_stats.txns, result_->snapshot.import_stats.txns);
  ASSERT_EQ(replay.rules.size(), result_->rules.size());
  for (size_t i = 0; i < replay.rules.size(); ++i) {
    EXPECT_EQ(LockSeqToString(replay.rules[i].winner->locks),
              LockSeqToString(result_->rules[i].winner->locks));
    EXPECT_EQ(replay.rules[i].total, result_->rules[i].total);
  }
}

TEST_F(EndToEndTest, EveryKeptAccessBelongsToExactlyOneTransaction) {
  const Table& accesses = result_->snapshot.db.table(LockDocSchema::kAccesses);
  const Table& txns = result_->snapshot.db.table(LockDocSchema::kTxns);
  const size_t kTxnCol = accesses.ColumnIndex("txn_id");
  const size_t kSeqCol = accesses.ColumnIndex("seq");
  const size_t kStart = txns.ColumnIndex("start_seq");
  const size_t kEnd = txns.ColumnIndex("end_seq");
  size_t checked = 0;
  accesses.Scan([&](RowId row) {
    uint64_t txn = accesses.GetUint64(row, kTxnCol);
    if (txn == kDbNull) {
      return true;
    }
    uint64_t seq = accesses.GetUint64(row, kSeqCol);
    EXPECT_GE(seq, txns.GetUint64(txn, kStart));
    uint64_t end = txns.GetUint64(txn, kEnd);
    if (end != kDbNull) {
      EXPECT_LE(seq, end);
    }
    ++checked;
    return checked < 5000;  // A large sample is enough.
  });
  EXPECT_GT(checked, 1000u);
}

TEST_F(EndToEndTest, TransactionLockListsAreComplete) {
  const Table& txns = result_->snapshot.db.table(LockDocSchema::kTxns);
  const Table& txn_locks = result_->snapshot.db.table(LockDocSchema::kTxnLocks);
  const size_t kNLocks = txns.ColumnIndex("n_locks");
  const size_t kTlTxn = txn_locks.ColumnIndex("txn_id");
  for (uint64_t txn = 0; txn < std::min<uint64_t>(txns.row_count(), 2000); ++txn) {
    EXPECT_EQ(txn_locks.LookupEqual(kTlTxn, txn).size(), txns.GetUint64(txn, kNLocks));
  }
}

TEST_F(EndToEndTest, ObservationTotalsConsistentWithSupports) {
  for (const DerivationResult& rule : result_->rules) {
    ASSERT_TRUE(rule.winner.has_value());
    EXPECT_LE(rule.winner->sa, rule.total);
    EXPECT_GE(rule.winner->sr, 0.9 - 1e-9);  // Winner cleared the threshold.
    EXPECT_EQ(rule.total,
              result_->snapshot.observations.CountObservations(rule.key, rule.access));
  }
}

TEST_F(EndToEndTest, DocumentedRulesVerdictsMatchPaperShape) {
  auto rules = RuleSet::ParseText(VfsKernel::DocumentedRulesText());
  ASSERT_TRUE(rules.ok());
  RuleChecker checker(sim_->registry.get(), &result_->snapshot.observations);
  auto summaries = RuleChecker::Summarize(checker.CheckAll(rules.value()));
  ASSERT_EQ(summaries.size(), 5u);
  uint64_t documented = 0;
  for (const RuleCheckSummary& summary : summaries) {
    documented += summary.documented;
    // Every type has at least one imperfect rule (the paper's headline:
    // only ~53 % of documented rules are consistently followed).
    EXPECT_GT(summary.ambivalent + summary.incorrect + summary.unobserved, 0u)
        << summary.type_name;
  }
  EXPECT_EQ(documented, 142u);
}

TEST_F(EndToEndTest, ViolationsReferenceRealTraceEvents) {
  ViolationFinder finder(&result_->snapshot.db, sim_->registry.get(), &result_->snapshot.observations);
  std::vector<Violation> violations = finder.FindAll(result_->rules);
  ASSERT_FALSE(violations.empty());
  for (const Violation& violation : violations) {
    EXPECT_FALSE(IsSubsequence(violation.rule, violation.held));
    for (uint64_t seq : violation.seqs) {
      ASSERT_LT(seq, sim_->trace.size());
      EXPECT_TRUE(IsMemAccess(sim_->trace.event(seq)));
      EXPECT_EQ(AccessTypeOf(sim_->trace.event(seq)), violation.access);
    }
  }
}

TEST_F(EndToEndTest, KnownInjectedBugsAreFound) {
  ViolationFinder finder(&result_->snapshot.db, sim_->registry.get(), &result_->snapshot.observations);
  auto examples = finder.Examples(finder.FindAll(result_->rules), SIZE_MAX);
  bool i_hash_at_507 = false;
  bool d_subdirs_rcu = false;
  for (const ViolationExample& ex : examples) {
    if (ex.location == "fs/inode.c:507" && ex.member.find("i_hash") != std::string::npos) {
      i_hash_at_507 = true;
    }
    if (ex.location == "fs/libfs.c:104" && ex.member == "dentry.d_subdirs") {
      EXPECT_NE(ex.held.find("rcu"), std::string::npos);
      d_subdirs_rcu = true;
    }
  }
  EXPECT_TRUE(i_hash_at_507);
  EXPECT_TRUE(d_subdirs_rcu);
}

TEST_F(EndToEndTest, DatabaseCsvRoundTrip) {
  std::string dir = ::testing::TempDir() + "/lockdoc_e2e_db";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(result_->snapshot.db.ExportDirectory(dir).ok());

  Database restored;
  CreateLockDocSchema(&restored);
  ASSERT_TRUE(restored.ImportDirectory(dir).ok());
  EXPECT_EQ(restored.table(LockDocSchema::kAccesses).row_count(),
            result_->snapshot.db.table(LockDocSchema::kAccesses).row_count());

  ObservationStore replay = ExtractObservations(restored, *sim_->registry);
  EXPECT_EQ(replay.groups().size(), result_->snapshot.observations.groups().size());
}

}  // namespace
}  // namespace lockdoc
