// The import-once / analyze-many contract on the full VFS workload:
// snapshot bytes must be identical no matter how many threads built the
// analysis, and analyzing a loaded .lockdb must produce byte-identical
// user-visible output to analyzing the original trace.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/pipeline.h"
#include "src/core/report.h"
#include "src/core/snapshot.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/workloads.h"

namespace lockdoc {
namespace {

PipelineOptions VfsOptions(size_t jobs) {
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  options.jobs = jobs;
  return options;
}

std::string RenderRules(const std::vector<DerivationResult>& rules) {
  std::string out;
  for (const DerivationResult& rule : rules) {
    out += StrFormat("%llu/%u/%u [%d] total=%llu winner=%s\n",
                     static_cast<unsigned long long>(rule.key.type),
                     static_cast<unsigned>(rule.key.subclass),
                     static_cast<unsigned>(rule.key.member), static_cast<int>(rule.access),
                     static_cast<unsigned long long>(rule.total),
                     rule.winner ? LockSeqToString(rule.winner->locks).c_str() : "-");
  }
  return out;
}

TEST(SnapshotRoundTripTest, SnapshotBytesAreIdenticalAcrossJobCounts) {
  MixOptions mix;
  mix.ops = 6000;
  mix.seed = 7;
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});

  std::string serial = SerializeSnapshot(
      BuildSnapshot(sim.trace, *sim.registry, VfsOptions(1)), *sim.registry);
  ASSERT_FALSE(serial.empty());
  for (size_t jobs : {2, 8}) {
    std::string parallel = SerializeSnapshot(
        BuildSnapshot(sim.trace, *sim.registry, VfsOptions(jobs)), *sim.registry);
    ASSERT_EQ(parallel, serial) << "snapshot bytes diverged at jobs=" << jobs;
  }
}

TEST(SnapshotRoundTripTest, AnalysisFromSnapshotMatchesAnalysisFromTrace) {
  MixOptions mix;
  mix.ops = 6000;
  mix.seed = 9;
  SimulationResult sim = SimulateKernelRun(mix, FaultPlan{});

  // Trace path: build + analyze in one go.
  AnalysisSnapshot built = BuildSnapshot(sim.trace, *sim.registry, VfsOptions(1));
  std::vector<DerivationResult> trace_rules = AnalyzeSnapshot(built, VfsOptions(1));
  std::string bytes = SerializeSnapshot(built, *sim.registry);

  ReportOptions report_options;
  report_options.documented_rules_text = VfsKernel::DocumentedRulesText();
  report_options.full_documentation = true;

  PipelineResult from_trace;
  from_trace.snapshot = std::move(built);
  from_trace.rules = trace_rules;
  std::string trace_report = RenderReport(*sim.registry, from_trace, report_options);

  // Snapshot path, at several thread counts: identical rules, identical
  // report, byte for byte.
  for (size_t jobs : {1, 2, 8}) {
    auto loaded = DeserializeSnapshot(bytes, *sim.registry);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    std::vector<DerivationResult> snapshot_rules =
        AnalyzeSnapshot(loaded.value(), VfsOptions(jobs));
    EXPECT_EQ(RenderRules(snapshot_rules), RenderRules(trace_rules)) << "jobs=" << jobs;

    PipelineResult from_snapshot;
    from_snapshot.snapshot = std::move(loaded).value();
    from_snapshot.rules = std::move(snapshot_rules);
    EXPECT_EQ(RenderReport(*sim.registry, from_snapshot, report_options), trace_report)
        << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace lockdoc
