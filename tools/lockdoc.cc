// lockdoc — the command-line front end to the whole pipeline, operating on
// archived trace files and .lockdb analysis snapshots (the paper's ex-post
// analysis workflow, Sec. 3.3: "recorded execution traces can be easily
// archived and analyzed in arbitrary ways").
//
//   lockdoc simulate --out run.trace [--ops N] [--seed S] [--clean]
//                    [--script FILE]
//   lockdoc import run.trace --out db.lockdb
//   lockdoc stats FILE
//   lockdoc derive FILE [--tac 0.9] [--type inode [--subclass ext4]]
//                       [--spec] [--support]
//   lockdoc check FILE [--rules rules.txt]
//   lockdoc violations FILE [--limit N] [--tac 0.9]
//   lockdoc lock-order FILE
//   lockdoc modes FILE [--all]
//   lockdoc diff OLD NEW [--all]
//   lockdoc analyze FILE [--passes check,violations,...] [--baseline OLD]
//                        [--out-dir DIR]
//   lockdoc export-csv FILE --dir DIR
//   lockdoc doctor FILE [--repair fixed.trace]
//
// Every analysis command takes FILE as either a raw trace or a .lockdb
// snapshot written by `lockdoc import`, auto-detected by magic bytes. A
// snapshot skips the import and extraction phases entirely — the
// import-once / analyze-many workflow — and produces byte-identical output
// to analyzing the original trace.
//
// The phase-3 analysis commands (derive, check, violations, lock-order,
// modes, report, diff) are thin shells around the registered AnalysisPasses
// (src/core/analysis_pass.h), all sharing one AnalysisContext. `analyze`
// runs any subset of those passes over a single context: the input is
// loaded once, rules are derived once, the shared indexes are built at most
// once, and each selected pass's output — byte-identical to its standalone
// command — is emitted in pass order (or to per-pass files via --out-dir).
//
// Flags are validated strictly: a flag a command does not accept is a usage
// error (exit 64), not a silent no-op.
//
// `doctor` checks an archived file's health (traces and snapshots): exit
// code 0 means clean, 1 damaged-but-salvageable (for traces, optionally
// rewriting the salvaged content as a fresh v2 file via --repair), 2
// unreadable, 64 usage error. All analysis commands accept --salvage to run
// on a damaged trace's surviving prefix.
//
// Traces must come from the built-in simulated kernel (the type registry is
// part of the contract between tracer and analyzer, as in the paper where
// the kernel's DWARF layout plays that role); snapshots record the
// registry's shape and refuse to load against a different one.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <memory>
#include <sstream>

#include "src/core/analysis_pass.h"
#include "src/core/filter_config.h"
#include "src/core/pipeline.h"
#include "src/core/snapshot.h"
#include "src/db/snapshot.h"
#include "src/report/render.h"
#include "src/serve/service.h"
#include "src/serve/socket.h"
#include "src/serve/spool.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/util/file_io.h"
#include "src/util/flags.h"
#include "src/util/logging.h"
#include "src/util/string_util.h"
#include "src/vfs/mm_kernel.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/script.h"
#include "src/workload/workloads.h"

using namespace lockdoc;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lockdoc <command> [args]\n"
               "commands:\n"
               "  simulate --out FILE [--ops N] [--seed S] [--clean] [--script FILE]\n"
               "           [--workload vfs|mm]\n"
               "  import TRACE --out DB.lockdb\n"
               "  stats FILE\n"
               "  derive FILE [--tac T] [--type NAME [--subclass NAME]] [--spec] [--support]\n"
               "  check FILE [--rules RULES.txt]\n"
               "  violations FILE [--limit N] [--tac T] [--filter-config FILE]\n"
               "  lock-order FILE\n"
               "  modes FILE [--all]\n"
               "  report FILE [--full] [--filter-config FILE]\n"
               "  diff OLD NEW [--all]\n"
               "  analyze FILE [--passes P1,P2,...] [--baseline OLD] [--out-dir DIR]\n"
               "          [--filter-config FILE]\n"
               "  export-csv FILE --dir DIR\n"
               "  doctor FILE [--repair OUT]\n"
               "  serve SPOOL_DIR [--state DIR] [--once] [--poll-ms T]\n"
               "        [--max-resident N] [--max-resident-bytes B]\n"
               "        [--deadline-ms T] [--max-trace-bytes B] [--jobs N]\n"
               "        [--workers N] [--listen HOST:PORT]\n"
               "  query HOST:PORT REQUEST.req\n"
               "FILE is a trace or a .lockdb snapshot (auto-detected by magic);\n"
               "`import` converts the former into the latter so repeated analyses\n"
               "skip the import/extraction phases.\n"
               "`analyze` runs several analysis passes (%s)\n"
               "over one shared context: the input is loaded and rules are derived\n"
               "only once, and each pass's output is byte-identical to its\n"
               "standalone command.\n"
               "analysis commands accept --salvage to read damaged traces,\n"
               "--jobs N to set analysis threads (default: all hardware threads;\n"
               "results are byte-identical at any value), --timings to print\n"
               "per-phase wall time and throughput to stderr, and\n"
               "--timings-json PATH to write the same data as JSON.\n"
               "phase-3 analysis commands accept --format text|json|html to pick the\n"
               "report rendering (text is byte-identical to previous releases);\n"
               "--filter-config FILE blacklists functions/members from counterexample\n"
               "forensics, with suppressed counts reported, never silent.\n"
               "a flag a command does not accept is a usage error (exit 64)\n",
               PassRegistry::Default().JoinedNames().c_str());
  return 2;
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

PipelineOptions MakeOptions(const FlagSet& flags) {
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  options.derivator.accept_threshold = flags.GetDouble("tac", 0.9);
  options.jobs = flags.GetUint64("jobs", 0);
  return options;
}

struct LoadedTrace {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
};

// A trace from the mm (address-space) workload references the extended
// registry: it allocates types past the base VFS set and/or carries ranged
// events. Everything else — including every pre-existing archived trace —
// loads against the base registry, keeping legacy analyses byte-identical.
bool TraceNeedsMmRegistry(const Trace& trace) {
  const size_t base_types = VfsBaseTypeCount();
  for (const TraceEvent& e : trace.events()) {
    if (e.has_range) {
      return true;
    }
    if (e.kind == EventKind::kAlloc && e.type != kInvalidTypeId && e.type >= base_types) {
      return true;
    }
  }
  return false;
}

// True when `registry` is the extended (mm) registry; used to append the mm
// workload's documented rules without touching the base rule text.
bool IsMmRegistry(const TypeRegistry& registry) {
  return registry.type_count() > VfsBaseTypeCount();
}

// Picks the registry matching a .lockdb file by peeking at the recorded
// type count. Errors fall back to the base registry: LoadSnapshot produces
// the proper typed error for a damaged file.
std::unique_ptr<TypeRegistry> RegistryForSnapshotFile(const std::string& path, VfsIds* ids) {
  auto type_count = PeekSnapshotTypeCount(path);
  if (type_count.ok() && type_count.value() > VfsBaseTypeCount()) {
    return BuildVfsMmRegistry(ids);
  }
  return BuildVfsRegistry(ids);
}

bool LoadTraceFromPath(const std::string& path, const FlagSet& flags, LoadedTrace* out) {
  TraceReadOptions options;
  options.salvage = flags.GetBool("salvage", false);
  // Strict reads fan frame CRCs and event decoding out over --jobs lanes;
  // the resulting trace (and any error) is identical at any job count.
  std::unique_ptr<ThreadPool> pool;
  if (!options.salvage) {
    pool = std::make_unique<ThreadPool>(flags.GetUint64("jobs", 0));
    options.pool = pool.get();
  }
  TraceReadReport report;
  auto loaded = ReadTraceFromFile(path, options, &report);
  if (!loaded.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", loaded.status().message().c_str());
    if (!options.salvage) {
      std::fprintf(stderr, "lockdoc: (try `lockdoc doctor` or --salvage)\n");
    }
    return false;
  }
  if (!report.clean()) {
    std::fprintf(stderr, "lockdoc: warning: trace damaged, salvaged %llu events (%llu lost)\n",
                 static_cast<unsigned long long>(report.events_salvaged),
                 static_cast<unsigned long long>(report.events_dropped));
  }
  out->trace = std::move(loaded).value();
  out->registry = TraceNeedsMmRegistry(out->trace) ? BuildVfsMmRegistry(&out->ids)
                                                   : BuildVfsRegistry(&out->ids);
  return true;
}

bool LoadTrace(const FlagSet& flags, LoadedTrace* out) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "lockdoc: missing trace file\n");
    return false;
  }
  return LoadTraceFromPath(flags.positional()[1], flags, out);
}

// Analysis-stage input: a self-contained snapshot, either built from a
// trace (import + extraction phases) or loaded from a .lockdb file
// ("snapshot load" phase). Either way the downstream analyses are
// byte-identical.
struct AnalysisInput {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry;
  AnalysisSnapshot snapshot;
  PipelineTimings timings;
  bool from_snapshot = false;
};

// Loads `path` (trace or .lockdb) and the registry matching it into `out`.
bool LoadSnapshotFromPath(const std::string& path, const FlagSet& flags, AnalysisInput* out) {
  if (IsSnapshotFile(path)) {
    out->registry = RegistryForSnapshotFile(path, &out->ids);
    auto t0 = std::chrono::steady_clock::now();
    auto loaded = LoadSnapshot(path, *out->registry);
    if (!loaded.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", loaded.status().message().c_str());
      std::fprintf(stderr, "lockdoc: (try `lockdoc doctor %s`)\n", path.c_str());
      return false;
    }
    out->snapshot = std::move(loaded).value();
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    out->timings.Add("snapshot load", SecondsBetween(t0, std::chrono::steady_clock::now()),
                     ec ? 0 : size);
    out->from_snapshot = true;
    return true;
  }
  LoadedTrace input;
  if (!LoadTraceFromPath(path, flags, &input)) {
    return false;
  }
  out->ids = input.ids;
  out->registry = std::move(input.registry);
  out->snapshot = BuildSnapshot(input.trace, *out->registry, MakeOptions(flags), &out->timings);
  out->from_snapshot = false;
  return true;
}

bool LoadAnalysisInput(const FlagSet& flags, AnalysisInput* out) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "lockdoc: missing input file (trace or .lockdb)\n");
    return false;
  }
  return LoadSnapshotFromPath(flags.positional()[1], flags, out);
}

// The flags each command accepts. Anything else is a usage error (exit 64)
// — silently ignoring `lockdoc stats --tac 0.5` would let a typo change
// nothing while looking like it did.
const std::map<std::string, std::set<std::string>>& CommandFlagTable() {
  static const auto* const table = [] {
    const std::set<std::string> common = {"salvage", "jobs", "timings", "timings-json"};
    auto with = [&common](std::set<std::string> extra) {
      extra.insert(common.begin(), common.end());
      return extra;
    };
    return new std::map<std::string, std::set<std::string>>{
        {"simulate", {"out", "ops", "seed", "clean", "script", "workload"}},
        {"import", with({"out", "format"})},
        {"stats", {"salvage"}},
        {"derive", with({"tac", "type", "subclass", "spec", "support", "out-dir", "format"})},
        {"check", with({"rules", "format"})},
        {"violations", with({"limit", "tac", "format", "filter-config"})},
        {"lock-order", with({"format"})},
        {"modes", with({"all", "tac", "format"})},
        {"report", with({"full", "tac", "format", "filter-config"})},
        {"diff", with({"all", "tac", "format"})},
        {"export-csv", with({"dir"})},
        {"doctor", {"repair"}},
        {"serve", {"state", "once", "poll-ms", "max-resident", "max-resident-bytes",
                   "deadline-ms", "max-trace-bytes", "jobs", "workers", "listen"}},
        {"query", {}},
        {"analyze", with({"passes", "baseline", "out-dir", "tac", "rules", "limit", "all",
                          "full", "spec", "support", "type", "subclass", "format",
                          "filter-config"})},
    };
  }();
  return *table;
}

// Returns 0 when every flag is accepted by `command`, 64 (with a message on
// stderr) otherwise. Unknown commands are left for Usage().
int ValidateFlags(const std::string& command, const FlagSet& flags) {
  const auto& table = CommandFlagTable();
  auto it = table.find(command);
  if (it == table.end()) {
    return 0;
  }
  for (const std::string& name : flags.names()) {
    if (it->second.count(name) == 0) {
      std::fprintf(stderr, "lockdoc %s: unknown flag --%s\n", command.c_str(), name.c_str());
      return 64;
    }
  }
  // A bare "--timings-json" with no path parses as the boolean value "true";
  // writing JSON to a file named "true" is never what the user meant.
  if (flags.Has("timings-json") && flags.GetString("timings-json", "") == "true") {
    std::fprintf(stderr, "lockdoc: --timings-json requires an output path\n");
    return 64;
  }
  return 0;
}

// --timings: the per-phase block goes to stderr so stdout stays
// byte-identical across --jobs values (and pipeable). --timings-json PATH
// writes the same data as JSON for machine consumption (set write_json
// false when a command emits several timing blocks and this is not the
// primary one).
bool EmitTimings(const FlagSet& flags, const PipelineTimings& timings,
                 bool write_json = true) {
  if (flags.GetBool("timings", false)) {
    std::fprintf(stderr, "%s", timings.ToString().c_str());
  }
  std::string json_path = flags.GetString("timings-json", "");
  if (write_json && !json_path.empty()) {
    std::string json = timings.ToJson();
    std::ofstream file(json_path, std::ios::trunc);
    if (!file || !(file << json << "\n")) {
      std::fprintf(stderr, "lockdoc: cannot write %s\n", json_path.c_str());
      return false;
    }
  }
  return true;
}

// Fills the per-pass knobs from CLI flags. The documented-rules text comes
// from the simulated kernel unless --rules overrides it (mm inputs append
// the mm workload's rules to the base text); only `derive` routes --out-dir
// to the documentation-bundle writer (for `analyze`, --out-dir means
// per-pass output files instead).
bool FillPassOptions(const std::string& command, const FlagSet& flags, bool mm_input,
                     PassOptions* pass) {
  pass->documented_rules_text = VfsKernel::DocumentedRulesText();
  if (mm_input) {
    pass->documented_rules_text += MmKernel::DocumentedRulesText();
  }
  std::string rules_path = flags.GetString("rules", "");
  if (!rules_path.empty()) {
    std::ifstream in(rules_path);
    if (!in) {
      std::fprintf(stderr, "lockdoc: cannot open %s\n", rules_path.c_str());
      return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    pass->documented_rules_text = buffer.str();
  }
  pass->violation_limit = flags.GetUint64("limit", 10);
  pass->modes_all = flags.GetBool("all", false);
  pass->diff_all = flags.GetBool("all", false);
  pass->report_full = flags.GetBool("full", false);
  pass->doc_spec = flags.GetBool("spec", false);
  pass->doc_support = flags.GetBool("support", false);
  pass->doc_type = flags.GetString("type", "");
  pass->doc_subclass = flags.GetString("subclass", "");
  if (command == "derive") {
    pass->doc_out_dir = flags.GetString("out-dir", "");
  }
  return true;
}

// --format text|json|html: which renderer consumes the pass's report
// document. A bad (or bare) value is a usage error, exit 64.
bool ParseFormatFlag(const std::string& command, const FlagSet& flags, ReportFormat* format) {
  *format = ReportFormat::kText;
  if (!flags.Has("format")) {
    return true;
  }
  std::string value = flags.GetString("format", "");
  std::optional<ReportFormat> parsed = ParseReportFormat(value);
  if (!parsed.has_value()) {
    std::fprintf(stderr, "lockdoc %s: --format must be text, json or html (got '%s')\n",
                 command.c_str(), value.c_str());
    return false;
  }
  *format = *parsed;
  return true;
}

// --filter-config FILE: the forensics blacklist applied to counterexample
// groups (suppressed counts are reported, never silent). A missing or
// malformed file is a usage error, exit 64, with the parse error's line
// number on stderr.
bool LoadForensicsFilter(const std::string& command, const FlagSet& flags,
                         std::shared_ptr<const FilterConfig>* out) {
  out->reset();
  if (!flags.Has("filter-config")) {
    return true;
  }
  std::string path = flags.GetString("filter-config", "");
  if (path.empty() || path == "true") {
    std::fprintf(stderr, "lockdoc %s: --filter-config requires a file path\n",
                 command.c_str());
    return false;
  }
  Result<FilterConfig> loaded = LoadFilterConfigFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "lockdoc %s: %s\n", command.c_str(),
                 loaded.status().message().c_str());
    return false;
  }
  *out = std::make_shared<FilterConfig>(std::move(loaded).value());
  return true;
}

// Renders a finished pass output in the requested format. kText reuses the
// bytes Run() already rendered (the byte-compat contract's fast path).
std::string RenderOutput(const PassOutput& out, ReportFormat format) {
  if (format == ReportFormat::kText) {
    return out.text;
  }
  return RenderReportDocument(out.doc, format);
}

// The shared shell of every single-input analysis command: load the input
// into a snapshot, wrap it in an AnalysisContext, run the registered pass
// of the same name, emit its bytes in the requested format.
int RunPassCommand(const std::string& command, const FlagSet& flags) {
  const AnalysisPass* pass = PassRegistry::Default().Find(command);
  LOCKDOC_CHECK(pass != nullptr);
  ReportFormat format;
  std::shared_ptr<const FilterConfig> filter;
  if (!ParseFormatFlag(command, flags, &format) ||
      !LoadForensicsFilter(command, flags, &filter)) {
    return 64;
  }
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  AnalysisOptions options;
  options.pipeline = MakeOptions(flags);
  if (!FillPassOptions(command, flags, IsMmRegistry(*input.registry), &options.pass)) {
    return 1;
  }
  options.pass.forensics_filter = std::move(filter);
  AnalysisContext context(&input.snapshot, input.registry.get(), std::move(options),
                          &input.timings);
  PassOutput out;
  Status status = pass->Run(context, out);
  if (!status.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
    return 1;
  }
  if (!EmitTimings(flags, input.timings)) {
    return 1;
  }
  std::string rendered = RenderOutput(out, format);
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  return 0;
}

int CmdSimulate(const FlagSet& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "lockdoc simulate: --out is required\n");
    return 2;
  }
  FaultPlan plan = flags.GetBool("clean", false) ? FaultPlan::Clean() : FaultPlan{};

  // --workload mm: the address-space workload (range-locked mmap_lock over
  // vma spans) instead of the default VFS mix.
  std::string workload = flags.GetString("workload", "vfs");
  if (workload != "vfs" && workload != "mm") {
    std::fprintf(stderr, "lockdoc simulate: --workload must be vfs or mm (got '%s')\n",
                 workload.c_str());
    return 64;
  }

  // --script FILE: run an exact operation sequence instead of the mix.
  std::string script_path = flags.GetString("script", "");
  if (workload == "mm" && !script_path.empty()) {
    std::fprintf(stderr, "lockdoc simulate: --script drives the vfs workload only\n");
    return 64;
  }
  if (!script_path.empty()) {
    std::ifstream in(script_path);
    if (!in) {
      std::fprintf(stderr, "lockdoc: cannot open %s\n", script_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto script = WorkloadScript::Parse(buffer.str());
    if (!script.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", script.status().message().c_str());
      return 1;
    }
    VfsIds ids;
    std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
    Trace trace;
    SimKernel sim(&trace, registry.get());
    VfsKernel vfs(&sim, registry.get(), ids, plan);
    vfs.MountAll();
    Rng rng(flags.GetUint64("seed", 1));
    Status run = script.value().Run(vfs, rng);
    if (!run.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", run.message().c_str());
      return 1;
    }
    vfs.UnmountAll();
    Status status = WriteTraceToFile(trace, out);
    if (!status.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote %zu events (%zu scripted ops) to %s\n", trace.size(),
                script.value().steps().size(), out.c_str());
    return 0;
  }

  MixOptions mix;
  mix.ops = flags.GetUint64("ops", 20000);
  mix.seed = flags.GetUint64("seed", 1);
  SimulationResult sim = workload == "mm" ? SimulateMmRun(mix, plan) : SimulateKernelRun(mix, plan);
  Status status = WriteTraceToFile(sim.trace, out);
  if (!status.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", sim.trace.size(), out.c_str());
  return 0;
}

// Import-once: trace -> .lockdb snapshot. Analyses on the snapshot skip the
// import/extraction phases and are byte-identical to analyses on the trace.
int CmdImport(const FlagSet& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "lockdoc import: --out is required\n");
    return 2;
  }
  std::string format = flags.GetString("format", "v2");
  if (format != "v1" && format != "v2") {
    std::fprintf(stderr, "lockdoc import: --format must be v1 or v2 (got '%s')\n",
                 format.c_str());
    return 64;
  }
  PipelineTimings timings;
  auto t_read = std::chrono::steady_clock::now();
  LoadedTrace input;
  if (!LoadTrace(flags, &input)) {
    return 1;
  }
  timings.Add("trace read", SecondsBetween(t_read, std::chrono::steady_clock::now()),
              input.trace.size());
  SnapshotWriteOptions write_options;
  write_options.container_version = format == "v1" ? 1 : 2;
  // Build + atomic publication in one overlapped pass: the bulky table
  // sections stream to disk while observation extraction still runs, and a
  // crash mid-import never leaves a torn .lockdb that a later analysis (or
  // the serve spool) would trip over.
  auto built = BuildAndSaveSnapshot(input.trace, *input.registry, MakeOptions(flags),
                                    write_options, out, &timings);
  if (!built.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", built.status().message().c_str());
    return 1;
  }
  const AnalysisSnapshot& snapshot = built.value();
  if (!EmitTimings(flags, timings)) {
    return 1;
  }
  Result<uint64_t> written_size = FileSize(out);
  std::printf("imported %s events into %s (%s bytes, %s observation groups)\n",
              FormatWithCommas(snapshot.import_stats.events).c_str(), out.c_str(),
              FormatWithCommas(written_size.ok() ? written_size.value() : 0).c_str(),
              FormatWithCommas(snapshot.observations.groups().size()).c_str());
  return 0;
}

int CmdStats(const FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "lockdoc: missing input file (trace or .lockdb)\n");
    return 1;
  }
  const std::string& path = flags.positional()[1];
  if (IsSnapshotFile(path)) {
    VfsIds ids;
    std::unique_ptr<TypeRegistry> registry = RegistryForSnapshotFile(path, &ids);
    auto loaded = LoadSnapshot(path, *registry);
    if (!loaded.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", loaded.status().message().c_str());
      return 1;
    }
    std::printf("%s", loaded.value().trace_stats.ToString().c_str());
    return 0;
  }
  LoadedTrace input;
  if (!LoadTrace(flags, &input)) {
    return 1;
  }
  std::printf("%s", ComputeTraceStats(input.trace).ToString().c_str());
  return 0;
}

// diff takes two inputs, so it cannot go through RunPassCommand: the OLD
// side becomes a baseline AnalysisContext handed to the diff pass via
// PassOptions.
int CmdDiff(const FlagSet& flags) {
  if (flags.positional().size() < 3) {
    std::fprintf(stderr, "lockdoc diff: need two input files\n");
    return 2;
  }
  const AnalysisPass* pass = PassRegistry::Default().Find("diff");
  LOCKDOC_CHECK(pass != nullptr);
  ReportFormat format;
  if (!ParseFormatFlag("diff", flags, &format)) {
    return 64;
  }

  // Each side picks its own registry (a base-VFS OLD can be diffed against
  // an mm NEW; class names render identically across both).
  AnalysisInput old_input;
  if (!LoadSnapshotFromPath(flags.positional()[1], flags, &old_input)) {
    return 1;
  }
  AnalysisOptions baseline_options;
  baseline_options.pipeline = MakeOptions(flags);
  AnalysisContext baseline(&old_input.snapshot, old_input.registry.get(),
                           std::move(baseline_options), &old_input.timings);

  AnalysisInput new_input;
  if (!LoadSnapshotFromPath(flags.positional()[2], flags, &new_input)) {
    return 1;
  }
  AnalysisOptions options;
  options.pipeline = MakeOptions(flags);
  if (!FillPassOptions("diff", flags, IsMmRegistry(*new_input.registry), &options.pass)) {
    return 1;
  }
  options.pass.baseline = &baseline;
  AnalysisContext context(&new_input.snapshot, new_input.registry.get(), std::move(options),
                          &new_input.timings);

  PassOutput out;
  Status status = pass->Run(context, out);
  if (!status.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
    return 1;
  }
  // Two timing blocks (OLD then NEW) as before the pass framework; the JSON
  // file gets the NEW input's timings.
  if (!EmitTimings(flags, old_input.timings, /*write_json=*/false) ||
      !EmitTimings(flags, new_input.timings)) {
    return 1;
  }
  std::string rendered = RenderOutput(out, format);
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  return 0;
}

// The tentpole command: run any subset of the registered analysis passes
// over ONE shared AnalysisContext. The input is loaded once, rules are
// derived once ("rule derivation (interned)" appears exactly once in
// --timings), the shared indexes are built at most once, and each pass's
// output — byte-identical to its standalone command — goes to stdout in
// pass order, or to DIR/<pass>.txt with --out-dir.
int CmdAnalyze(const FlagSet& flags) {
  const PassRegistry& passes = PassRegistry::Default();
  ReportFormat format;
  std::shared_ptr<const FilterConfig> filter;
  if (!ParseFormatFlag("analyze", flags, &format) ||
      !LoadForensicsFilter("analyze", flags, &filter)) {
    return 64;
  }
  bool has_baseline = flags.Has("baseline");
  if (has_baseline && flags.GetString("baseline", "") == "true") {
    std::fprintf(stderr, "lockdoc analyze: --baseline requires an input file\n");
    return 64;
  }

  // Resolve the pass list before touching any input, so a bogus --passes is
  // a usage error rather than a half-done run. Default: every single-input
  // pass, plus diff when a baseline was given.
  std::vector<const AnalysisPass*> selected;
  std::string spec = flags.GetString("passes", "");
  if (spec.empty()) {
    for (const auto& pass : passes.passes()) {
      if (pass->name() != "diff" || has_baseline) {
        selected.push_back(pass.get());
      }
    }
  } else {
    for (const std::string& token : SplitAndTrim(spec, ',')) {
      const AnalysisPass* pass = passes.Find(token);
      if (pass == nullptr) {
        std::fprintf(stderr, "lockdoc analyze: unknown pass '%s' (available: %s)\n",
                     token.c_str(), passes.JoinedNames().c_str());
        return 64;
      }
      selected.push_back(pass);
    }
    if (selected.empty()) {
      std::fprintf(stderr, "lockdoc analyze: --passes names no passes (available: %s)\n",
                   passes.JoinedNames().c_str());
      return 64;
    }
  }
  for (const AnalysisPass* pass : selected) {
    if (pass->name() == "diff" && !has_baseline) {
      std::fprintf(stderr, "lockdoc analyze: the diff pass needs --baseline OLD\n");
      return 64;
    }
  }

  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  AnalysisOptions options;
  options.pipeline = MakeOptions(flags);
  if (!FillPassOptions("analyze", flags, IsMmRegistry(*input.registry), &options.pass)) {
    return 1;
  }
  options.pass.forensics_filter = std::move(filter);

  // The OLD side for the diff pass, with its own matching registry.
  AnalysisInput baseline_input;
  std::unique_ptr<AnalysisContext> baseline;
  if (has_baseline) {
    if (!LoadSnapshotFromPath(flags.GetString("baseline", ""), flags, &baseline_input)) {
      return 1;
    }
    AnalysisOptions baseline_options;
    baseline_options.pipeline = MakeOptions(flags);
    baseline = std::make_unique<AnalysisContext>(&baseline_input.snapshot,
                                                 baseline_input.registry.get(),
                                                 std::move(baseline_options),
                                                 &baseline_input.timings);
    options.pass.baseline = baseline.get();
  }

  AnalysisContext context(&input.snapshot, input.registry.get(), std::move(options),
                          &input.timings);

  std::string out_dir = flags.GetString("out-dir", "");
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
  }
  size_t files_written = 0;
  for (const AnalysisPass* pass : selected) {
    PassOutput out;
    Status status = pass->Run(context, out);
    if (!status.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
      return 1;
    }
    std::string rendered = RenderOutput(out, format);
    if (out_dir.empty()) {
      std::fwrite(rendered.data(), 1, rendered.size(), stdout);
    } else {
      std::string path = out_dir + "/" + std::string(pass->name()) + "." +
                         std::string(ReportFormatExtension(format));
      std::ofstream file(path, std::ios::binary | std::ios::trunc);
      if (!file ||
          !file.write(rendered.data(), static_cast<std::streamsize>(rendered.size()))) {
        std::fprintf(stderr, "lockdoc: cannot write %s\n", path.c_str());
        return 1;
      }
      ++files_written;
    }
  }
  if (baseline != nullptr && !EmitTimings(flags, baseline_input.timings, /*write_json=*/false)) {
    return 1;
  }
  if (!EmitTimings(flags, input.timings)) {
    return 1;
  }
  if (!out_dir.empty()) {
    std::printf("wrote %zu pass outputs to %s\n", files_written, out_dir.c_str());
  }
  return 0;
}

int CmdExportCsv(const FlagSet& flags) {
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "lockdoc export-csv: --dir is required\n");
    return 2;
  }
  std::filesystem::create_directories(dir);
  Status status = input.snapshot.db.ExportDirectory(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("exported %zu tables to %s\n", input.snapshot.db.TableNames().size(),
              dir.c_str());
  return 0;
}

// Container-level snapshot repair: keep every CRC-verified section, re-emit
// them with fresh sequence numbers and a fresh end section, report what was
// dropped. Returns false when nothing survived or the output is unwritable.
bool RepairSnapshotInto(const std::string& bytes, const std::string& out) {
  SnapshotRepairResult repair = RepairSnapshotBytes(bytes);
  if (!repair.salvageable()) {
    std::printf("repair failed: no intact section survived\n");
    return false;
  }
  Status written = WriteFileAtomic(out, repair.bytes);
  if (!written.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", written.message().c_str());
    return false;
  }
  for (const std::string& line : repair.dropped) {
    std::printf("dropped %s\n", line.c_str());
  }
  std::printf("repaired snapshot written to %s (%zu sections kept, %zu dropped)\n",
              out.c_str(), repair.sections_kept, repair.dropped.size());
  return true;
}

// Snapshot health check: container-level per-section verification, then a
// full load to validate the payloads. Same exit-code contract as the trace
// doctor; --repair re-emits the intact sections as a structurally clean
// container (whether it loads depends on which sections survived).
int DoctorSnapshot(const std::string& path, const std::string& repair_out) {
  auto read = ReadFileToString(path);
  if (!read.ok()) {
    std::printf("%s: %s\n", path.c_str(), read.status().message().c_str());
    std::printf("verdict: unreadable\n");
    return 2;
  }
  const std::string& bytes = read.value();

  SnapshotInspection inspection = InspectSnapshot(bytes);
  if (!inspection.magic_ok) {
    std::printf("%s: not a .lockdb snapshot\n", path.c_str());
    std::printf("verdict: unreadable\n");
    return 2;
  }
  if (!inspection.clean()) {
    std::printf("%s: damaged\n", path.c_str());
    std::printf("%s", inspection.ToString().c_str());
    std::printf("verdict: damaged (%zu of %zu sections intact); repair the container "
                "with --repair OUT.lockdb or re-run `lockdoc import` from the "
                "original trace\n",
                inspection.sections_ok(), inspection.sections.size());
    if (!repair_out.empty() && !RepairSnapshotInto(bytes, repair_out)) {
      return 2;
    }
    return 1;
  }

  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = RegistryForSnapshotFile(path, &ids);
  auto loaded = DeserializeSnapshot(bytes, *registry);
  if (!loaded.ok()) {
    std::printf("%s: sections intact but payload invalid\n", path.c_str());
    std::printf("%s", inspection.ToString().c_str());
    std::printf("load failed: %s\n", loaded.status().message().c_str());
    std::printf("verdict: unreadable\n");
    return 2;
  }
  std::printf("%s: clean\n", path.c_str());
  std::printf("%s", inspection.ToString().c_str());
  if (!repair_out.empty() && !RepairSnapshotInto(bytes, repair_out)) {
    return 2;
  }
  return 0;
}

// File health check (traces and snapshots). Exit codes: 0 = clean, 1 =
// damaged but salvageable, 2 = unreadable, 64 = usage error.
int CmdDoctor(const FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "usage: lockdoc doctor FILE [--repair OUT.trace]\n");
    return 64;
  }
  const std::string& path = flags.positional()[1];
  // A bare "--repair" with no path parses as the boolean value "true";
  // writing a trace to a file named "true" is never what the user meant.
  if (flags.GetString("repair", "") == "true") {
    std::fprintf(stderr, "lockdoc: --repair requires an output path\n");
    return 64;
  }

  if (IsSnapshotFile(path)) {
    return DoctorSnapshot(path, flags.GetString("repair", ""));
  }

  // Pass 1: strict. A clean trace parses without any anomaly.
  TraceReadReport report;
  auto strict = ReadTraceFromFile(path, {}, &report);
  if (strict.ok()) {
    std::printf("%s: clean\n", path.c_str());
    std::printf("%s", report.ToString().c_str());
    return 0;
  }
  std::printf("%s: damaged\n", path.c_str());
  std::printf("strict read failed: %s\n", strict.status().message().c_str());

  // Pass 2: salvage. Succeeds if anything interpretable survives.
  TraceReadOptions options;
  options.salvage = true;
  auto salvaged = ReadTraceFromFile(path, options, &report);
  if (!salvaged.ok()) {
    std::printf("salvage failed: %s\n", salvaged.status().message().c_str());
    std::printf("verdict: unreadable\n");
    return 2;
  }
  std::printf("%s", report.ToString().c_str());

  std::string repair_out = flags.GetString("repair", "");
  if (!repair_out.empty()) {
    Status written = WriteTraceToFile(salvaged.value(), repair_out);
    if (!written.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", written.message().c_str());
      return 2;
    }
    std::printf("repaired trace written to %s (%zu events)\n", repair_out.c_str(),
                salvaged.value().size());
  }
  std::printf("verdict: salvageable (%llu events recovered)\n",
              static_cast<unsigned long long>(report.events_salvaged));
  return 1;
}

std::atomic<bool> g_serve_stop{false};

void HandleServeSignal(int /*signum*/) { g_serve_stop.store(true); }

// Strictly-parsed unsigned serve flag: a value like "--max-resident lots"
// must be a usage error, not silently the default.
bool GetServeUint(const FlagSet& flags, const char* name, uint64_t default_value,
                  uint64_t* out) {
  if (!flags.Has(name)) {
    *out = default_value;
    return true;
  }
  if (!ParseUint64(flags.GetString(name, ""), out)) {
    std::fprintf(stderr, "lockdoc serve: --%s requires a non-negative integer\n", name);
    return false;
  }
  return true;
}

// The long-lived analysis service (src/serve/service.h): watch a spool
// directory, import arriving traces into crash-safe .lockdb snapshots, and
// answer pass requests byte-identically to the standalone commands. --once
// drains the spool and exits (CI smoke and the chaos harness); otherwise
// runs until SIGINT/SIGTERM.
int CmdServe(const FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "usage: lockdoc serve SPOOL_DIR [--state DIR] [--once] ...\n");
    return 64;
  }
  if (flags.Has("state") && flags.GetString("state", "") == "true") {
    std::fprintf(stderr, "lockdoc serve: --state requires a directory path\n");
    return 64;
  }
  const bool once = flags.GetBool("once", false);
  if (once && flags.Has("poll-ms")) {
    std::fprintf(stderr, "lockdoc serve: --once and --poll-ms conflict\n");
    return 64;
  }
  if (once && flags.Has("listen")) {
    // A socket endpoint needs a long-lived process; a drain-and-exit run
    // would tear it down mid-connection.
    std::fprintf(stderr, "lockdoc serve: --once and --listen conflict\n");
    return 64;
  }
  ServeServiceOptions options;
  uint64_t max_resident = 0;
  uint64_t poll_ms = 0;
  uint64_t workers = 0;
  if (!GetServeUint(flags, "max-resident", 8, &max_resident) ||
      !GetServeUint(flags, "max-resident-bytes", options.max_resident_bytes,
                    &options.max_resident_bytes) ||
      !GetServeUint(flags, "max-trace-bytes", options.max_trace_bytes,
                    &options.max_trace_bytes) ||
      !GetServeUint(flags, "deadline-ms", 0, &options.deadline_ms) ||
      !GetServeUint(flags, "poll-ms", 200, &poll_ms) ||
      !GetServeUint(flags, "jobs", 0, &options.pipeline.jobs) ||
      !GetServeUint(flags, "workers", 0, &workers)) {
    return 64;
  }
  if (max_resident == 0) {
    std::fprintf(stderr, "lockdoc serve: --max-resident must be at least 1\n");
    return 64;
  }
  if (flags.Has("workers") && workers == 0) {
    std::fprintf(stderr, "lockdoc serve: --workers must be at least 1\n");
    return 64;
  }
  options.max_resident = static_cast<size_t>(max_resident);
  options.workers = static_cast<size_t>(workers);
  ServeSocketOptions socket_options;
  const bool listen = flags.Has("listen");
  if (listen) {
    Status status = ParseHostPort(flags.GetString("listen", ""), &socket_options.host,
                                  &socket_options.port);
    if (!status.ok()) {
      std::fprintf(stderr, "lockdoc serve: --listen: %s\n", status.message().c_str());
      return 64;
    }
    socket_options.max_frame_bytes = options.max_trace_bytes;
  }
  options.pipeline.filter = VfsKernel::MakeFilterConfig();
  options.documented_rules_text = VfsKernel::DocumentedRulesText();
  options.extended_documented_rules_text =
      VfsKernel::DocumentedRulesText() + MmKernel::DocumentedRulesText();

  SpoolLayout layout = MakeSpoolLayout(flags.positional()[1], flags.GetString("state", ""));
  if (Status status = EnsureSpoolLayout(layout); !status.ok()) {
    std::fprintf(stderr, "lockdoc serve: %s\n", status.message().c_str());
    return 64;
  }

  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  VfsIds mm_ids;
  std::unique_ptr<TypeRegistry> mm_registry = BuildVfsMmRegistry(&mm_ids);
  ServeService service(layout, registry.get(), std::move(options), mm_registry.get());
  if (Status status = service.Recover(); !status.ok()) {
    std::fprintf(stderr, "lockdoc serve: recovery: %s\n", status.message().c_str());
    return 1;
  }

  int exit_code = 0;
  if (once) {
    // Drain until idle: a request may target a snapshot ingested this run.
    for (;;) {
      auto handled = service.ProcessOnce();
      if (!handled.ok()) {
        std::fprintf(stderr, "lockdoc serve: %s\n", handled.status().message().c_str());
        exit_code = 1;
        break;
      }
      if (handled.value() == 0) {
        break;
      }
    }
  } else {
    g_serve_stop.store(false);
    std::signal(SIGINT, HandleServeSignal);
    std::signal(SIGTERM, HandleServeSignal);
    std::unique_ptr<ServeSocketServer> socket_server;
    if (listen) {
      socket_server = std::make_unique<ServeSocketServer>(&service, socket_options);
      if (Status status = socket_server->Start(); !status.ok()) {
        std::fprintf(stderr, "lockdoc serve: --listen: %s\n", status.message().c_str());
        return 1;
      }
      // Announce the bound endpoint (resolving port 0) so clients and tests
      // can find an ephemeral port. Flushed: daemons get backgrounded.
      std::fprintf(stderr, "lockdoc serve: listening on %s:%u\n",
                   socket_options.host.c_str(), socket_server->port());
      std::fflush(stderr);
    }
    Status status = service.RunLoop(g_serve_stop, poll_ms);
    if (socket_server != nullptr) {
      socket_server->Stop();
    }
    if (!status.ok()) {
      std::fprintf(stderr, "lockdoc serve: %s\n", status.message().c_str());
      exit_code = 1;
    }
  }
  std::printf("%s\n", service.stats().ToString().c_str());
  if (!service.DrainZombies(200)) {
    // A timed-out worker is still running; unwinding static destructors
    // under a live thread would crash, so flush and leave directly.
    std::fflush(stdout);
    std::fflush(stderr);
    _exit(exit_code);
  }
  return exit_code;
}

// Socket client for a serve instance started with --listen: sends one
// request file over the framed protocol and prints the response. The pass
// output goes to stdout byte-identically to the standalone command (and to
// the spool's .out file) so tests can cmp all three; the meta record goes
// to stderr. Exit 0 on status=ok, 1 on a typed error or transport failure.
int CmdQuery(const FlagSet& flags) {
  if (flags.positional().size() < 3) {
    std::fprintf(stderr, "usage: lockdoc query HOST:PORT REQUEST.req\n");
    return 64;
  }
  std::string host;
  uint16_t port = 0;
  if (Status status = ParseHostPort(flags.positional()[1], &host, &port); !status.ok()) {
    std::fprintf(stderr, "lockdoc query: %s\n", status.message().c_str());
    return 64;
  }
  auto request = ReadFileToString(flags.positional()[2]);
  if (!request.ok()) {
    std::fprintf(stderr, "lockdoc query: %s\n", request.status().message().c_str());
    return 1;
  }
  auto connection = ConnectTcp(host, port);
  if (!connection.ok()) {
    std::fprintf(stderr, "lockdoc query: %s\n", connection.status().message().c_str());
    return 1;
  }
  const int fd = connection.value().get();
  if (Status status = WriteFrame(fd, request.value()); !status.ok()) {
    std::fprintf(stderr, "lockdoc query: %s\n", status.message().c_str());
    return 1;
  }
  // The server computes arbitrary-sized analyses; allow it a generous
  // window per response frame once bytes start flowing.
  constexpr uint64_t kResponseDeadlineMs = 600000;
  FrameRead meta = ReadFrame(fd, kResponseDeadlineMs, kResponseDeadlineMs, 0);
  if (meta.status != FrameStatus::kOk) {
    std::fprintf(stderr, "lockdoc query: no response meta (%s)\n",
                 meta.error.empty() ? "connection closed" : meta.error.c_str());
    return 1;
  }
  FrameRead out = ReadFrame(fd, kResponseDeadlineMs, kResponseDeadlineMs, 0);
  if (out.status != FrameStatus::kOk) {
    std::fprintf(stderr, "lockdoc query: no response body (%s)\n",
                 out.error.empty() ? "connection closed" : out.error.c_str());
    return 1;
  }
  std::fputs(meta.payload.c_str(), stderr);
  std::fwrite(out.payload.data(), 1, out.payload.size(), stdout);
  return StartsWith(meta.payload, "status=ok") ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "lockdoc: %s\n", error.c_str());
    return 2;
  }
  if (flags.positional().empty()) {
    return Usage();
  }
  const std::string& command = flags.positional()[0];
  if (int usage_error = ValidateFlags(command, flags); usage_error != 0) {
    return usage_error;
  }
  if (command == "simulate") {
    return CmdSimulate(flags);
  }
  if (command == "import") {
    return CmdImport(flags);
  }
  if (command == "stats") {
    return CmdStats(flags);
  }
  // The single-input phase-3 analyses are all registered passes sharing one
  // command shell.
  if (command == "derive" || command == "check" || command == "violations" ||
      command == "lock-order" || command == "modes" || command == "report") {
    return RunPassCommand(command, flags);
  }
  if (command == "diff") {
    return CmdDiff(flags);
  }
  if (command == "analyze") {
    return CmdAnalyze(flags);
  }
  if (command == "export-csv") {
    return CmdExportCsv(flags);
  }
  if (command == "doctor") {
    return CmdDoctor(flags);
  }
  if (command == "serve") {
    return CmdServe(flags);
  }
  if (command == "query") {
    return CmdQuery(flags);
  }
  return Usage();
}
