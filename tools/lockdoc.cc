// lockdoc — the command-line front end to the whole pipeline, operating on
// archived trace files and .lockdb analysis snapshots (the paper's ex-post
// analysis workflow, Sec. 3.3: "recorded execution traces can be easily
// archived and analyzed in arbitrary ways").
//
//   lockdoc simulate --out run.trace [--ops N] [--seed S] [--clean]
//                    [--script FILE]
//   lockdoc import run.trace --out db.lockdb
//   lockdoc stats FILE
//   lockdoc derive FILE [--tac 0.9] [--type inode [--subclass ext4]]
//                       [--spec] [--support]
//   lockdoc check FILE [--rules rules.txt]
//   lockdoc violations FILE [--limit N] [--tac 0.9]
//   lockdoc lock-order FILE
//   lockdoc modes FILE [--all]
//   lockdoc diff OLD NEW [--all]
//   lockdoc export-csv FILE --dir DIR
//   lockdoc doctor FILE [--repair fixed.trace]
//
// Every analysis command takes FILE as either a raw trace or a .lockdb
// snapshot written by `lockdoc import`, auto-detected by magic bytes. A
// snapshot skips the import and extraction phases entirely — the
// import-once / analyze-many workflow — and produces byte-identical output
// to analyzing the original trace.
//
// `doctor` checks an archived file's health (traces and snapshots): exit
// code 0 means clean, 1 damaged-but-salvageable (for traces, optionally
// rewriting the salvaged content as a fresh v2 file via --repair), 2
// unreadable, 64 usage error. All analysis commands accept --salvage to run
// on a damaged trace's surviving prefix.
//
// Traces must come from the built-in simulated kernel (the type registry is
// part of the contract between tracer and analyzer, as in the paper where
// the kernel's DWARF layout plays that role); snapshots record the
// registry's shape and refuse to load against a different one.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/core/doc_generator.h"
#include "src/core/lock_order.h"
#include "src/core/mode_analysis.h"
#include "src/core/pipeline.h"
#include "src/core/report.h"
#include "src/core/rule_diff.h"
#include "src/core/rule_checker.h"
#include "src/core/snapshot.h"
#include "src/core/violation_finder.h"
#include "src/db/snapshot.h"
#include "src/trace/trace_io.h"
#include "src/trace/trace_stats.h"
#include "src/util/flags.h"
#include "src/util/stats.h"
#include "src/util/string_util.h"
#include "src/vfs/vfs_kernel.h"
#include "src/workload/script.h"
#include "src/workload/workloads.h"

using namespace lockdoc;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: lockdoc <command> [args]\n"
               "commands:\n"
               "  simulate --out FILE [--ops N] [--seed S] [--clean] [--script FILE]\n"
               "  import TRACE --out DB.lockdb\n"
               "  stats FILE\n"
               "  derive FILE [--tac T] [--type NAME [--subclass NAME]] [--spec] [--support]\n"
               "  check FILE [--rules RULES.txt]\n"
               "  violations FILE [--limit N] [--tac T]\n"
               "  lock-order FILE\n"
               "  modes FILE [--all]\n"
               "  report FILE [--full]\n"
               "  diff OLD NEW [--all]\n"
               "  export-csv FILE --dir DIR\n"
               "  doctor FILE [--repair OUT.trace]\n"
               "FILE is a trace or a .lockdb snapshot (auto-detected by magic);\n"
               "`import` converts the former into the latter so repeated analyses\n"
               "skip the import/extraction phases.\n"
               "analysis commands accept --salvage to read damaged traces,\n"
               "--jobs N to set analysis threads (default: all hardware threads;\n"
               "results are byte-identical at any value), and --timings to print\n"
               "per-phase wall time and throughput to stderr\n");
  return 2;
}

double SecondsBetween(std::chrono::steady_clock::time_point from,
                      std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

PipelineOptions MakeOptions(const FlagSet& flags) {
  PipelineOptions options;
  options.filter = VfsKernel::MakeFilterConfig();
  options.derivator.accept_threshold = flags.GetDouble("tac", 0.9);
  options.jobs = flags.GetUint64("jobs", 0);
  return options;
}

struct LoadedTrace {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry;
  Trace trace;
};

bool LoadTraceFromPath(const std::string& path, const FlagSet& flags, LoadedTrace* out) {
  out->registry = BuildVfsRegistry(&out->ids);
  TraceReadOptions options;
  options.salvage = flags.GetBool("salvage", false);
  TraceReadReport report;
  auto loaded = ReadTraceFromFile(path, options, &report);
  if (!loaded.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", loaded.status().message().c_str());
    if (!options.salvage) {
      std::fprintf(stderr, "lockdoc: (try `lockdoc doctor` or --salvage)\n");
    }
    return false;
  }
  if (!report.clean()) {
    std::fprintf(stderr, "lockdoc: warning: trace damaged, salvaged %llu events (%llu lost)\n",
                 static_cast<unsigned long long>(report.events_salvaged),
                 static_cast<unsigned long long>(report.events_dropped));
  }
  out->trace = std::move(loaded).value();
  return true;
}

bool LoadTrace(const FlagSet& flags, LoadedTrace* out) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "lockdoc: missing trace file\n");
    return false;
  }
  return LoadTraceFromPath(flags.positional()[1], flags, out);
}

// Analysis-stage input: a self-contained snapshot, either built from a
// trace (import + extraction phases) or loaded from a .lockdb file
// ("snapshot load" phase). Either way the downstream analyses are
// byte-identical.
struct AnalysisInput {
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry;
  AnalysisSnapshot snapshot;
  PipelineTimings timings;
  bool from_snapshot = false;
};

bool LoadSnapshotFromPath(const std::string& path, const FlagSet& flags,
                          const TypeRegistry& registry, AnalysisSnapshot* snapshot,
                          PipelineTimings* timings, bool* from_snapshot) {
  if (IsSnapshotFile(path)) {
    auto t0 = std::chrono::steady_clock::now();
    auto loaded = LoadSnapshot(path, registry);
    if (!loaded.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", loaded.status().message().c_str());
      std::fprintf(stderr, "lockdoc: (try `lockdoc doctor %s`)\n", path.c_str());
      return false;
    }
    *snapshot = std::move(loaded).value();
    std::error_code ec;
    uint64_t size = std::filesystem::file_size(path, ec);
    timings->Add("snapshot load", SecondsBetween(t0, std::chrono::steady_clock::now()),
                 ec ? 0 : size);
    *from_snapshot = true;
    return true;
  }
  LoadedTrace input;
  if (!LoadTraceFromPath(path, flags, &input)) {
    return false;
  }
  *snapshot = BuildSnapshot(input.trace, registry, MakeOptions(flags), timings);
  *from_snapshot = false;
  return true;
}

bool LoadAnalysisInput(const FlagSet& flags, AnalysisInput* out) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "lockdoc: missing input file (trace or .lockdb)\n");
    return false;
  }
  out->registry = BuildVfsRegistry(&out->ids);
  return LoadSnapshotFromPath(flags.positional()[1], flags, *out->registry, &out->snapshot,
                              &out->timings, &out->from_snapshot);
}

// Pool for the analysis stages that run after derivation (rule checking,
// violation finding); same --jobs policy as the pipeline itself.
ThreadPool MakeAnalysisPool(const FlagSet& flags) {
  return ThreadPool(flags.GetUint64("jobs", 0));
}

// --timings: the per-phase block goes to stderr so stdout stays
// byte-identical across --jobs values (and pipeable).
void MaybePrintTimings(const FlagSet& flags, const PipelineTimings& timings) {
  if (flags.GetBool("timings", false)) {
    std::fprintf(stderr, "%s", timings.ToString().c_str());
  }
}

int CmdSimulate(const FlagSet& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "lockdoc simulate: --out is required\n");
    return 2;
  }
  FaultPlan plan = flags.GetBool("clean", false) ? FaultPlan::Clean() : FaultPlan{};

  // --script FILE: run an exact operation sequence instead of the mix.
  std::string script_path = flags.GetString("script", "");
  if (!script_path.empty()) {
    std::ifstream in(script_path);
    if (!in) {
      std::fprintf(stderr, "lockdoc: cannot open %s\n", script_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto script = WorkloadScript::Parse(buffer.str());
    if (!script.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", script.status().message().c_str());
      return 1;
    }
    VfsIds ids;
    std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
    Trace trace;
    SimKernel sim(&trace, registry.get());
    VfsKernel vfs(&sim, registry.get(), ids, plan);
    vfs.MountAll();
    Rng rng(flags.GetUint64("seed", 1));
    Status run = script.value().Run(vfs, rng);
    if (!run.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", run.message().c_str());
      return 1;
    }
    vfs.UnmountAll();
    Status status = WriteTraceToFile(trace, out);
    if (!status.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
      return 1;
    }
    std::printf("wrote %zu events (%zu scripted ops) to %s\n", trace.size(),
                script.value().steps().size(), out.c_str());
    return 0;
  }

  MixOptions mix;
  mix.ops = flags.GetUint64("ops", 20000);
  mix.seed = flags.GetUint64("seed", 1);
  SimulationResult sim = SimulateKernelRun(mix, plan);
  Status status = WriteTraceToFile(sim.trace, out);
  if (!status.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("wrote %zu events to %s\n", sim.trace.size(), out.c_str());
  return 0;
}

// Import-once: trace -> .lockdb snapshot. Analyses on the snapshot skip the
// import/extraction phases and are byte-identical to analyses on the trace.
int CmdImport(const FlagSet& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "lockdoc import: --out is required\n");
    return 2;
  }
  LoadedTrace input;
  if (!LoadTrace(flags, &input)) {
    return 1;
  }
  PipelineTimings timings;
  AnalysisSnapshot snapshot = BuildSnapshot(input.trace, *input.registry, MakeOptions(flags),
                                            &timings);
  auto t0 = std::chrono::steady_clock::now();
  std::string bytes = SerializeSnapshot(snapshot, *input.registry);
  Status written = Status::Ok();
  {
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    if (!file || !file.write(bytes.data(), static_cast<std::streamsize>(bytes.size()))) {
      written = Status::Error("cannot write " + out);
    }
  }
  if (!written.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", written.message().c_str());
    return 1;
  }
  timings.Add("snapshot save", SecondsBetween(t0, std::chrono::steady_clock::now()),
              bytes.size());
  MaybePrintTimings(flags, timings);
  std::printf("imported %s events into %s (%s bytes, %s observation groups)\n",
              FormatWithCommas(snapshot.import_stats.events).c_str(), out.c_str(),
              FormatWithCommas(bytes.size()).c_str(),
              FormatWithCommas(snapshot.observations.groups().size()).c_str());
  return 0;
}

int CmdStats(const FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "lockdoc: missing input file (trace or .lockdb)\n");
    return 1;
  }
  const std::string& path = flags.positional()[1];
  if (IsSnapshotFile(path)) {
    VfsIds ids;
    std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
    auto loaded = LoadSnapshot(path, *registry);
    if (!loaded.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", loaded.status().message().c_str());
      return 1;
    }
    std::printf("%s", loaded.value().trace_stats.ToString().c_str());
    return 0;
  }
  LoadedTrace input;
  if (!LoadTrace(flags, &input)) {
    return 1;
  }
  std::printf("%s", ComputeTraceStats(input.trace).ToString().c_str());
  return 0;
}

int CmdDerive(const FlagSet& flags) {
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  std::vector<DerivationResult> rules =
      AnalyzeSnapshot(input.snapshot, MakeOptions(flags), &input.timings);
  MaybePrintTimings(flags, input.timings);

  DocGenOptions doc_options;
  doc_options.include_support = flags.GetBool("support", false);
  DocGenerator generator(input.registry.get(), doc_options);
  bool spec = flags.GetBool("spec", false);

  // --out-dir: write the full documentation bundle instead of stdout.
  std::string out_dir = flags.GetString("out-dir", "");
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    auto written = generator.GenerateAll(rules, out_dir);
    if (!written.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", written.status().message().c_str());
      return 1;
    }
    std::printf("wrote %zu documentation files to %s\n", written.value(), out_dir.c_str());
    return 0;
  }

  std::string type_filter = flags.GetString("type", "");
  std::string subclass_filter = flags.GetString("subclass", "");

  for (TypeId type = 0; type < input.registry->type_count(); ++type) {
    const std::string& name = input.registry->layout(type).name();
    if (!type_filter.empty() && name != type_filter) {
      continue;
    }
    std::vector<SubclassId> subclasses = {kNoSubclass};
    for (SubclassId sub : input.registry->SubclassesOf(type)) {
      subclasses.push_back(sub);
    }
    for (SubclassId sub : subclasses) {
      if (!subclass_filter.empty() &&
          input.registry->SubclassName(type, sub) != subclass_filter) {
        continue;
      }
      std::string text = spec ? generator.GenerateRuleSpec(type, sub, rules)
                              : generator.Generate(type, sub, rules);
      // Skip populations with no mined rules to keep the output readable.
      bool has_rules = false;
      for (const DerivationResult& rule : rules) {
        if (rule.key.type == type && rule.key.subclass == sub) {
          has_rules = true;
          break;
        }
      }
      if (has_rules) {
        std::printf("%s\n", text.c_str());
      }
    }
  }
  return 0;
}

int CmdCheck(const FlagSet& flags) {
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  std::string rules_text = VfsKernel::DocumentedRulesText();
  std::string rules_path = flags.GetString("rules", "");
  if (!rules_path.empty()) {
    std::ifstream in(rules_path);
    if (!in) {
      std::fprintf(stderr, "lockdoc: cannot open %s\n", rules_path.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    rules_text = buffer.str();
  }
  auto rules = RuleSet::ParseText(rules_text);
  if (!rules.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", rules.status().message().c_str());
    return 1;
  }

  ThreadPool pool = MakeAnalysisPool(flags);
  RuleChecker checker(input.registry.get(), &input.snapshot.observations);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<RuleCheckResult> checked = checker.CheckAll(rules.value(), &pool);
  input.timings.Add("rule checking", SecondsBetween(t0, std::chrono::steady_clock::now()),
                    rules.value().size());
  MaybePrintTimings(flags, input.timings);
  for (const RuleCheckResult& r : checked) {
    std::printf("%s  %-70s sr=%7s (%llu/%llu)\n",
                std::string(RuleVerdictSymbol(r.verdict)).c_str(), r.rule.ToString().c_str(),
                r.total == 0 ? "n/a" : FormatPercent(r.sr).c_str(),
                static_cast<unsigned long long>(r.sa), static_cast<unsigned long long>(r.total));
  }
  TextTable table({"Data Type", "#R", "#No", "#Ob", "! (%)", "~ (%)", "# (%)"});
  for (const RuleCheckSummary& s : RuleChecker::Summarize(checked)) {
    table.AddRow({s.type_name, std::to_string(s.documented), std::to_string(s.unobserved),
                  std::to_string(s.observed), StrFormat("%.2f", s.correct_pct()),
                  StrFormat("%.2f", s.ambivalent_pct()), StrFormat("%.2f", s.incorrect_pct())});
  }
  std::printf("\n%s", table.ToString().c_str());
  return 0;
}

int CmdViolations(const FlagSet& flags) {
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  std::vector<DerivationResult> rules =
      AnalyzeSnapshot(input.snapshot, MakeOptions(flags), &input.timings);
  ThreadPool pool = MakeAnalysisPool(flags);
  ViolationFinder finder(&input.snapshot.db, input.registry.get(),
                         &input.snapshot.observations);
  auto t0 = std::chrono::steady_clock::now();
  std::vector<Violation> violations = finder.FindAll(rules, &pool);
  input.timings.Add("violation finding", SecondsBetween(t0, std::chrono::steady_clock::now()),
                    rules.size());
  MaybePrintTimings(flags, input.timings);

  TextTable table({"Data Type", "Events", "Members", "Contexts"});
  for (const ViolationSummaryRow& row : finder.Summarize(violations)) {
    table.AddRow({row.type_name, std::to_string(row.events), std::to_string(row.members),
                  std::to_string(row.contexts)});
  }
  std::printf("%s\n", table.ToString().c_str());
  for (const ViolationExample& ex :
       finder.Examples(violations, flags.GetUint64("limit", 10))) {
    std::printf("%s [%s]\n  rule: %s\n  held: %s\n  at %s (%llu events)\n  stack: %s\n\n",
                ex.member.c_str(), ex.access.c_str(), ex.rule.c_str(), ex.held.c_str(),
                ex.location.c_str(), static_cast<unsigned long long>(ex.events),
                ex.stack.c_str());
  }
  return 0;
}

int CmdLockOrder(const FlagSet& flags) {
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  MaybePrintTimings(flags, input.timings);
  LockOrderGraph graph = LockOrderGraph::Build(input.snapshot.db, *input.registry);
  std::printf("%s\n", graph.Report(input.snapshot.db).c_str());
  std::printf("potential deadlock cycles:\n");
  auto cycles = graph.FindCycles();
  if (cycles.empty()) {
    std::printf("  none\n");
  }
  for (const LockOrderCycle& cycle : cycles) {
    std::printf("  %s\n", cycle.ToString().c_str());
  }
  return 0;
}

int CmdReport(const FlagSet& flags) {
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  PipelineResult result;
  result.snapshot = std::move(input.snapshot);
  result.timings = std::move(input.timings);
  result.rules = AnalyzeSnapshot(result.snapshot, MakeOptions(flags), &result.timings);
  MaybePrintTimings(flags, result.timings);
  ReportOptions options;
  options.documented_rules_text = VfsKernel::DocumentedRulesText();
  options.full_documentation = flags.GetBool("full", false);
  std::printf("%s", RenderReport(*input.registry, result, options).c_str());
  return 0;
}

int CmdModes(const FlagSet& flags) {
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  std::vector<DerivationResult> rules =
      AnalyzeSnapshot(input.snapshot, MakeOptions(flags), &input.timings);
  MaybePrintTimings(flags, input.timings);
  ModeAnalyzer analyzer(&input.snapshot.db, input.registry.get(),
                        &input.snapshot.observations);
  auto entries = flags.GetBool("all", false) ? analyzer.Analyze(rules)
                                             : analyzer.FindSharedModeWrites(rules);
  if (entries.empty()) {
    std::printf("no %s found\n",
                flags.GetBool("all", false) ? "lock rules" : "shared-mode writes");
    return 0;
  }
  std::printf("%s", analyzer.Render(entries).c_str());
  return 0;
}

int CmdDiff(const FlagSet& flags) {
  if (flags.positional().size() < 3) {
    std::fprintf(stderr, "lockdoc diff: need two input files\n");
    return 2;
  }
  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  PipelineOptions options = MakeOptions(flags);
  auto analyze = [&](const std::string& path, std::vector<DerivationResult>* rules) {
    AnalysisSnapshot snapshot;
    PipelineTimings timings;
    bool from_snapshot = false;
    if (!LoadSnapshotFromPath(path, flags, *registry, &snapshot, &timings, &from_snapshot)) {
      return false;
    }
    *rules = AnalyzeSnapshot(snapshot, options, &timings);
    MaybePrintTimings(flags, timings);
    return true;
  };
  std::vector<DerivationResult> old_rules;
  std::vector<DerivationResult> new_rules;
  if (!analyze(flags.positional()[1], &old_rules) ||
      !analyze(flags.positional()[2], &new_rules)) {
    return 1;
  }

  RuleDiffOptions diff_options;
  diff_options.include_unchanged = flags.GetBool("all", false);
  auto drifts = DiffRules(old_rules, new_rules, diff_options);
  if (drifts.empty()) {
    std::printf("no rule drift\n");
    return 0;
  }
  std::printf("%s", RenderRuleDiff(drifts, *registry).c_str());
  return 0;
}

int CmdExportCsv(const FlagSet& flags) {
  AnalysisInput input;
  if (!LoadAnalysisInput(flags, &input)) {
    return 1;
  }
  std::string dir = flags.GetString("dir", "");
  if (dir.empty()) {
    std::fprintf(stderr, "lockdoc export-csv: --dir is required\n");
    return 2;
  }
  std::filesystem::create_directories(dir);
  Status status = input.snapshot.db.ExportDirectory(dir);
  if (!status.ok()) {
    std::fprintf(stderr, "lockdoc: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("exported %zu tables to %s\n", input.snapshot.db.TableNames().size(),
              dir.c_str());
  return 0;
}

// Snapshot health check: container-level per-section verification, then a
// full load to validate the payloads. Same exit-code contract as the trace
// doctor.
int DoctorSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string bytes = std::move(buffer).str();

  SnapshotInspection inspection = InspectSnapshot(bytes);
  if (!inspection.magic_ok) {
    std::printf("%s: not a .lockdb snapshot\n", path.c_str());
    std::printf("verdict: unreadable\n");
    return 2;
  }
  if (!inspection.clean()) {
    std::printf("%s: damaged\n", path.c_str());
    std::printf("%s", inspection.ToString().c_str());
    std::printf("verdict: damaged (%zu of %zu sections intact); re-run `lockdoc import` "
                "from the original trace\n",
                inspection.sections_ok(), inspection.sections.size());
    return 1;
  }

  VfsIds ids;
  std::unique_ptr<TypeRegistry> registry = BuildVfsRegistry(&ids);
  auto loaded = DeserializeSnapshot(bytes, *registry);
  if (!loaded.ok()) {
    std::printf("%s: sections intact but payload invalid\n", path.c_str());
    std::printf("%s", inspection.ToString().c_str());
    std::printf("load failed: %s\n", loaded.status().message().c_str());
    std::printf("verdict: unreadable\n");
    return 2;
  }
  std::printf("%s: clean\n", path.c_str());
  std::printf("%s", inspection.ToString().c_str());
  return 0;
}

// File health check (traces and snapshots). Exit codes: 0 = clean, 1 =
// damaged but salvageable, 2 = unreadable, 64 = usage error.
int CmdDoctor(const FlagSet& flags) {
  if (flags.positional().size() < 2) {
    std::fprintf(stderr, "usage: lockdoc doctor FILE [--repair OUT.trace]\n");
    return 64;
  }
  const std::string& path = flags.positional()[1];
  // A bare "--repair" with no path parses as the boolean value "true";
  // writing a trace to a file named "true" is never what the user meant.
  if (flags.GetString("repair", "") == "true") {
    std::fprintf(stderr, "lockdoc: --repair requires an output path\n");
    return 64;
  }

  if (IsSnapshotFile(path)) {
    if (!flags.GetString("repair", "").empty()) {
      std::fprintf(stderr,
                   "lockdoc: --repair applies to traces; re-run `lockdoc import` to rebuild "
                   "a damaged snapshot\n");
      return 64;
    }
    return DoctorSnapshot(path);
  }

  // Pass 1: strict. A clean trace parses without any anomaly.
  TraceReadReport report;
  auto strict = ReadTraceFromFile(path, {}, &report);
  if (strict.ok()) {
    std::printf("%s: clean\n", path.c_str());
    std::printf("%s", report.ToString().c_str());
    return 0;
  }
  std::printf("%s: damaged\n", path.c_str());
  std::printf("strict read failed: %s\n", strict.status().message().c_str());

  // Pass 2: salvage. Succeeds if anything interpretable survives.
  TraceReadOptions options;
  options.salvage = true;
  auto salvaged = ReadTraceFromFile(path, options, &report);
  if (!salvaged.ok()) {
    std::printf("salvage failed: %s\n", salvaged.status().message().c_str());
    std::printf("verdict: unreadable\n");
    return 2;
  }
  std::printf("%s", report.ToString().c_str());

  std::string repair_out = flags.GetString("repair", "");
  if (!repair_out.empty()) {
    Status written = WriteTraceToFile(salvaged.value(), repair_out);
    if (!written.ok()) {
      std::fprintf(stderr, "lockdoc: %s\n", written.message().c_str());
      return 2;
    }
    std::printf("repaired trace written to %s (%zu events)\n", repair_out.c_str(),
                salvaged.value().size());
  }
  std::printf("verdict: salvageable (%llu events recovered)\n",
              static_cast<unsigned long long>(report.events_salvaged));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  std::string error;
  if (!flags.Parse(argc, argv, &error)) {
    std::fprintf(stderr, "lockdoc: %s\n", error.c_str());
    return 2;
  }
  if (flags.positional().empty()) {
    return Usage();
  }
  const std::string& command = flags.positional()[0];
  if (command == "simulate") {
    return CmdSimulate(flags);
  }
  if (command == "import") {
    return CmdImport(flags);
  }
  if (command == "stats") {
    return CmdStats(flags);
  }
  if (command == "derive") {
    return CmdDerive(flags);
  }
  if (command == "check") {
    return CmdCheck(flags);
  }
  if (command == "violations") {
    return CmdViolations(flags);
  }
  if (command == "lock-order") {
    return CmdLockOrder(flags);
  }
  if (command == "modes") {
    return CmdModes(flags);
  }
  if (command == "report") {
    return CmdReport(flags);
  }
  if (command == "diff") {
    return CmdDiff(flags);
  }
  if (command == "export-csv") {
    return CmdExportCsv(flags);
  }
  if (command == "doctor") {
    return CmdDoctor(flags);
  }
  return Usage();
}
